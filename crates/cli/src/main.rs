//! `dk` — Orbis-style command line for the dK-series tool chain.
//!
//! Argument parsing only; all behavior lives in [`dk_cli`] (tested there).

use dk_cli::*;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dk — dK-series topology analysis and generation (SIGCOMM'06 reproduction)

USAGE:
  dk extract  <d: 1..3> <graph.edges> -o <dist.dk>
  dk generate <d: 1..3> <dist.dk>     -o <out.edges> [--algo pseudograph|matching|stochastic|targeting] [--seed N]
  dk rewire   <d: 0..3> <graph.edges> -o <out.edges> [--attempts N] [--seed N]
  dk explore  <s|s2|c>  <min|max> <graph.edges> -o <out.edges> [--seed N]
  dk metrics  <graph.edges> [--metrics LIST] [--format text|json] [--no-gcc] [--samples K]
              [--sketch-bits B] [--shards N] [--memory-budget B] [--relabel]
  dk compare  <a.edges> <b.edges> [--metrics LIST] [--format text|json] [--no-gcc] [--samples K]
              [--sketch-bits B] [--shards N] [--memory-budget B] [--relabel]
  dk attack   <graph.edges> [--strategy random|degree|betweenness|degree-adaptive] [--seed N]
              [--checkpoints F1,F2,...] [--format text|json] [--no-gcc] [--samples K]
  dk census   <graph.edges> [--max-d D]
  dk viz      <graph.edges> -o <out.svg> [--seed N]
  dk serve    --socket <path.sock> [--memory-budget B] [--threads N]
  dk client   --socket <path.sock> '<request JSON>'

Graphs are whitespace edge lists (`#` comments, optional `nodes N` header);
distribution files are the Orbis-style formats documented in dk-core.
`--metrics` takes comma-separated metric names or sets (default, cheap,
scalars, series, all) — `--metrics help` lists every metric. `--samples K`
sets the pivot budget of the sampled distance_approx/betweenness_approx
metrics (default 64; K >= n reproduces the exact values). `rewire` (and
`generate --algo targeting`) runs on the incremental-move MCMC engine:
every double-edge swap is an explicit proposal record validated against an
O(1) edge index, with O(1) census deltas applied on acceptance — `--attempts`
budgets proposed (not accepted) moves, default 50 per edge. `--sketch-bits B`
sets the HyperLogLog register bits of the sketch distance metrics
(distance_sketch/avg_distance_sketch/effective_diameter_sketch; 4..=16,
default 8 — error ~1.04/sqrt(2^B), memory n*2^B bytes). `--shards N`
streams the all-pairs/sampled passes shard by shard (identical results,
memory bounded by workers — the default past ~131k nodes); `--memory-budget
B` caps their working memory (bytes, K/M/G suffixes); `--relabel` runs
them over a degree-descending relabeled snapshot for cache locality
(byte-identical output). `attack` computes
the full node-removal percolation trajectory in one reverse union-find
pass (bit-identical for every thread count): `--strategy` picks the
removal order (default degree), `--checkpoints` probes the residual GCC
at the given removal fractions (default 0.01,0.05,0.1,0.25,0.5; sorted,
duplicates dropped), and the JSON report carries the decimated curve
plus the interpolated fraction where the GCC halves. `serve` runs a
long-lived daemon holding named graphs with warm analysis caches behind
a line-delimited JSON protocol on a Unix socket (ops: load, metric,
compare, attack, rewire, generate-into, stats, shutdown — full
reference in the dk-serve crate docs): identical concurrent requests
coalesce onto one computation, `--memory-budget` admission-rejects
requests that cannot fit, and responses are byte-identical for every
`--threads` value. `client` sends one request line and prints the
response, e.g. `dk client --socket /tmp/dk.sock '{\"op\":\"stats\"}'`.";

struct Args {
    positional: Vec<String>,
    out: Option<PathBuf>,
    algo: GenAlgo,
    seed: u64,
    attempts: Option<u64>,
    max_d: u8,
    metrics: Option<String>,
    strategy: Option<String>,
    checkpoints: Option<String>,
    format: OutputFormat,
    no_gcc: bool,
    samples: Option<usize>,
    sketch_bits: Option<u32>,
    shards: Option<usize>,
    memory_budget: Option<u64>,
    relabel: bool,
    socket: Option<PathBuf>,
    threads: Option<usize>,
}

fn parse(mut raw: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        out: None,
        algo: GenAlgo::Pseudograph,
        seed: 1,
        attempts: None,
        max_d: 3,
        metrics: None,
        strategy: None,
        checkpoints: None,
        format: OutputFormat::Text,
        no_gcc: false,
        samples: None,
        sketch_bits: None,
        shards: None,
        memory_budget: None,
        relabel: false,
        socket: None,
        threads: None,
    };
    raw.reverse();
    while let Some(tok) = raw.pop() {
        match tok.as_str() {
            "-o" | "--out" => {
                args.out = Some(PathBuf::from(raw.pop().ok_or("missing value after -o")?))
            }
            "--algo" => args.algo = raw.pop().ok_or("missing value after --algo")?.parse()?,
            "--metrics" => args.metrics = Some(raw.pop().ok_or("missing value after --metrics")?),
            "--strategy" => {
                args.strategy = Some(raw.pop().ok_or("missing value after --strategy")?)
            }
            "--checkpoints" => {
                args.checkpoints = Some(raw.pop().ok_or("missing value after --checkpoints")?)
            }
            "--format" => args.format = raw.pop().ok_or("missing value after --format")?.parse()?,
            "--no-gcc" => args.no_gcc = true,
            "--relabel" => args.relabel = true,
            "--samples" => {
                args.samples = Some(
                    raw.pop()
                        .ok_or("missing value after --samples")?
                        .parse()
                        .map_err(|e| format!("bad --samples: {e}"))?,
                )
            }
            "--sketch-bits" => {
                args.sketch_bits = Some(parse_sketch_bits(
                    &raw.pop().ok_or("missing value after --sketch-bits")?,
                )?)
            }
            "--shards" => {
                args.shards = Some(parse_shards(
                    &raw.pop().ok_or("missing value after --shards")?,
                )?)
            }
            "--memory-budget" => {
                args.memory_budget = Some(parse_memory_budget(
                    &raw.pop().ok_or("missing value after --memory-budget")?,
                )?)
            }
            "--socket" => {
                args.socket = Some(PathBuf::from(
                    raw.pop().ok_or("missing value after --socket")?,
                ))
            }
            "--threads" => {
                args.threads = Some(
                    raw.pop()
                        .ok_or("missing value after --threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = raw
                    .pop()
                    .ok_or("missing value after --seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--attempts" => {
                args.attempts = Some(
                    raw.pop()
                        .ok_or("missing value after --attempts")?
                        .parse()
                        .map_err(|e| format!("bad --attempts: {e}"))?,
                )
            }
            "--max-d" => {
                args.max_d = raw
                    .pop()
                    .ok_or("missing value after --max-d")?
                    .parse()
                    .map_err(|e| format!("bad --max-d: {e}"))?
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            _ => args.positional.push(tok),
        }
    }
    Ok(args)
}

fn need_out(a: &Args) -> Result<&PathBuf, String> {
    a.out.as_ref().ok_or_else(|| "missing -o <output>".into())
}

impl Args {
    fn attack_options(&self) -> AttackCmdOptions {
        AttackCmdOptions {
            strategy: self.strategy.clone(),
            seed: self.seed,
            checkpoints: self.checkpoints.clone(),
            format: self.format,
            gcc_off: self.no_gcc,
            samples: self.samples,
        }
    }

    fn metrics_options(&self) -> MetricsOptions {
        MetricsOptions {
            metrics: self.metrics.clone(),
            format: self.format,
            gcc_off: self.no_gcc,
            samples: self.samples,
            sketch_bits: self.sketch_bits,
            shards: self.shards,
            memory_budget: self.memory_budget,
            relabel: self.relabel,
        }
    }
}

fn run() -> Result<String, String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        return Ok(USAGE.to_string());
    }
    let cmd = argv.remove(0);
    let a = parse(argv)?;
    let p = |i: usize| -> Result<&String, String> {
        a.positional
            .get(i)
            .ok_or_else(|| format!("missing argument #{} — see `dk --help`", i + 1))
    };
    let parse_d =
        |s: &str| -> Result<u8, String> { s.parse().map_err(|e| format!("bad d {s:?}: {e}")) };
    let err = |e: dk_graph::GraphError| e.to_string();
    match cmd.as_str() {
        "extract" => cmd_extract(parse_d(p(0)?)?, p(1)?.as_ref(), need_out(&a)?).map_err(err),
        "generate" => cmd_generate(
            parse_d(p(0)?)?,
            p(1)?.as_ref(),
            need_out(&a)?,
            a.algo,
            a.seed,
        )
        .map_err(err),
        "rewire" => cmd_rewire(
            parse_d(p(0)?)?,
            p(1)?.as_ref(),
            need_out(&a)?,
            a.attempts,
            a.seed,
        )
        .map_err(err),
        "explore" => cmd_explore(p(0)?, p(1)?, p(2)?.as_ref(), need_out(&a)?, a.seed).map_err(err),
        // `--metrics help` needs no graph files — don't demand any
        "metrics" | "compare" if a.metrics.as_deref() == Some("help") => {
            cmd_metrics(std::path::Path::new(""), &a.metrics_options()).map_err(err)
        }
        "metrics" => cmd_metrics(p(0)?.as_ref(), &a.metrics_options()).map_err(err),
        "compare" => cmd_compare(p(0)?.as_ref(), p(1)?.as_ref(), &a.metrics_options()).map_err(err),
        "attack" => cmd_attack(p(0)?.as_ref(), &a.attack_options()).map_err(err),
        "census" => cmd_census(p(0)?.as_ref(), a.max_d).map_err(err),
        "viz" => cmd_viz(p(0)?.as_ref(), need_out(&a)?, a.seed).map_err(err),
        "serve" => {
            let socket = a.socket.as_ref().ok_or("missing --socket <path.sock>")?;
            cmd_serve(socket, a.memory_budget, a.threads.unwrap_or(1)).map_err(err)
        }
        "client" => {
            let socket = a.socket.as_ref().ok_or("missing --socket <path.sock>")?;
            cmd_client(socket, p(0)?).map_err(err)
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

//! # dk-cli — command implementations for the `dk` tool
//!
//! The paper announces the release of "source code for our analysis tools
//! to measure an input graph's dK-distribution and our generator able to
//! produce random graphs possessing properties `P_d` for d < 4" — the
//! Orbis tool chain. This crate is that interface:
//!
//! ```text
//! dk extract  <d> <graph.edges> -o <dist.dk>      measure a dK-distribution
//! dk generate <d> <dist.dk>     -o <out.edges>    construct a dK-graph
//! dk rewire   <d> <graph.edges> -o <out.edges>    dK-randomizing rewiring
//! dk explore  <s|s2|c> <min|max> <graph.edges> -o <out.edges>
//! dk metrics  <graph.edges> [--metrics LIST] [--format text|json] [--no-gcc] [--samples K]
//!             [--sketch-bits B] [--shards N] [--memory-budget B] [--relabel]
//! dk compare  <a.edges> <b.edges> [--metrics LIST] [--format text|json] [--no-gcc] [--samples K]
//!             [--sketch-bits B] [--shards N] [--memory-budget B] [--relabel]
//! dk attack   <graph.edges> [--strategy S] [--checkpoints F,..] [--seed N] [--format text|json]
//! dk census   <graph.edges>                       Table 5 census
//! dk viz      <graph.edges>     -o <out.svg>      layout + SVG
//! ```
//!
//! All logic lives here (testable, returns `Result`); `main.rs` only
//! parses arguments and prints errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dk_core::dist::{AnyDist, Dist1K, Dist2K, Dist3K};
use dk_core::explore::{explore_1k_likelihood, explore_2k, Direction, ExploreOptions, Objective2K};
use dk_core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_core::generate::Generator;
use dk_core::{census, io as dist_io};
use dk_graph::{io as graph_io, GraphError};
use dk_metrics::{json, Analyzer, AnyMetric, AttackOptions, GccPolicy, MetricTable, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::str::FromStr;

/// Construction algorithm selector for `dk generate`.
///
/// The canonical name set (`stochastic | pseudograph | matching |
/// targeting | rewiring`) lives in core — the CLI, the bench harness,
/// and tests all parse and print through [`dk_core::generate::Method`].
pub type GenAlgo = dk_core::generate::Method;

/// `dk extract`: writes the dK-distribution of a graph to a text file.
pub fn cmd_extract(d: u8, graph_path: &Path, out: &Path) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let mut buf = Vec::new();
    let what = match d {
        1 => {
            dist_io::write_1k(&Dist1K::from_graph(&g), &mut buf)?;
            "1K (degree distribution)"
        }
        2 => {
            dist_io::write_2k(&Dist2K::from_graph(&g), &mut buf)?;
            "2K (joint degree distribution)"
        }
        3 => {
            dist_io::write_3k(&Dist3K::from_graph(&g), &mut buf)?;
            "3K (wedge + triangle distributions)"
        }
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "extract supports d in 1..=3, got {other}"
            )))
        }
    };
    std::fs::write(out, &buf)?;
    Ok(format!(
        "extracted {what} of {} (n = {}, m = {}) -> {}",
        graph_path.display(),
        g.node_count(),
        g.edge_count(),
        out.display()
    ))
}

/// `dk generate`: constructs a dK-graph from a distribution file.
///
/// Single dispatch through the capability-checked [`Generator`] facade —
/// unsupported `(d, algorithm)` cells surface as typed errors from core,
/// not as CLI-side matches.
pub fn cmd_generate(
    d: u8,
    dist_path: &Path,
    out: &Path,
    algo: GenAlgo,
    seed: u64,
) -> Result<String, GraphError> {
    if !(1..=3).contains(&d) {
        return Err(GraphError::ConstructionFailed(format!(
            "generate supports d in 1..=3, got {d}"
        )));
    }
    if algo.needs_reference() {
        return Err(GraphError::ConstructionFailed(
            "--algo rewiring constructs by rewiring an existing graph, not from a \
             distribution file — use `dk rewire <d> <graph.edges>` instead"
                .into(),
        ));
    }
    let file = std::fs::File::open(dist_path)?;
    let dist = AnyDist::read(d, file)?;
    let generated = Generator::new(algo)
        .seed(seed)
        .build(&dist)
        .map_err(GraphError::from)?;
    let g = generated.graph;
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "generated {d}K-graph via {algo}: n = {}, m = {} -> {}",
        g.node_count(),
        g.edge_count(),
        out.display()
    ))
}

/// `dk rewire`: dK-randomizing rewiring of a graph.
pub fn cmd_rewire(
    d: u8,
    graph_path: &Path,
    out: &Path,
    attempts: Option<u64>,
    seed: u64,
) -> Result<String, GraphError> {
    let mut g = graph_io::load_edge_list(graph_path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = RewireOptions {
        budget: attempts.map_or(SwapBudget::AttemptsPerEdge(50.0), SwapBudget::Attempts),
    };
    let stats = randomize(&mut g, d, &opts, &mut rng);
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "{d}K-randomized: {} accepted / {} attempted swaps -> {}",
        stats.accepted,
        stats.attempts,
        out.display()
    ))
}

/// `dk explore`: drive S, S2, or C̄ to an extreme.
pub fn cmd_explore(
    objective: &str,
    direction: &str,
    graph_path: &Path,
    out: &Path,
    seed: u64,
) -> Result<String, GraphError> {
    let mut g = graph_io::load_edge_list(graph_path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dir = match direction {
        "min" => Direction::Minimize,
        "max" => Direction::Maximize,
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "direction must be min or max, got {other:?}"
            )))
        }
    };
    let opts = ExploreOptions::default();
    let stats = match objective {
        "s" => explore_1k_likelihood(&mut g, dir, &opts, &mut rng),
        "s2" => explore_2k(
            &mut g,
            Objective2K::SecondOrderLikelihood,
            dir,
            &opts,
            &mut rng,
        ),
        "c" => explore_2k(&mut g, Objective2K::MeanClustering, dir, &opts, &mut rng),
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "objective must be s, s2, or c, got {other:?}"
            )))
        }
    };
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "explored {objective} {direction}: {} -> {} ({} accepted moves) -> {}",
        stats.initial_value,
        stats.final_value,
        stats.accepted,
        out.display()
    ))
}

/// Output format shared by `dk metrics` and `dk compare`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable text (the default).
    #[default]
    Text,
    /// Machine-readable JSON (hand-rolled; see `dk_metrics::json`).
    Json,
}

impl FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format {other:?} (text|json)")),
        }
    }
}

/// Options for [`cmd_metrics`], mapped one-to-one from CLI flags.
#[derive(Clone, Debug, Default)]
pub struct MetricsOptions {
    /// `--metrics LIST`: comma-separated names/sets (see
    /// [`AnyMetric::parse_list`]); `None` = the paper's default battery,
    /// `Some("help")` prints the capability listing.
    pub metrics: Option<String>,
    /// `--format text|json`.
    pub format: OutputFormat,
    /// `--no-gcc` clears this (default: extract the GCC, §5.2).
    pub gcc_off: bool,
    /// `--samples K`: pivot budget for the sampled `*_approx` metrics
    /// (`None` = the analyzer default, 64).
    pub samples: Option<usize>,
    /// `--sketch-bits B`: HyperLogLog register bits for the sketch
    /// `*_sketch` metrics, validated into `4..=16` at parse time
    /// (`None` = the analyzer default, 8).
    pub sketch_bits: Option<u32>,
    /// `--shards N`: source shard count for the all-pairs/sampled
    /// traversal passes; setting it opts into the streamed route
    /// (`None` = auto — streamed with the default shard count once the
    /// graph is large enough).
    pub shards: Option<usize>,
    /// `--memory-budget BYTES`: traversal working-memory cap (accepts
    /// K/M/G suffixes at parse time); opts into the streamed route.
    pub memory_budget: Option<u64>,
    /// `--relabel`: route the traversal-shaped passes over a
    /// degree-descending relabeled CSR snapshot for cache locality —
    /// the permutation is inverted on every output surface, so the
    /// report is byte-identical either way.
    pub relabel: bool,
}

/// Parses a `--memory-budget` value: a positive integer byte count with
/// an optional `K`/`M`/`G` suffix (powers of 1024, case-insensitive) —
/// e.g. `512M`, `2G`, `67108864`.
pub fn parse_memory_budget(s: &str) -> Result<u64, String> {
    let bad = || {
        format!(
            "bad --memory-budget {s:?}: use a positive byte count, \
             optionally with a K/M/G suffix (e.g. 512M, 2G)"
        )
    };
    let (digits, shift) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 10),
        Some('m') | Some('M') => (&s[..s.len() - 1], 20),
        Some('g') | Some('G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let value: u64 = digits.parse().map_err(|_| bad())?;
    if value == 0 {
        return Err(bad());
    }
    value
        .checked_shl(shift)
        .filter(|v| *v >> shift == value)
        .ok_or_else(bad)
}

/// Parses a `--sketch-bits` value: a register-bit count in `4..=16`
/// (each analyzed node carries `2^B` one-byte registers, so `B` outside
/// that window is either statistically useless or a memory foot-gun).
pub fn parse_sketch_bits(s: &str) -> Result<u32, String> {
    match s.parse::<u32>() {
        Ok(b) if (4..=16).contains(&b) => Ok(b),
        _ => Err(format!(
            "bad --sketch-bits {s:?}: need a register-bit count in 4..=16 \
             (e.g. --sketch-bits 8; error ~1.04/sqrt(2^B), memory n*2^B bytes)"
        )),
    }
}

/// Parses a `--shards` value: a positive shard count.
pub fn parse_shards(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "bad --shards {s:?}: need a positive shard count (e.g. --shards 64)"
        )),
    }
}

fn build_analyzer(
    opts: &MetricsOptions,
    default_metrics: Option<&str>,
) -> Result<Analyzer, GraphError> {
    let mut analyzer = Analyzer::new();
    if let Some(list) = opts.metrics.as_deref().or(default_metrics) {
        analyzer = analyzer
            .metric_names(list)
            .map_err(GraphError::ConstructionFailed)?;
    }
    if opts.gcc_off {
        analyzer = analyzer.gcc(GccPolicy::Whole);
    }
    if let Some(k) = opts.samples {
        analyzer = analyzer.sample_sources(k);
    }
    if let Some(bits) = opts.sketch_bits {
        analyzer = analyzer.sketch_bits(bits);
    }
    if let Some(shards) = opts.shards {
        analyzer = analyzer.shards(shards);
    }
    if let Some(budget) = opts.memory_budget {
        analyzer = analyzer.memory_budget(budget);
    }
    if opts.relabel {
        analyzer = analyzer.relabel(true);
    }
    Ok(analyzer)
}

/// `dk compare`: the paper's abstract promises we "can quantitatively
/// measure the distance between two graphs" — this prints `D_1`, `D_2`,
/// `D_3` between two edge lists, plus their scalar batteries side by
/// side (one [`Analyzer`] pass per graph, shared `MetricTable`
/// formatter).
///
/// Honors the full flag set: `--metrics` (default: the `cheap` scalar
/// set), `--no-gcc`, `--format`.
pub fn cmd_compare(
    a_path: &Path,
    b_path: &Path,
    opts: &MetricsOptions,
) -> Result<String, GraphError> {
    if opts.metrics.as_deref() == Some("help") {
        return Ok(AnyMetric::listing());
    }
    let a = graph_io::load_edge_list(a_path)?;
    let b = graph_io::load_edge_list(b_path)?;
    let d1 = Dist1K::from_graph(&a).distance_sq(&Dist1K::from_graph(&b));
    let d2 = Dist2K::from_graph(&a).distance_sq(&Dist2K::from_graph(&b));
    let d3 = Dist3K::from_graph(&a).distance_sq(&Dist3K::from_graph(&b));
    let analyzer = build_analyzer(opts, Some("cheap"))?;
    let ra = analyzer.analyze(&a);
    let rb = analyzer.analyze(&b);
    match opts.format {
        OutputFormat::Json => {
            // reports nest under fixed keys — raw paths as keys could
            // collide with each other or with d1/d2/d3
            let side = |path: &Path, rep: dk_metrics::Report| {
                json::object([
                    (
                        "path".into(),
                        format!("\"{}\"", json::escape(&path.display().to_string())),
                    ),
                    ("report".into(), rep.to_json()),
                ])
            };
            Ok(json::object([
                ("d1".into(), json::number(d1)),
                ("d2".into(), json::number(d2)),
                ("d3".into(), json::number(d3)),
                ("a".into(), side(a_path, ra)),
                ("b".into(), side(b_path, rb)),
            ]))
        }
        OutputFormat::Text => {
            let mut table = MetricTable::new();
            table.push(a_path.display().to_string(), ra);
            table.push(b_path.display().to_string(), rb);
            Ok(format!(
                "dK distances (sums of squared count differences; 0 = same distribution):\n\
                 D1 = {d1}\nD2 = {d2}\nD3 = {d3}\n\n{}",
                table.render()
            ))
        }
    }
}

/// `dk metrics`: analyzes one graph through the [`Analyzer`] facade.
///
/// The default selection is the paper's Table 2 battery; `--metrics`
/// takes any registry names or sets (`--metrics all` includes
/// betweenness, `--metrics help` lists capabilities), `--no-gcc` skips
/// GCC extraction, `--samples K` sets the pivot budget of the sampled
/// `*_approx` metrics, `--sketch-bits B` sets the HyperLogLog register
/// bits of the sketch `*_sketch` metrics (error `1.04/√2^B`, memory
/// `n·2^B` bytes), `--shards N` / `--memory-budget B` opt the
/// traversal passes into the sharded streaming route (identical
/// results, memory bounded by workers — auto-selected anyway past
/// ~131k nodes), `--relabel` runs them over a degree-descending
/// relabeled snapshot for cache locality (byte-identical output), and
/// `--format json` emits the machine-readable report.
pub fn cmd_metrics(graph_path: &Path, opts: &MetricsOptions) -> Result<String, GraphError> {
    if opts.metrics.as_deref() == Some("help") {
        return Ok(AnyMetric::listing());
    }
    let g = graph_io::load_edge_list(graph_path)?;
    let analyzer = build_analyzer(opts, None)?;
    let rep = analyzer.analyze(&g);
    Ok(match opts.format {
        OutputFormat::Json => rep.to_json(),
        OutputFormat::Text => format!("{}\n{}", graph_path.display(), rep.to_text()),
    })
}

/// Options for [`cmd_attack`], mapped one-to-one from CLI flags.
#[derive(Clone, Debug)]
pub struct AttackCmdOptions {
    /// `--strategy S`: removal-order strategy name (`None` = `degree`).
    pub strategy: Option<String>,
    /// `--seed N`: seed of the `random` strategy's order (default 1,
    /// like the other verbs; the ranked strategies ignore it).
    pub seed: u64,
    /// `--checkpoints F1,F2,...`: removal fractions in `0..=1` at which
    /// to probe the residual GCC (`None` = `0.01,0.05,0.1,0.25,0.5`).
    pub checkpoints: Option<String>,
    /// `--format text|json`.
    pub format: OutputFormat,
    /// `--no-gcc` clears this (default: sweep the GCC, §5.2).
    pub gcc_off: bool,
    /// `--samples K`: pivot budget of the betweenness ranking and the
    /// checkpoint distance probes (`None` = the analyzer default, 64).
    pub samples: Option<usize>,
}

impl Default for AttackCmdOptions {
    fn default() -> Self {
        AttackCmdOptions {
            strategy: None,
            seed: 1,
            checkpoints: None,
            format: OutputFormat::Text,
            gcc_off: false,
            samples: None,
        }
    }
}

/// Parses a `--checkpoints` value: comma-separated removal fractions,
/// each in `0.0..=1.0`, returned sorted ascending with exact
/// duplicates removed — e.g. `0.5,0.1,0.1` parses to `[0.1, 0.5]`.
/// Normalizing here keeps the CLI surface honest about what the sweep
/// actually probes (the report is checkpoint-sorted regardless), so
/// echoed option strings and downstream keys never disagree on order.
pub fn parse_checkpoints(s: &str) -> Result<Vec<f64>, String> {
    let bad = || {
        format!(
            "bad --checkpoints {s:?}: use comma-separated removal fractions \
             in 0..=1 (e.g. --checkpoints 0.05,0.1,0.25)"
        )
    };
    let mut fractions = s
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| match t.parse::<f64>() {
            Ok(f) if (0.0..=1.0).contains(&f) => Ok(f),
            _ => Err(bad()),
        })
        .collect::<Result<Vec<f64>, String>>()?;
    if fractions.is_empty() {
        return Err(bad());
    }
    // every value passed the 0..=1 range check, so no NaNs here
    fractions.sort_by(f64::total_cmp);
    fractions.dedup();
    Ok(fractions)
}

/// `dk attack`: node-removal percolation sweep over one graph.
///
/// Computes the full GCC-fraction trajectory under the chosen removal
/// strategy (one reverse union-find pass — see `dk_metrics::attack`),
/// probes the residual GCC at the requested removal fractions, and
/// reports the interpolated fraction where the GCC halves. `--format
/// json` emits the machine-readable report with a decimated curve.
pub fn cmd_attack(graph_path: &Path, opts: &AttackCmdOptions) -> Result<String, GraphError> {
    let strategy: Strategy = match opts.strategy.as_deref() {
        None => Strategy::Degree,
        Some(s) => s.parse().map_err(|_| {
            GraphError::ConstructionFailed(format!(
                "bad --strategy {s:?}: use random, degree, betweenness, or degree-adaptive"
            ))
        })?,
    };
    let checkpoints = match opts.checkpoints.as_deref() {
        None => vec![0.01, 0.05, 0.1, 0.25, 0.5],
        Some(s) => parse_checkpoints(s).map_err(GraphError::ConstructionFailed)?,
    };
    let g = graph_io::load_edge_list(graph_path)?;
    let mut analyzer = Analyzer::new();
    if opts.gcc_off {
        analyzer = analyzer.gcc(GccPolicy::Whole);
    }
    if let Some(k) = opts.samples {
        analyzer = analyzer.sample_sources(k);
    }
    let rep = analyzer.attack(
        &g,
        &AttackOptions {
            strategy,
            seed: opts.seed,
            checkpoints,
        },
    );
    Ok(match opts.format {
        OutputFormat::Json => rep.to_json(),
        OutputFormat::Text => {
            let mut out = format!(
                "attack sweep of {} (strategy {}, analyzed n = {}, m = {})\n",
                graph_path.display(),
                rep.strategy,
                rep.nodes,
                rep.edges
            );
            match rep.threshold(0.5) {
                Some(t) => out.push_str(&format!("GCC halves at removal fraction {t:.6}\n")),
                None => out.push_str("GCC never drops below 1/2\n"),
            }
            out.push_str(&format!(
                "{:>9} {:>8} {:>9} {:>11} {:>13} {:>9}\n",
                "fraction", "removed", "gcc", "components", "avg distance", "hub"
            ));
            for c in &rep.checkpoints {
                out.push_str(&format!(
                    "{:>9.4} {:>8} {:>9.4} {:>11} {:>13} {:>9}\n",
                    c.fraction,
                    c.removed,
                    c.gcc_fraction,
                    c.components,
                    c.avg_distance_estimate
                        .map_or("-".to_string(), |d| format!("{d:.4}")),
                    c.hub.map_or("-".to_string(), |h| h.to_string()),
                ));
            }
            out
        }
    })
}

/// `dk serve`: runs the analysis/generation daemon in the foreground
/// until a client sends the `shutdown` op. The protocol reference
/// lives in the `dk_serve` crate docs.
pub fn cmd_serve(
    socket: &Path,
    memory_budget: Option<u64>,
    threads: usize,
) -> Result<String, GraphError> {
    let config = dk_serve::ServerConfig {
        socket: socket.to_path_buf(),
        memory_budget,
        threads,
    };
    dk_serve::run(&config)
        .map_err(|e| GraphError::ConstructionFailed(format!("serve failed on {socket:?}: {e}")))?;
    Ok(format!(
        "serve: shut down, removed socket {}",
        socket.display()
    ))
}

/// `dk client`: sends one JSON request line to a running daemon and
/// prints the one-line response.
pub fn cmd_client(socket: &Path, request: &str) -> Result<String, GraphError> {
    dk_serve::one_shot(socket, request)
        .map_err(|e| GraphError::ConstructionFailed(format!("client failed on {socket:?}: {e}")))
}

/// `dk census`: prints the Table 5 rewiring census.
pub fn cmd_census(graph_path: &Path, max_d: u8) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let mut out = format!(
        "rewiring census of {} (n = {}, m = {}):\n{:>3} {:>16} {:>22}\n",
        graph_path.display(),
        g.node_count(),
        g.edge_count(),
        "d",
        "possible",
        "minus obvious isos"
    );
    for d in 0..=max_d.min(3) {
        let c = census::count_initial_rewirings(&g, d);
        out.push_str(&format!(
            "{d:>3} {:>16} {:>22}\n",
            c.total,
            c.excluding_obvious_isomorphic
                .map_or("-".to_string(), |v| v.to_string())
        ));
    }
    Ok(out)
}

/// `dk viz`: force-directed layout to SVG.
pub fn cmd_viz(graph_path: &Path, out: &Path, seed: u64) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let (gcc, _) = dk_graph::giant_component(&g);
    let mut rng = StdRng::seed_from_u64(seed);
    let layout_opts = dk_graph::layout::LayoutOptions {
        repulsion_sample: if gcc.node_count() > 2500 {
            Some(32)
        } else {
            None
        },
        ..Default::default()
    };
    let pos = dk_graph::layout::fruchterman_reingold(&gcc, &layout_opts, &mut rng);
    let svg = dk_graph::svg::render_svg(
        &gcc,
        &pos,
        &dk_graph::svg::SvgOptions {
            title: graph_path.display().to_string(),
            ..Default::default()
        },
    );
    std::fs::write(out, svg)?;
    Ok(format!(
        "rendered GCC (n = {}) -> {}",
        gcc.node_count(),
        out.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dk_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_karate() -> std::path::PathBuf {
        let p = tmp("karate.edges");
        graph_io::save_edge_list(&builders::karate_club(), &p).unwrap();
        p
    }

    #[test]
    fn extract_generate_roundtrip_2k() {
        let graph = write_karate();
        let dist = tmp("karate.2k");
        let out = tmp("karate_2k.edges");
        cmd_extract(2, &graph, &dist).unwrap();
        let msg = cmd_generate(2, &dist, &out, GenAlgo::Matching, 7).unwrap();
        assert!(msg.contains("m = 78"), "{msg}");
        let g = graph_io::load_edge_list(&out).unwrap();
        assert_eq!(
            Dist2K::from_graph(&g),
            Dist2K::from_graph(&builders::karate_club())
        );
    }

    #[test]
    fn extract_rejects_bad_d() {
        let graph = write_karate();
        assert!(cmd_extract(0, &graph, &tmp("x.dk")).is_err());
        assert!(cmd_extract(4, &graph, &tmp("x.dk")).is_err());
    }

    #[test]
    fn generate_3k_requires_targeting() {
        let graph = write_karate();
        let dist = tmp("karate.3k");
        cmd_extract(3, &graph, &dist).unwrap();
        let err = cmd_generate(3, &dist, &tmp("y.edges"), GenAlgo::Matching, 1).unwrap_err();
        assert!(err.to_string().contains("targeting"), "{err}");
    }

    #[test]
    fn rewire_preserves_level() {
        let graph = write_karate();
        let out = tmp("karate_rw.edges");
        let msg = cmd_rewire(2, &graph, &out, Some(2000), 3).unwrap();
        assert!(msg.contains("accepted"), "{msg}");
        let g = graph_io::load_edge_list(&out).unwrap();
        assert_eq!(
            Dist2K::from_graph(&g),
            Dist2K::from_graph(&builders::karate_club())
        );
    }

    #[test]
    fn explore_moves_objective() {
        let graph = write_karate();
        let out = tmp("karate_maxs.edges");
        let msg = cmd_explore("s", "max", &graph, &out, 5).unwrap();
        assert!(msg.contains("accepted moves"), "{msg}");
        assert!(cmd_explore("bogus", "max", &graph, &out, 5).is_err());
        assert!(cmd_explore("s", "sideways", &graph, &out, 5).is_err());
    }

    #[test]
    fn compare_zero_on_identical_graphs() {
        let graph = write_karate();
        let out = cmd_compare(&graph, &graph, &MetricsOptions::default()).unwrap();
        assert!(out.contains("D1 = 0"), "{out}");
        assert!(out.contains("D2 = 0"));
        assert!(out.contains("D3 = 0"));
        assert!(out.contains("k_avg"), "side-by-side battery: {out}");
        // and nonzero against a rewired version
        let rw = tmp("karate_cmp.edges");
        cmd_rewire(1, &graph, &rw, Some(2000), 9).unwrap();
        let out = cmd_compare(&graph, &rw, &MetricsOptions::default()).unwrap();
        assert!(out.contains("D1 = 0"), "1K preserved: {out}");
        assert!(!out.contains("D2 = 0"), "JDD should differ: {out}");
    }

    #[test]
    fn compare_json_carries_distances_and_reports() {
        let graph = write_karate();
        let out = cmd_compare(
            &graph,
            &graph,
            &MetricsOptions {
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.contains("\"d1\":0"), "{out}");
        assert!(out.contains("\"d3\":0"), "{out}");
        assert!(out.contains("\"k_avg\":"), "{out}");
        // identical paths must not collide: reports nest under a/b
        assert!(out.contains("\"a\":{\"path\":"), "{out}");
        assert!(out.contains("\"b\":{\"path\":"), "{out}");
    }

    #[test]
    fn compare_honors_metrics_and_gcc_flags() {
        let graph = write_karate();
        // custom metric selection flows into the side-by-side battery
        let out = cmd_compare(
            &graph,
            &graph,
            &MetricsOptions {
                metrics: Some("k_avg,b_max".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.contains("b_max"), "{out}");
        // bad selections fail instead of being silently ignored
        assert!(cmd_compare(
            &graph,
            &graph,
            &MetricsOptions {
                metrics: Some("bogus".into()),
                ..Default::default()
            },
        )
        .is_err());
    }

    #[test]
    fn metrics_and_census_render() {
        let graph = write_karate();
        let m = cmd_metrics(&graph, &MetricsOptions::default()).unwrap();
        assert!(m.contains("n = 34"));
        assert!(m.contains("k_avg"));
        assert!(m.contains("lambda1"), "default battery is full: {m}");
        let c = cmd_census(&graph, 1).unwrap();
        assert!(c.lines().count() >= 4);
    }

    #[test]
    fn metrics_selection_reaches_betweenness() {
        // pre-facade, betweenness was unreachable from the CLI
        let graph = write_karate();
        let m = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("b_max,b_k".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.contains("b_max"), "{m}");
        assert!(m.contains("b_k:"), "series block: {m}");
        let err = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("bogus".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown metric"), "{err}");
    }

    #[test]
    fn metrics_sampled_selection_and_samples_flag() {
        let graph = write_karate();
        // samples >= n: sampled metrics must equal their exact twins
        let opts = MetricsOptions {
            metrics: Some("d_avg,b_max,distance_approx,betweenness_approx".into()),
            samples: Some(64),
            ..Default::default()
        };
        let m = cmd_metrics(&graph, &opts).unwrap();
        let value = |name: &str| {
            m.lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("{name} missing in {m}"))
                .split_whitespace()
                .nth(1)
                .unwrap()
                .to_string()
        };
        assert_eq!(value("distance_approx"), value("d_avg"), "{m}");
        assert_eq!(value("betweenness_approx"), value("b_max"), "{m}");
        // a small pivot budget still produces defined values
        let approx = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("distance_approx".into()),
                samples: Some(8),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(approx.contains("\"distance_approx\":"), "{approx}");
        assert!(!approx.contains("null"), "{approx}");
    }

    #[test]
    fn memory_budget_parsing() {
        assert_eq!(parse_memory_budget("123").unwrap(), 123);
        assert_eq!(parse_memory_budget("4K").unwrap(), 4096);
        assert_eq!(parse_memory_budget("512m").unwrap(), 512 << 20);
        assert_eq!(parse_memory_budget("2G").unwrap(), 2 << 30);
        for bad in [
            "0",
            "0M",
            "",
            "G",
            "12X",
            "-5",
            "1.5G",
            "99999999999999999999G",
        ] {
            let err = parse_memory_budget(bad).unwrap_err();
            assert!(err.contains("--memory-budget"), "{bad}: {err}");
            assert!(err.contains("512M"), "hint present: {err}");
        }
    }

    #[test]
    fn sketch_bits_parsing() {
        assert_eq!(parse_sketch_bits("4").unwrap(), 4);
        assert_eq!(parse_sketch_bits("8").unwrap(), 8);
        assert_eq!(parse_sketch_bits("16").unwrap(), 16);
        for bad in ["3", "17", "0", "", "-8", "8.5", "many"] {
            let err = parse_sketch_bits(bad).unwrap_err();
            assert!(err.contains("--sketch-bits"), "{bad}: {err}");
            assert!(err.contains("4..=16"), "range named: {err}");
        }
    }

    #[test]
    fn metrics_sketch_selection_and_bits_flag() {
        let graph = write_karate();
        // sketch metrics are reachable by name and defined on karate
        let m = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("d_avg,avg_distance_sketch,effective_diameter_sketch".into()),
                sketch_bits: Some(10),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.contains("\"avg_distance_sketch\":"), "{m}");
        assert!(m.contains("\"effective_diameter_sketch\":"), "{m}");
        assert!(!m.contains("null"), "sketch values defined: {m}");
        // the series twin renders as a [[x, p], ...] series
        let s = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("distance_sketch".into()),
                sketch_bits: Some(8),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(s.contains("\"distance_sketch\":[[1,"), "{s}");
    }

    #[test]
    fn shards_parsing() {
        assert_eq!(parse_shards("1").unwrap(), 1);
        assert_eq!(parse_shards("64").unwrap(), 64);
        for bad in ["0", "", "-2", "many"] {
            let err = parse_shards(bad).unwrap_err();
            assert!(err.contains("--shards"), "{bad}: {err}");
        }
    }

    #[test]
    fn metrics_streaming_flags_preserve_output() {
        // the streamed route at the default shard count must not change
        // a single output byte; a custom shard count keeps histogram
        // metrics identical too (integer reducers)
        let graph = write_karate();
        let base = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("d_avg,d_std,diameter,b_max".into()),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        let streamed = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("d_avg,d_std,diameter,b_max".into()),
                format: OutputFormat::Json,
                shards: Some(64),
                memory_budget: Some(1 << 30),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base, streamed);
        let seven = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("d_avg,diameter".into()),
                format: OutputFormat::Json,
                shards: Some(7),
                ..Default::default()
            },
        )
        .unwrap();
        for key in ["\"d_avg\":", "\"diameter\":"] {
            let val = |s: &str| {
                let at = s.find(key).unwrap();
                s[at..]
                    .chars()
                    .take_while(|c| *c != ',' && *c != '}')
                    .collect::<String>()
            };
            assert_eq!(val(&base), val(&seven), "{key}");
        }
    }

    #[test]
    fn metrics_json_and_no_gcc() {
        // karate + isolated node: GCC drops it, --no-gcc keeps it
        let p = tmp("karate_iso.edges");
        let mut g = builders::karate_club();
        g.add_node();
        graph_io::save_edge_list(&g, &p).unwrap();
        let json_out = cmd_metrics(
            &p,
            &MetricsOptions {
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(json_out.contains("\"analyzed_nodes\":34"), "{json_out}");
        let whole = cmd_metrics(
            &p,
            &MetricsOptions {
                format: OutputFormat::Json,
                gcc_off: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(whole.contains("\"analyzed_nodes\":35"), "{whole}");
        assert!(whole.contains("\"gcc\":false"), "{whole}");
    }

    #[test]
    fn metrics_help_lists_capabilities() {
        let graph = write_karate();
        let m = cmd_metrics(
            &graph,
            &MetricsOptions {
                metrics: Some("help".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.contains("all-pairs"), "{m}");
        assert!(m.contains("b_max"), "{m}");
    }

    #[test]
    fn attack_renders_text_and_json() {
        let graph = write_karate();
        let t = cmd_attack(&graph, &AttackCmdOptions::default()).unwrap();
        assert!(t.contains("strategy degree"), "{t}");
        assert!(t.contains("GCC halves at removal fraction"), "{t}");
        assert!(t.contains("avg distance"), "checkpoint table: {t}");
        let j = cmd_attack(
            &graph,
            &AttackCmdOptions {
                strategy: Some("degree-adaptive".into()),
                checkpoints: Some("0.0, 0.25".into()),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(j.contains("\"strategy\":\"degree-adaptive\""), "{j}");
        assert!(j.contains("\"attack_threshold\":"), "{j}");
        assert!(j.contains("\"checkpoints\":[{\"fraction\":0"), "{j}");
        // karate is connected: the sweep covers all 34 nodes
        assert!(j.contains("\"nodes\":34"), "{j}");
    }

    #[test]
    fn attack_random_is_seed_reproducible() {
        let graph = write_karate();
        let run = |seed| {
            cmd_attack(
                &graph,
                &AttackCmdOptions {
                    strategy: Some("random".into()),
                    seed,
                    format: OutputFormat::Json,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        assert_eq!(run(7), run(7), "same seed, same report");
        assert_ne!(run(7), run(8), "different failure order");
    }

    #[test]
    fn attack_rejections_are_cli_worded() {
        let graph = write_karate();
        let err = cmd_attack(
            &graph,
            &AttackCmdOptions {
                strategy: Some("bogus".into()),
                ..Default::default()
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--strategy"), "{msg}");
        assert!(msg.contains("degree-adaptive"), "options listed: {msg}");
        assert!(!msg.contains("Strategy"), "library API leaked: {msg}");
        for bad in ["1.5", "-0.1", "0.1;0.2", "", "half"] {
            let err = parse_checkpoints(bad).unwrap_err();
            assert!(err.contains("--checkpoints"), "{bad}: {err}");
            assert!(err.contains("0..=1"), "range named: {err}");
        }
        assert_eq!(parse_checkpoints("0.05, 0.1,0.25").unwrap().len(), 3);
    }

    #[test]
    fn checkpoints_are_sorted_and_deduped() {
        // the doc example: duplicates dropped, order normalized
        assert_eq!(parse_checkpoints("0.5,0.1,0.1").unwrap(), vec![0.1, 0.5]);
        assert_eq!(
            parse_checkpoints("1,0.25,0,0.25").unwrap(),
            vec![0.0, 0.25, 1.0]
        );
        // already-clean input passes through untouched
        assert_eq!(
            parse_checkpoints("0.01,0.05,0.1").unwrap(),
            vec![0.01, 0.05, 0.1]
        );
    }

    #[test]
    fn attack_checkpoints_come_back_ascending() {
        let graph = write_karate();
        let j = cmd_attack(
            &graph,
            &AttackCmdOptions {
                checkpoints: Some("0.5,0.1,0.1,0.25".into()),
                format: OutputFormat::Json,
                ..Default::default()
            },
        )
        .unwrap();
        let fractions: Vec<f64> = j
            .match_indices("\"fraction\":")
            .map(|(i, _)| {
                let rest = &j[i + "\"fraction\":".len()..];
                let end = rest.find([',', '}']).unwrap();
                rest[..end].parse().unwrap()
            })
            .collect();
        assert_eq!(fractions, vec![0.1, 0.25, 0.5], "ascending, deduped: {j}");
    }

    #[test]
    fn viz_writes_svg() {
        let graph = write_karate();
        let out = tmp("karate.svg");
        cmd_viz(&graph, &out, 1).unwrap();
        let svg = std::fs::read_to_string(&out).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn algo_parsing() {
        assert_eq!("matching".parse::<GenAlgo>().unwrap(), GenAlgo::Matching);
        assert!("bogus".parse::<GenAlgo>().is_err());
    }

    #[test]
    fn generate_rejects_rewiring_with_cli_worded_hint() {
        // `rewiring` parses (shared Method name set) but cannot construct
        // from a distribution file; the error must point at `dk rewire`,
        // not at library API.
        let graph = write_karate();
        let dist = tmp("karate_rw.2k");
        cmd_extract(2, &graph, &dist).unwrap();
        let err = cmd_generate(2, &dist, &tmp("z.edges"), GenAlgo::Rewiring, 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("dk rewire"), "{msg}");
        assert!(!msg.contains("Generator::"), "library API leaked: {msg}");
    }
}

//! # dk-cli — command implementations for the `dk` tool
//!
//! The paper announces the release of "source code for our analysis tools
//! to measure an input graph's dK-distribution and our generator able to
//! produce random graphs possessing properties `P_d` for d < 4" — the
//! Orbis tool chain. This crate is that interface:
//!
//! ```text
//! dk extract  <d> <graph.edges> -o <dist.dk>      measure a dK-distribution
//! dk generate <d> <dist.dk>     -o <out.edges>    construct a dK-graph
//! dk rewire   <d> <graph.edges> -o <out.edges>    dK-randomizing rewiring
//! dk explore  <s|s2|c> <min|max> <graph.edges> -o <out.edges>
//! dk metrics  <graph.edges>                       Table 2 battery
//! dk compare  <a.edges> <b.edges>                 D1/D2/D3 distances
//! dk census   <graph.edges>                       Table 5 census
//! dk viz      <graph.edges>     -o <out.svg>      layout + SVG
//! ```
//!
//! All logic lives here (testable, returns `Result`); `main.rs` only
//! parses arguments and prints errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dk_core::dist::{AnyDist, Dist1K, Dist2K, Dist3K};
use dk_core::explore::{explore_1k_likelihood, explore_2k, Direction, ExploreOptions, Objective2K};
use dk_core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_core::generate::Generator;
use dk_core::{census, io as dist_io};
use dk_graph::{io as graph_io, GraphError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Construction algorithm selector for `dk generate`.
///
/// The canonical name set (`stochastic | pseudograph | matching |
/// targeting | rewiring`) lives in core — the CLI, the bench harness,
/// and tests all parse and print through [`dk_core::generate::Method`].
pub type GenAlgo = dk_core::generate::Method;

/// `dk extract`: writes the dK-distribution of a graph to a text file.
pub fn cmd_extract(d: u8, graph_path: &Path, out: &Path) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let mut buf = Vec::new();
    let what = match d {
        1 => {
            dist_io::write_1k(&Dist1K::from_graph(&g), &mut buf)?;
            "1K (degree distribution)"
        }
        2 => {
            dist_io::write_2k(&Dist2K::from_graph(&g), &mut buf)?;
            "2K (joint degree distribution)"
        }
        3 => {
            dist_io::write_3k(&Dist3K::from_graph(&g), &mut buf)?;
            "3K (wedge + triangle distributions)"
        }
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "extract supports d in 1..=3, got {other}"
            )))
        }
    };
    std::fs::write(out, &buf)?;
    Ok(format!(
        "extracted {what} of {} (n = {}, m = {}) -> {}",
        graph_path.display(),
        g.node_count(),
        g.edge_count(),
        out.display()
    ))
}

/// `dk generate`: constructs a dK-graph from a distribution file.
///
/// Single dispatch through the capability-checked [`Generator`] facade —
/// unsupported `(d, algorithm)` cells surface as typed errors from core,
/// not as CLI-side matches.
pub fn cmd_generate(
    d: u8,
    dist_path: &Path,
    out: &Path,
    algo: GenAlgo,
    seed: u64,
) -> Result<String, GraphError> {
    if !(1..=3).contains(&d) {
        return Err(GraphError::ConstructionFailed(format!(
            "generate supports d in 1..=3, got {d}"
        )));
    }
    if algo.needs_reference() {
        return Err(GraphError::ConstructionFailed(
            "--algo rewiring constructs by rewiring an existing graph, not from a \
             distribution file — use `dk rewire <d> <graph.edges>` instead"
                .into(),
        ));
    }
    let file = std::fs::File::open(dist_path)?;
    let dist = AnyDist::read(d, file)?;
    let generated = Generator::new(algo)
        .seed(seed)
        .build(&dist)
        .map_err(GraphError::from)?;
    let g = generated.graph;
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "generated {d}K-graph via {algo}: n = {}, m = {} -> {}",
        g.node_count(),
        g.edge_count(),
        out.display()
    ))
}

/// `dk rewire`: dK-randomizing rewiring of a graph.
pub fn cmd_rewire(
    d: u8,
    graph_path: &Path,
    out: &Path,
    attempts: Option<u64>,
    seed: u64,
) -> Result<String, GraphError> {
    let mut g = graph_io::load_edge_list(graph_path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = RewireOptions {
        budget: attempts.map_or(SwapBudget::AttemptsPerEdge(50.0), SwapBudget::Attempts),
    };
    let stats = randomize(&mut g, d, &opts, &mut rng);
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "{d}K-randomized: {} accepted / {} attempted swaps -> {}",
        stats.accepted,
        stats.attempts,
        out.display()
    ))
}

/// `dk explore`: drive S, S2, or C̄ to an extreme.
pub fn cmd_explore(
    objective: &str,
    direction: &str,
    graph_path: &Path,
    out: &Path,
    seed: u64,
) -> Result<String, GraphError> {
    let mut g = graph_io::load_edge_list(graph_path)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let dir = match direction {
        "min" => Direction::Minimize,
        "max" => Direction::Maximize,
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "direction must be min or max, got {other:?}"
            )))
        }
    };
    let opts = ExploreOptions::default();
    let stats = match objective {
        "s" => explore_1k_likelihood(&mut g, dir, &opts, &mut rng),
        "s2" => explore_2k(
            &mut g,
            Objective2K::SecondOrderLikelihood,
            dir,
            &opts,
            &mut rng,
        ),
        "c" => explore_2k(&mut g, Objective2K::MeanClustering, dir, &opts, &mut rng),
        other => {
            return Err(GraphError::ConstructionFailed(format!(
                "objective must be s, s2, or c, got {other:?}"
            )))
        }
    };
    graph_io::save_edge_list(&g, out)?;
    Ok(format!(
        "explored {objective} {direction}: {} -> {} ({} accepted moves) -> {}",
        stats.initial_value,
        stats.final_value,
        stats.accepted,
        out.display()
    ))
}

/// `dk compare`: the paper's abstract promises we "can quantitatively
/// measure the distance between two graphs" — this prints `D_1`, `D_2`,
/// `D_3` between two edge lists, plus their scalar batteries.
pub fn cmd_compare(a_path: &Path, b_path: &Path) -> Result<String, GraphError> {
    let a = graph_io::load_edge_list(a_path)?;
    let b = graph_io::load_edge_list(b_path)?;
    let d1 = Dist1K::from_graph(&a).distance_sq(&Dist1K::from_graph(&b));
    let d2 = Dist2K::from_graph(&a).distance_sq(&Dist2K::from_graph(&b));
    let d3 = Dist3K::from_graph(&a).distance_sq(&Dist3K::from_graph(&b));
    let ra = dk_metrics::MetricReport::compute_cheap(&a);
    let rb = dk_metrics::MetricReport::compute_cheap(&b);
    Ok(format!(
        "dK distances (sums of squared count differences; 0 = same distribution):\n\
         D1 = {d1}\nD2 = {d2}\nD3 = {d3}\n\n\
         {:<14}{}\n{:<14}{}\n{:<14}{}",
        "",
        dk_metrics::MetricReport::table_header(),
        a_path.display(),
        ra.table_row(),
        b_path.display(),
        rb.table_row()
    ))
}

/// `dk metrics`: prints the Table 2 battery of a graph (GCC).
pub fn cmd_metrics(graph_path: &Path) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let rep = dk_metrics::MetricReport::compute(&g);
    Ok(format!(
        "{}\nn = {}, m = {}, GCC fraction = {:.3}, S = {:.0}, S2 = {:.0}\n{}\n{}",
        graph_path.display(),
        rep.nodes,
        rep.edges,
        rep.gcc_fraction,
        rep.likelihood_s,
        rep.likelihood_s2,
        dk_metrics::MetricReport::table_header(),
        rep.table_row()
    ))
}

/// `dk census`: prints the Table 5 rewiring census.
pub fn cmd_census(graph_path: &Path, max_d: u8) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let mut out = format!(
        "rewiring census of {} (n = {}, m = {}):\n{:>3} {:>16} {:>22}\n",
        graph_path.display(),
        g.node_count(),
        g.edge_count(),
        "d",
        "possible",
        "minus obvious isos"
    );
    for d in 0..=max_d.min(3) {
        let c = census::count_initial_rewirings(&g, d);
        out.push_str(&format!(
            "{d:>3} {:>16} {:>22}\n",
            c.total,
            c.excluding_obvious_isomorphic
                .map_or("-".to_string(), |v| v.to_string())
        ));
    }
    Ok(out)
}

/// `dk viz`: force-directed layout to SVG.
pub fn cmd_viz(graph_path: &Path, out: &Path, seed: u64) -> Result<String, GraphError> {
    let g = graph_io::load_edge_list(graph_path)?;
    let (gcc, _) = dk_graph::giant_component(&g);
    let mut rng = StdRng::seed_from_u64(seed);
    let layout_opts = dk_graph::layout::LayoutOptions {
        repulsion_sample: if gcc.node_count() > 2500 {
            Some(32)
        } else {
            None
        },
        ..Default::default()
    };
    let pos = dk_graph::layout::fruchterman_reingold(&gcc, &layout_opts, &mut rng);
    let svg = dk_graph::svg::render_svg(
        &gcc,
        &pos,
        &dk_graph::svg::SvgOptions {
            title: graph_path.display().to_string(),
            ..Default::default()
        },
    );
    std::fs::write(out, svg)?;
    Ok(format!(
        "rendered GCC (n = {}) -> {}",
        gcc.node_count(),
        out.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dk_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_karate() -> std::path::PathBuf {
        let p = tmp("karate.edges");
        graph_io::save_edge_list(&builders::karate_club(), &p).unwrap();
        p
    }

    #[test]
    fn extract_generate_roundtrip_2k() {
        let graph = write_karate();
        let dist = tmp("karate.2k");
        let out = tmp("karate_2k.edges");
        cmd_extract(2, &graph, &dist).unwrap();
        let msg = cmd_generate(2, &dist, &out, GenAlgo::Matching, 7).unwrap();
        assert!(msg.contains("m = 78"), "{msg}");
        let g = graph_io::load_edge_list(&out).unwrap();
        assert_eq!(
            Dist2K::from_graph(&g),
            Dist2K::from_graph(&builders::karate_club())
        );
    }

    #[test]
    fn extract_rejects_bad_d() {
        let graph = write_karate();
        assert!(cmd_extract(0, &graph, &tmp("x.dk")).is_err());
        assert!(cmd_extract(4, &graph, &tmp("x.dk")).is_err());
    }

    #[test]
    fn generate_3k_requires_targeting() {
        let graph = write_karate();
        let dist = tmp("karate.3k");
        cmd_extract(3, &graph, &dist).unwrap();
        let err = cmd_generate(3, &dist, &tmp("y.edges"), GenAlgo::Matching, 1).unwrap_err();
        assert!(err.to_string().contains("targeting"), "{err}");
    }

    #[test]
    fn rewire_preserves_level() {
        let graph = write_karate();
        let out = tmp("karate_rw.edges");
        let msg = cmd_rewire(2, &graph, &out, Some(2000), 3).unwrap();
        assert!(msg.contains("accepted"), "{msg}");
        let g = graph_io::load_edge_list(&out).unwrap();
        assert_eq!(
            Dist2K::from_graph(&g),
            Dist2K::from_graph(&builders::karate_club())
        );
    }

    #[test]
    fn explore_moves_objective() {
        let graph = write_karate();
        let out = tmp("karate_maxs.edges");
        let msg = cmd_explore("s", "max", &graph, &out, 5).unwrap();
        assert!(msg.contains("accepted moves"), "{msg}");
        assert!(cmd_explore("bogus", "max", &graph, &out, 5).is_err());
        assert!(cmd_explore("s", "sideways", &graph, &out, 5).is_err());
    }

    #[test]
    fn compare_zero_on_identical_graphs() {
        let graph = write_karate();
        let out = cmd_compare(&graph, &graph).unwrap();
        assert!(out.contains("D1 = 0"), "{out}");
        assert!(out.contains("D2 = 0"));
        assert!(out.contains("D3 = 0"));
        // and nonzero against a rewired version
        let rw = tmp("karate_cmp.edges");
        cmd_rewire(1, &graph, &rw, Some(2000), 9).unwrap();
        let out = cmd_compare(&graph, &rw).unwrap();
        assert!(out.contains("D1 = 0"), "1K preserved: {out}");
        assert!(!out.contains("D2 = 0"), "JDD should differ: {out}");
    }

    #[test]
    fn metrics_and_census_render() {
        let graph = write_karate();
        let m = cmd_metrics(&graph).unwrap();
        assert!(m.contains("n = 34"));
        assert!(m.contains("k_avg"));
        let c = cmd_census(&graph, 1).unwrap();
        assert!(c.lines().count() >= 4);
    }

    #[test]
    fn viz_writes_svg() {
        let graph = write_karate();
        let out = tmp("karate.svg");
        cmd_viz(&graph, &out, 1).unwrap();
        let svg = std::fs::read_to_string(&out).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn algo_parsing() {
        assert_eq!("matching".parse::<GenAlgo>().unwrap(), GenAlgo::Matching);
        assert!("bogus".parse::<GenAlgo>().is_err());
    }

    #[test]
    fn generate_rejects_rewiring_with_cli_worded_hint() {
        // `rewiring` parses (shared Method name set) but cannot construct
        // from a distribution file; the error must point at `dk rewire`,
        // not at library API.
        let graph = write_karate();
        let dist = tmp("karate_rw.2k");
        cmd_extract(2, &graph, &dist).unwrap();
        let err = cmd_generate(2, &dist, &tmp("z.edges"), GenAlgo::Rewiring, 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("dk rewire"), "{msg}");
        assert!(!msg.contains("Generator::"), "library API leaked: {msg}");
    }
}

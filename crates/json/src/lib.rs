//! # dk-json — hand-rolled JSON value parser
//!
//! The workspace builds offline without serde (dropped in PR 1), so its
//! JSON surface is split into two deliberately small halves:
//!
//! * **emission** — `dk_metrics::json`, string assembly for reports and
//!   the bench log;
//! * **parsing** — this crate: a recursive-descent parser producing a
//!   full [`JsonValue`] tree.
//!
//! The parser started life as `dk-lint`'s bench-log validity checker
//! (`jsonchk`), which only needed top-level object keys. The `dk serve`
//! protocol needs real values — request verbs, knob numbers, nested
//! options — so the parser was promoted here and extended to build the
//! tree; `jsonchk` is now a thin wrapper over it. Both consumers are
//! dependency-free by design (the linter must build before everything
//! it audits), which is why this crate depends on nothing.
//!
//! Properties:
//!
//! * **Strict**: trailing garbage, unterminated strings, malformed
//!   numbers, bad escapes, and lone surrogates are errors with byte
//!   offsets — never silent repair.
//! * **Bounded**: nesting deeper than [`MAX_DEPTH`] is rejected, so
//!   adversarial input cannot overflow the recursion stack.
//! * **Order-preserving**: object members keep source order (and
//!   duplicate keys — callers that care, like the bench-log checker,
//!   can see every occurrence).
//! * **Deterministic**: no hashing, no allocation-order dependence; the
//!   same input always produces the same tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth accepted — protocol and log lines are flat in
/// practice; the bound keeps the recursive parser stack-safe on
/// adversarial input.
pub const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
///
/// Numbers are `f64` (JSON has one number type); object members keep
/// their source order, duplicates included.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// `[...]`.
    Array(Vec<JsonValue>),
    /// `{...}` — members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON value spanning the whole of `text`.
    ///
    /// # Errors
    /// A message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            text,
            bytes,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member `key` of an object (first occurrence); `None` for missing
    /// keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object members in source order; `None` for non-objects.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Array elements; `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String content; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Exactly-integral numeric value in `u64` range; `None` otherwise
    /// (knob values must not be silently truncated).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        // f64 holds integers exactly up to 2^53; beyond that a "u64"
        // in JSON has already lost precision, so refuse it
        (x.fract() == 0.0 && (0.0..=9007199254740992.0).contains(&x)).then_some(x as u64)
    }

    /// As [`JsonValue::as_u64`], narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|x| usize::try_from(x).ok())
    }

    /// Boolean value; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The value's JSON type name (`"object"`, `"array"`, `"string"`,
    /// `"number"`, `"bool"`, `"null"`) — for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

impl fmt::Display for JsonValue {
    /// Debug-oriented rendering (`{"a":1}` style). Wire emission stays
    /// with `dk_metrics::json`; this exists for error messages and
    /// tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::String(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(*c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut out = String::new();
        let mut run = self.pos; // start of the current escape-free run
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    out.push_str(&self.text[run..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run..self.pos]);
                    self.pos += 1;
                    out.push(self.escape_char()?);
                    run = self.pos;
                }
                Some(c) if *c < 0x20 => {
                    return Err(format!("raw control byte at {} inside string", self.pos))
                }
                Some(_) => self.pos += 1,
                None => return Err(format!("unterminated string starting at byte {start}")),
            }
        }
    }

    /// Decodes one escape sequence (the `\` already consumed).
    fn escape_char(&mut self) -> Result<char, String> {
        let at = self.pos;
        let c = match self.bytes.get(self.pos) {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            _ => return Err(format!("bad escape at byte {at}")),
        };
        self.pos += 1;
        Ok(c)
    }

    /// Decodes `XXXX` (and a following `\uXXXX` when the first unit is a
    /// high surrogate); the `\u` introducer is already consumed.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let at = self.pos;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // high surrogate: require the low half
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| format!("bad surrogate pair at byte {at}"));
                }
            }
            return Err(format!("lone high surrogate at byte {at}"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(format!("lone low surrogate at byte {at}"));
        }
        char::from_u32(hi).ok_or_else(|| format!("bad \\u escape at byte {at}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let at = self.pos;
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bytes.get(self.pos) {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(format!("bad \\u escape at byte {at}")),
            };
            code = (code << 4) | digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = &self.text[start..self.pos];
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Number(x)),
            _ => Err(format!("malformed number {text:?} at byte {start}")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JsonValue {
        JsonValue::parse(s).expect("valid")
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), JsonValue::Null);
        assert_eq!(parse("true"), JsonValue::Bool(true));
        assert_eq!(parse("false"), JsonValue::Bool(false));
        assert_eq!(parse("3.25"), JsonValue::Number(3.25));
        assert_eq!(parse("-1.5e-3"), JsonValue::Number(-0.0015));
        assert_eq!(parse("\"hi\""), JsonValue::String("hi".into()));
        assert_eq!(parse(" 7 "), JsonValue::Number(7.0));
    }

    #[test]
    fn containers_preserve_order() {
        let v = parse(r#"{"b":1,"a":[2,{"c":null}],"b":3}"#);
        let entries = v.entries().unwrap();
        assert_eq!(entries.len(), 3, "duplicate keys kept");
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[2], ("b".into(), JsonValue::Number(3.0)));
        assert_eq!(v.get("b"), Some(&JsonValue::Number(1.0)), "first wins");
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(2.0));
        assert!(a[1].get("c").unwrap().is_null());
    }

    #[test]
    fn accessors_are_typed() {
        let v = parse(r#"{"n":64,"big":1e300,"frac":1.5,"s":"x","yes":true}"#);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(64));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(64));
        assert_eq!(v.get("big").unwrap().as_u64(), None, "not exactly integral");
        assert_eq!(v.get("frac").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("yes").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.type_name(), "object");
        assert_eq!(v.get("s").unwrap().type_name(), "string");
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(parse(r#""a\"b\\c\n\t\/""#).as_str(), Some("a\"b\\c\n\t/"));
        assert_eq!(parse(r#""Aé""#).as_str(), Some("Aé"));
        // astral plane via surrogate pair
        assert_eq!(parse(r#""😀""#).as_str(), Some("😀"));
        // raw multi-byte UTF-8 passes through
        assert_eq!(parse("\"αβ\"").as_str(), Some("αβ"));
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "[1, 2",
            "{\"a\":1} trailing",
            "nul",
            "{\"n\": 1.2.3}",
            "\"open",
            "1e999",
            r#""\q""#,
            r#""\u12g4""#,
            r#""\ud800""#,
            r#""\udc00 lone low""#,
            "\"raw\u{1}control\"",
            "[1,]",
            "{\"a\":1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = JsonValue::parse("{\"a\":!}").unwrap_err();
        assert!(err.contains("byte 5"), "{err}");
        let err = JsonValue::parse("[1, 2").unwrap_err();
        assert!(err.contains("byte"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(JsonValue::parse(&deep).is_err());
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            r#"{"bench":"csr","n":100000,"ok":true,"tags":[1,2],"nested":{"a":null}}"#,
            r#"[1,2.5,"x\n",false]"#,
            "null",
        ] {
            let v = parse(text);
            assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }
}

//! Lanczos iteration with full reorthogonalization and explicit deflation.
//!
//! Lanczos builds an orthonormal Krylov basis `q_1, q_2, …` of a symmetric
//! operator `A` and a tridiagonal matrix `T` whose eigenvalues ("Ritz
//! values") converge — extremes first — to the eigenvalues of `A`. That is
//! exactly what the dK metric suite needs: only `λ1` and `λ_{n−1}` of the
//! normalized Laplacian matter (paper §2).
//!
//! Two standard refinements make the textbook iteration robust here:
//!
//! 1. **Full reorthogonalization.** In floating point, Lanczos vectors lose
//!    orthogonality as soon as a Ritz pair converges, producing spurious
//!    duplicate eigenvalues. Re-projecting every new vector against the
//!    whole basis is O(k²n) but k ≤ a few hundred, so the cost is dwarfed
//!    by the graph algorithms around it. Simplicity over cleverness.
//! 2. **Deflation.** On a connected graph the Laplacian kernel is known in
//!    closed form (`v0 ∝ D^{1/2}·1`). Projecting it out *exactly* — rather
//!    than hoping the iteration separates a 0 eigenvalue from a tiny `λ1` —
//!    makes the smallest *nonzero* eigenvalue an extreme of the deflated
//!    operator, where Lanczos converges fastest.

use crate::sparse::SparseSym;
use crate::tridiag::tridiag_eigenvalues;

/// Options for [`lanczos_ritz_values`].
#[derive(Clone, Copy, Debug)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension (iterations). The effective dimension is
    /// capped at `n − deflate.len()`.
    pub max_iter: usize,
    /// Breakdown tolerance: a β below this means an exact invariant
    /// subspace was found and iteration stops (success, not failure).
    pub beta_tol: f64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iter: 300,
            beta_tol: 1e-12,
        }
    }
}

/// Runs Lanczos on `a`, restricted to the orthogonal complement of
/// `deflate`, and returns the Ritz values in ascending order.
///
/// `deflate` vectors must be nonzero; they are orthonormalized internally.
/// The start vector is deterministic (alternating-sign ramp) so results are
/// reproducible without threading an RNG through metric computation.
///
/// Returns an empty vector when the deflated space is empty.
pub fn lanczos_ritz_values(a: &SparseSym, deflate: &[Vec<f64>], opts: &LanczosOptions) -> Vec<f64> {
    let n = a.n();
    if n == 0 {
        return Vec::new();
    }
    // Orthonormalize the deflation set (modified Gram-Schmidt).
    let mut defl: Vec<Vec<f64>> = Vec::with_capacity(deflate.len());
    for v in deflate {
        assert_eq!(v.len(), n, "deflation vector length mismatch");
        let mut w = v.clone();
        for d in &defl {
            let proj = dot(&w, d);
            axpy(&mut w, -proj, d);
        }
        let norm = nrm2(&w);
        if norm > 1e-12 {
            scale(&mut w, 1.0 / norm);
            defl.push(w);
        }
    }
    let dim = n - defl.len();
    if dim == 0 {
        return Vec::new();
    }
    let m = opts.max_iter.min(dim);

    // Deterministic start vector, projected into the deflated subspace.
    let mut q: Vec<Vec<f64>> = Vec::new();
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i + 1) as f64 / n as f64;
            if i % 2 == 0 {
                1.0 + x
            } else {
                -1.0 - 0.5 * x
            }
        })
        .collect();
    project_out(&mut v, &defl);
    let norm = nrm2(&v);
    assert!(
        norm > 1e-12,
        "start vector annihilated by deflation (graph too degenerate)"
    );
    scale(&mut v, 1.0 / norm);

    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m.saturating_sub(1));
    let mut w = vec![0.0; n];

    q.push(v);
    for j in 0..m {
        a.matvec(&q[j], &mut w);
        // subtract projections: deflation space + previous Lanczos vectors
        project_out(&mut w, &defl);
        let alpha = dot(&w, &q[j]);
        alphas.push(alpha);
        axpy(&mut w, -alpha, &q[j]);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(&mut w, -beta_prev, &q[j - 1]);
        }
        // full reorthogonalization (twice is enough — Kahan)
        for _ in 0..2 {
            project_out(&mut w, &defl);
            for qi in &q {
                let proj = dot(&w, qi);
                axpy(&mut w, -proj, qi);
            }
        }
        let beta = nrm2(&w);
        if j + 1 == m || beta < opts.beta_tol {
            break;
        }
        betas.push(beta);
        let mut next = w.clone();
        scale(&mut next, 1.0 / beta);
        q.push(next);
    }
    tridiag_eigenvalues(&alphas, &betas)
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn nrm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[inline]
fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

#[inline]
fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn project_out(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let proj = dot(v, b);
        axpy(v, -proj, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{jacobi_eigenvalues, DenseSym};
    use dk_graph::builders;

    fn laplacian_pair(g: &dk_graph::Graph) -> (SparseSym, Vec<f64>) {
        let l = SparseSym::normalized_laplacian(g);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(g));
        (l, eig)
    }

    #[test]
    fn full_krylov_finds_all_distinct_eigenvalues() {
        // A single Krylov sequence can only see one copy of each distinct
        // eigenvalue; Petersen (strongly regular) has exactly 3 distinct
        // normalized-Laplacian eigenvalues {0, 2/3, 5/3}, so Lanczos must
        // break down after 3 steps having found precisely those.
        let g = builders::petersen();
        let (l, want) = laplacian_pair(&g);
        let ritz = lanczos_ritz_values(&l, &[], &LanczosOptions::default());
        let mut distinct: Vec<f64> = Vec::new();
        for w in want {
            if distinct.last().is_none_or(|d| (w - d).abs() > 1e-8) {
                distinct.push(w);
            }
        }
        assert_eq!(ritz.len(), distinct.len());
        for (r, w) in ritz.iter().zip(&distinct) {
            assert!((r - w).abs() < 1e-9, "ritz {ritz:?} want {distinct:?}");
        }
        // spot-check the known values
        assert!(ritz[0].abs() < 1e-9);
        assert!((ritz[1] - 2.0 / 3.0).abs() < 1e-9);
        assert!((ritz[2] - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn deflation_removes_kernel() {
        let g = builders::karate_club();
        let (l, want) = laplacian_pair(&g);
        let v0: Vec<f64> = (0..g.node_count() as u32)
            .map(|u| (g.degree(u) as f64).sqrt())
            .collect();
        let ritz = lanczos_ritz_values(&l, &[v0], &LanczosOptions::default());
        // smallest Ritz value ≈ λ1 (the smallest NONZERO eigenvalue)
        let lambda1 = want[1];
        assert!(
            (ritz[0] - lambda1).abs() < 1e-8,
            "got {}, want {lambda1}",
            ritz[0]
        );
        // largest Ritz value ≈ λ_{n−1}
        let lmax = want.last().unwrap();
        assert!((ritz.last().unwrap() - lmax).abs() < 1e-8);
        // no Ritz value near zero survives deflation
        assert!(ritz[0] > 1e-6);
    }

    #[test]
    fn truncated_iteration_still_nails_extremes() {
        let g = builders::grid(12, 12); // n = 144
        let (l, want) = laplacian_pair(&g);
        let v0: Vec<f64> = (0..g.node_count() as u32)
            .map(|u| (g.degree(u) as f64).sqrt())
            .collect();
        let opts = LanczosOptions {
            max_iter: 70, // < n: genuinely truncated
            ..Default::default()
        };
        let ritz = lanczos_ritz_values(&l, &[v0], &opts);
        assert!((ritz[0] - want[1]).abs() < 1e-6);
        assert!((ritz.last().unwrap() - want.last().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn empty_operator() {
        let l = SparseSym::from_rows(vec![]);
        assert!(lanczos_ritz_values(&l, &[], &LanczosOptions::default()).is_empty());
    }

    #[test]
    fn deflating_everything_yields_empty() {
        let g = builders::path(2);
        let l = SparseSym::normalized_laplacian(&g);
        let basis = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(lanczos_ritz_values(&l, &basis, &LanczosOptions::default()).is_empty());
    }

    #[test]
    fn duplicate_deflation_vectors_collapse() {
        let g = builders::path(3);
        let l = SparseSym::normalized_laplacian(&g);
        let v0: Vec<f64> = (0..3u32).map(|u| (g.degree(u) as f64).sqrt()).collect();
        // same vector twice: second must be dropped, leaving dim 2
        let ritz = lanczos_ritz_values(&l, &[v0.clone(), v0], &LanczosOptions::default());
        assert_eq!(ritz.len(), 2);
        // P3 spectrum is {0, 1, 2}; kernel deflated → {1, 2}
        assert!((ritz[0] - 1.0).abs() < 1e-9);
        assert!((ritz[1] - 2.0).abs() < 1e-9);
    }
}

//! Graph-facing spectral API: `λ1` and `λ_{n−1}` of the normalized
//! Laplacian.
//!
//! This is the single entry point the metric suite uses. Strategy selection
//! is automatic and boring on purpose:
//!
//! * `n ≤ DENSE_CUTOFF` → dense Jacobi (exact, trivially robust);
//! * larger → Lanczos on the sparse Laplacian with the kernel vector
//!   `D^{1/2}·1` deflated analytically.
//!
//! The input must be **connected** (pass a GCC — the paper computes all
//! metrics on GCCs). On a disconnected graph the "smallest nonzero
//! eigenvalue" is ill-defined for the intended interpretation, so the
//! function returns an error rather than a misleading number.

use crate::dense::{jacobi_eigenvalues, DenseSym};
use crate::lanczos::{lanczos_ritz_values, LanczosOptions};
use crate::sparse::SparseSym;
use dk_graph::{is_connected, Graph};

/// Below this node count the dense Jacobi path is used.
pub const DENSE_CUTOFF: usize = 512;

/// The two spectral metrics of the paper's Table 2: `λ1` (smallest nonzero)
/// and `λ_{n−1}` (largest) eigenvalue of the normalized Laplacian.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpectralExtremes {
    /// Smallest nonzero eigenvalue (algebraic connectivity analogue).
    pub lambda1: f64,
    /// Largest eigenvalue (≤ 2; = 2 iff the graph is bipartite).
    pub lambda_max: f64,
}

/// Errors from spectral computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpectralError {
    /// The graph must be connected (extract the GCC first).
    NotConnected,
    /// The graph is too small for the metrics to be defined (n < 2).
    TooSmall,
}

impl std::fmt::Display for SpectralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpectralError::NotConnected => {
                write!(f, "graph not connected; extract the giant component first")
            }
            SpectralError::TooSmall => write!(f, "need at least 2 nodes for spectral extremes"),
        }
    }
}

impl std::error::Error for SpectralError {}

/// Computes [`SpectralExtremes`] for a connected graph.
///
/// `lanczos_iter` bounds the Krylov dimension on the sparse path; the
/// default (via [`spectral_extremes`]) is 300, which on Internet-like
/// topologies of 10⁴ nodes gives ≥ 6 correct digits for both extremes.
pub fn spectral_extremes_with(
    g: &Graph,
    lanczos_iter: usize,
) -> Result<SpectralExtremes, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall);
    }
    if !is_connected(g) {
        return Err(SpectralError::NotConnected);
    }
    if n <= DENSE_CUTOFF {
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(g));
        // eig[0] ≈ 0 (kernel); λ1 = eig[1]
        Ok(SpectralExtremes {
            lambda1: eig[1],
            lambda_max: *eig.last().expect("n ≥ 2"),
        })
    } else {
        let l = SparseSym::normalized_laplacian(g);
        let v0: Vec<f64> = (0..n as u32).map(|u| (g.degree(u) as f64).sqrt()).collect();
        let ritz = lanczos_ritz_values(
            &l,
            &[v0],
            &LanczosOptions {
                max_iter: lanczos_iter,
                ..Default::default()
            },
        );
        assert!(
            !ritz.is_empty(),
            "connected graph with n > 2 has nonempty deflated spectrum"
        );
        Ok(SpectralExtremes {
            lambda1: ritz[0].max(0.0),
            lambda_max: ritz.last().copied().expect("nonempty").min(2.0),
        })
    }
}

/// [`spectral_extremes_with`] using the default Lanczos budget.
pub fn spectral_extremes(g: &Graph) -> Result<SpectralExtremes, SpectralError> {
    spectral_extremes_with(g, LanczosOptions::default().max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn complete_graph_extremes() {
        // K_n: λ1 = λ_max = n/(n−1)
        let g = builders::complete(10);
        let s = spectral_extremes(&g).unwrap();
        assert!((s.lambda1 - 10.0 / 9.0).abs() < 1e-9);
        assert!((s.lambda_max - 10.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn star_extremes() {
        // S_k: spectrum {0, 1, …, 1, 2}
        let g = builders::star(9);
        let s = spectral_extremes(&g).unwrap();
        assert!((s.lambda1 - 1.0).abs() < 1e-9);
        assert!((s.lambda_max - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_extremes() {
        let n = 20usize;
        let g = builders::cycle(n);
        let s = spectral_extremes(&g).unwrap();
        let want1 = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((s.lambda1 - want1).abs() < 1e-9);
        // C_20 bipartite (even cycle) → λ_max = 2
        assert!((s.lambda_max - 2.0).abs() < 1e-9);
        // odd cycle is not bipartite → λ_max < 2
        let g = builders::cycle(21);
        let s = spectral_extremes(&g).unwrap();
        assert!(s.lambda_max < 2.0 - 1e-6);
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(
            spectral_extremes(&Graph::with_nodes(1)),
            Err(SpectralError::TooSmall)
        );
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            spectral_extremes(&disconnected),
            Err(SpectralError::NotConnected)
        );
    }

    #[test]
    fn lanczos_path_matches_closed_form() {
        // A graph above the dense cutoff exercises the Lanczos path.
        // K_{a,a} has normalized-Laplacian spectrum {0, 1 × (n−2), 2}
        // in closed form, so no dense solve is needed as oracle.
        let g = builders::complete_bipartite(300, 300); // n = 600 > 512
        let s = spectral_extremes(&g).unwrap();
        assert!((s.lambda1 - 1.0).abs() < 1e-8, "λ1 = {}", s.lambda1);
        assert!(
            (s.lambda_max - 2.0).abs() < 1e-8,
            "λ_max = {}",
            s.lambda_max
        );
    }

    #[test]
    fn lanczos_path_matches_dense_path_on_irregular_graph() {
        // Same graph, both paths: force the sparse path via a small
        // Lanczos budget check against the dense oracle (n < cutoff, so
        // call the internals directly).
        let g = builders::grid(12, 12);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        let l = SparseSym::normalized_laplacian(&g);
        let v0: Vec<f64> = (0..g.node_count() as u32)
            .map(|u| (g.degree(u) as f64).sqrt())
            .collect();
        let ritz = crate::lanczos::lanczos_ritz_values(
            &l,
            &[v0],
            &LanczosOptions {
                max_iter: 120,
                ..Default::default()
            },
        );
        assert!(
            (ritz[0] - eig[1]).abs() < 1e-7,
            "λ1 {} vs {}",
            ritz[0],
            eig[1]
        );
        assert!((ritz.last().unwrap() - eig.last().unwrap()).abs() < 1e-7);
    }

    #[test]
    fn extremes_bounded_by_two() {
        let g = builders::karate_club();
        let s = spectral_extremes(&g).unwrap();
        assert!(s.lambda1 > 0.0 && s.lambda1 < 2.0);
        assert!(s.lambda_max > 0.0 && s.lambda_max <= 2.0);
        assert!(s.lambda1 <= s.lambda_max);
    }
}

//! Dense symmetric matrices and the cyclic Jacobi eigensolver.
//!
//! Jacobi is slow (O(n³) per sweep) but unconditionally robust and simple
//! to verify — exactly the property we want in the *oracle* eigensolver
//! that the Lanczos path is validated against. It is also the production
//! path for small graphs (n ≤ 512), where its cost is negligible.

use dk_graph::Graph;

/// Dense symmetric matrix (row-major, full storage).
#[derive(Clone, Debug)]
pub struct DenseSym {
    n: usize,
    a: Vec<f64>,
}

impl DenseSym {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseSym {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Symmetric entry setter (writes both `(i,j)` and `(j,i)`).
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
        self.a[j * self.n + i] = v;
    }

    /// Normalized Laplacian of `g` as a dense matrix.
    pub fn normalized_laplacian(g: &Graph) -> Self {
        let n = g.node_count();
        let mut m = DenseSym::zeros(n);
        for u in 0..n as u32 {
            if g.degree(u) > 0 {
                m.set_sym(u as usize, u as usize, 1.0);
            }
        }
        for &(u, v) in g.edges() {
            let w = -1.0 / ((g.degree(u) as f64) * (g.degree(v) as f64)).sqrt();
            m.set_sym(u as usize, v as usize, w);
        }
        m
    }

    /// Sum of squares of off-diagonal entries (Jacobi convergence measure).
    fn off_diag_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j).powi(2);
                }
            }
        }
        s
    }
}

/// All eigenvalues of a dense symmetric matrix via cyclic Jacobi rotations,
/// returned in ascending order.
///
/// Accuracy: off-diagonal Frobenius norm reduced below `1e-12 · n`; for the
/// well-conditioned Laplacians used here this yields ≥ 10 correct digits.
pub fn jacobi_eigenvalues(m: &DenseSym) -> Vec<f64> {
    let n = m.n();
    if n == 0 {
        return Vec::new();
    }
    let mut a = m.clone();
    let tol = 1e-24 * n as f64 * n as f64;
    // Classical bound: O(log precision) sweeps; 100 is far beyond need but
    // guards against pathological stalls (we assert convergence below).
    for _sweep in 0..100 {
        if a.off_diag_sq() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // stable tangent of the rotation angle
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation G(p, q, θ) on both sides
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set_sym(k, p, c * akp - s * akq);
                    a.set_sym(k, q, s * akp + c * akq);
                }
                // fix the 2x2 block (the loop above clobbered it)
                let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                a.set_sym(p, p, new_pp);
                a.set_sym(q, q, new_qq);
                a.set_sym(p, q, 0.0);
            }
        }
    }
    debug_assert!(
        a.off_diag_sq() <= tol * 1e6,
        "jacobi failed to converge: off = {}",
        a.off_diag_sq()
    );
    let mut eig: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
    eig.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
    eig
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < tol, "got {got:?}, want {want:?}");
        }
    }

    #[test]
    fn identity_eigenvalues() {
        let mut m = DenseSym::zeros(4);
        for i in 0..4 {
            m.set_sym(i, i, 1.0);
        }
        assert_close(&jacobi_eigenvalues(&m), &[1.0; 4], 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] → eigenvalues 1, 3
        let mut m = DenseSym::zeros(2);
        m.set_sym(0, 0, 2.0);
        m.set_sym(1, 1, 2.0);
        m.set_sym(0, 1, 1.0);
        assert_close(&jacobi_eigenvalues(&m), &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n normalized Laplacian: {0, n/(n−1) × (n−1)}
        for n in [3usize, 5, 8] {
            let g = builders::complete(n);
            let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
            let mut want = vec![n as f64 / (n as f64 - 1.0); n - 1];
            want.insert(0, 0.0);
            assert_close(&eig, &want, 1e-10);
        }
    }

    #[test]
    fn path_graph_spectrum() {
        // P_n normalized Laplacian: 1 − cos(πk/(n−1)), k = 0..n−1
        let n = 6;
        let g = builders::path(n);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        let mut want: Vec<f64> = (0..n)
            .map(|k| 1.0 - (std::f64::consts::PI * k as f64 / (n as f64 - 1.0)).cos())
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_close(&eig, &want, 1e-10);
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n: 1 − cos(2πk/n)
        let n = 7;
        let g = builders::cycle(n);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        let mut want: Vec<f64> = (0..n)
            .map(|k| 1.0 - (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_close(&eig, &want, 1e-10);
    }

    #[test]
    fn star_graph_spectrum() {
        // S_k: {0, 1 × (k−1), 2}
        let k = 6;
        let g = builders::star(k);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        let mut want = vec![1.0; k - 1];
        want.insert(0, 0.0);
        want.push(2.0);
        assert_close(&eig, &want, 1e-10);
    }

    #[test]
    fn bipartite_largest_is_two() {
        let g = builders::complete_bipartite(3, 4);
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        assert!((eig[0]).abs() < 1e-10);
        assert!((eig.last().unwrap() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_in_unit_interval_of_two() {
        let g = builders::karate_club();
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        assert!(eig.iter().all(|&x| (-1e-10..=2.0 + 1e-10).contains(&x)));
        // connected → exactly one (near-)zero eigenvalue
        assert!(eig[0].abs() < 1e-10);
        assert!(eig[1] > 1e-6);
    }

    #[test]
    fn disconnected_graph_has_multiple_zeros() {
        let g = dk_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let eig = jacobi_eigenvalues(&DenseSym::normalized_laplacian(&g));
        assert!(eig[0].abs() < 1e-10);
        assert!(eig[1].abs() < 1e-10);
        assert!(eig[2] > 1e-6);
    }

    #[test]
    fn empty_matrix() {
        assert!(jacobi_eigenvalues(&DenseSym::zeros(0)).is_empty());
    }
}

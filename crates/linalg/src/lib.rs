//! # dk-linalg — spectral substrate for graph metrics
//!
//! The paper's metric suite (§2) includes the extreme eigenvalues `λ1`
//! (smallest nonzero) and `λ_{n−1}` (largest) of the **normalized graph
//! Laplacian**, whose elements are
//!
//! ```text
//! L_ij = 1                  if i = j
//!      = −1/√(k_i·k_j)      if {i, j} ∈ E
//!      = 0                  otherwise
//! ```
//!
//! All its eigenvalues lie in `[0, 2]`; `0` is always an eigenvalue, with
//! eigenvector `v0 ∝ (√k_1, …, √k_n)` on a connected graph. These extremes
//! bound network resilience and maximum throughput (paper refs [8, 19, 29]).
//!
//! No linear-algebra crate is available offline, so this crate implements
//! the needed solvers from scratch:
//!
//! * [`sparse::SparseSym`] — symmetric CSR matrix with `matvec`;
//! * [`dense::DenseSym`] + cyclic **Jacobi** — full eigensystem for small
//!   matrices; the test oracle and the solver used below Lanczos scale;
//! * [`tridiag::tridiag_eigenvalues`] — implicit-shift **QL** for symmetric
//!   tridiagonal matrices;
//! * [`lanczos`] — **Lanczos** with full reorthogonalization and explicit
//!   deflation; converges to spectrum extremes in a few hundred iterations
//!   even for the ≈10⁴-node skitter-scale graphs;
//! * [`laplacian`] — the graph-facing API: [`laplacian::spectral_extremes`]
//!   returns `(λ1, λ_{n−1})`, deflating the analytically-known null vector
//!   rather than estimating it numerically.
//!
//! Solvers are deterministic: Lanczos uses a fixed arithmetic start vector
//! (orthogonalized against the deflation space), not a random one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod lanczos;
pub mod laplacian;
pub mod sparse;
pub mod tridiag;

pub use laplacian::{spectral_extremes, SpectralExtremes};
pub use sparse::SparseSym;

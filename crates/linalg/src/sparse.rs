//! Symmetric sparse matrices in CSR form.

use dk_graph::Graph;

/// A symmetric sparse matrix stored in CSR (compressed sparse row) layout.
///
/// Both triangles are stored explicitly — matvec is the only hot operation
/// and a full CSR keeps it branch-free and sequential.
#[derive(Clone, Debug)]
pub struct SparseSym {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseSym {
    /// Builds a matrix from per-row `(column, value)` lists.
    ///
    /// Each row's entries must have unique, in-range columns. Symmetry is
    /// the caller's responsibility (checked in debug builds).
    pub fn from_rows(rows: Vec<Vec<(u32, f64)>>) -> Self {
        let n = rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &rows {
            for &(c, v) in row {
                assert!((c as usize) < n, "column {c} out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let m = SparseSym {
            n,
            row_ptr,
            col_idx,
            values,
        };
        debug_assert!(m.is_symmetric(1e-12), "matrix must be symmetric");
        m
    }

    /// Normalized Laplacian `L = I − D^{−1/2} A D^{−1/2}` of a graph.
    ///
    /// Isolated nodes produce an all-zero row (their diagonal is 0 by the
    /// convention `L_ii = deg_i > 0 ? 1 : 0`); in practice callers pass
    /// GCCs, where every degree is positive.
    pub fn normalized_laplacian(g: &Graph) -> Self {
        let n = g.node_count();
        let inv_sqrt_deg: Vec<f64> = (0..n as u32)
            .map(|u| {
                let d = g.degree(u);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let deg = g.degree(u);
            let mut row = Vec::with_capacity(deg + 1);
            let mut pushed_diag = false;
            let diag = if deg > 0 { 1.0 } else { 0.0 };
            for &v in g.neighbors(u) {
                if !pushed_diag && v > u {
                    row.push((u, diag));
                    pushed_diag = true;
                }
                row.push((v, -inv_sqrt_deg[u as usize] * inv_sqrt_deg[v as usize]));
            }
            if !pushed_diag {
                row.push((u, diag));
            }
            rows.push(row);
        }
        SparseSym::from_rows(rows)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x` or `y` have the wrong length.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
        }
    }

    /// Allocating matvec convenience.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec(x, &mut y);
        y
    }

    /// Entry lookup, O(row nnz). For tests and debugging.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.col_idx[k] as usize == j {
                return self.values[k];
            }
        }
        0.0
    }

    /// Checks `|A_ij − A_ji| ≤ tol` for all stored entries.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn laplacian_of_single_edge() {
        let g = builders::path(2);
        let l = SparseSym::normalized_laplacian(&g);
        assert_eq!(l.n(), 2);
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 1), 1.0);
        assert!((l.get(0, 1) + 1.0).abs() < 1e-12);
        assert!(l.is_symmetric(1e-12));
    }

    #[test]
    fn laplacian_entries_match_paper_definition() {
        // Star S3: hub degree 3, leaves degree 1 → off-diag = -1/√3.
        let g = builders::star(3);
        let l = SparseSym::normalized_laplacian(&g);
        let expect = -1.0 / 3f64.sqrt();
        for leaf in 1..=3 {
            assert!((l.get(0, leaf) - expect).abs() < 1e-12);
            assert!((l.get(leaf, 0) - expect).abs() < 1e-12);
            assert_eq!(l.get(leaf, leaf), 1.0);
        }
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn isolated_node_row_is_zero() {
        let mut g = builders::path(2);
        g.add_node();
        let l = SparseSym::normalized_laplacian(&g);
        assert_eq!(l.get(2, 2), 0.0);
        assert_eq!(l.get(2, 0), 0.0);
    }

    #[test]
    fn matvec_against_dense_oracle() {
        let g = builders::karate_club();
        let l = SparseSym::normalized_laplacian(&g);
        let n = l.n();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = l.apply(&x);
        // dense re-computation
        for (i, &yi) in y.iter().enumerate() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += l.get(i, j) * xj;
            }
            assert!((acc - yi).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn null_vector_annihilated() {
        // L · D^{1/2}·1 = 0 on any graph with no isolated nodes.
        let g = builders::karate_club();
        let l = SparseSym::normalized_laplacian(&g);
        let v: Vec<f64> = (0..g.node_count() as u32)
            .map(|u| (g.degree(u) as f64).sqrt())
            .collect();
        let y = l.apply(&v);
        let norm: f64 = y.iter().map(|a| a * a).sum::<f64>().sqrt();
        assert!(norm < 1e-10, "residual {norm}");
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn matvec_checks_lengths() {
        let g = builders::path(3);
        let l = SparseSym::normalized_laplacian(&g);
        let x = vec![0.0; 2];
        let mut y = vec![0.0; 3];
        l.matvec(&x, &mut y);
    }
}

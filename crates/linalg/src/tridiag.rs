//! Eigenvalues of symmetric tridiagonal matrices (implicit-shift QL).
//!
//! This is the back end of the Lanczos pipeline: Lanczos reduces the sparse
//! operator to a small tridiagonal matrix `T` whose eigenvalues (Ritz
//! values) approximate the extreme eigenvalues of the operator. The
//! algorithm here is the classical `tqli` routine (eigenvalues only),
//! restructured for clarity and with explicit failure reporting instead of
//! silent truncation.

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `d`
/// (length n) and sub-diagonal `e` (length n−1), in ascending order.
///
/// # Panics
/// Panics if `e.len() + 1 != d.len()` (caller bug) or if the QL iteration
/// fails to converge within 50 sweeps for some eigenvalue — which for
/// symmetric tridiagonal input indicates NaN/Inf contamination rather than
/// a hard numerical case.
pub fn tridiag_eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    let n = d.len();
    if n == 0 {
        return Vec::new();
    }
    assert_eq!(e.len() + 1, n, "sub-diagonal must have length n-1");
    let mut d = d.to_vec();
    // work array: e shifted to 1-based convention with a trailing 0
    let mut e: Vec<f64> = {
        let mut v = e.to_vec();
        v.push(0.0);
        v
    };

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(
                iter <= 50,
                "QL iteration failed to converge (l = {l}); input likely contains NaN/Inf"
            );
            // Form implicit shift from the 2x2 block at l.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            // Rotations from m−1 down to l; `underflow` marks the rare
            // r == 0 case where the rotation chain terminates early.
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("finite eigenvalues"));
    d
}

#[inline]
fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{jacobi_eigenvalues, DenseSym};

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < tol, "got {got:?} want {want:?}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(tridiag_eigenvalues(&[], &[]).is_empty());
        assert_close(&tridiag_eigenvalues(&[3.5], &[]), &[3.5], 1e-15);
    }

    #[test]
    fn diagonal_matrix() {
        let eig = tridiag_eigenvalues(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_close(&eig, &[1.0, 2.0, 3.0], 1e-14);
    }

    #[test]
    fn known_2x2() {
        // [[0, 1], [1, 0]] → ±1
        let eig = tridiag_eigenvalues(&[0.0, 0.0], &[1.0]);
        assert_close(&eig, &[-1.0, 1.0], 1e-12);
    }

    #[test]
    fn laplacian_of_path_as_tridiagonal() {
        // The normalized Laplacian of a path graph is tridiagonal in the
        // natural ordering; compare QL against the closed form.
        let n = 9;
        let g = dk_graph::builders::path(n);
        let dd: Vec<f64> = vec![1.0; n];
        let mut ee = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let w = -1.0 / ((g.degree(i as u32) as f64) * (g.degree(i as u32 + 1) as f64)).sqrt();
            ee.push(w);
        }
        let eig = tridiag_eigenvalues(&dd, &ee);
        let mut want: Vec<f64> = (0..n)
            .map(|k| 1.0 - (std::f64::consts::PI * k as f64 / (n as f64 - 1.0)).cos())
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_close(&eig, &want, 1e-10);
    }

    #[test]
    fn agrees_with_jacobi_on_random_tridiagonals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..25 {
            let n = rng.gen_range(2..20);
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let ql = tridiag_eigenvalues(&d, &e);
            let mut m = DenseSym::zeros(n);
            for (i, &di) in d.iter().enumerate() {
                m.set_sym(i, i, di);
            }
            for (i, &ei) in e.iter().enumerate() {
                m.set_sym(i, i + 1, ei);
            }
            let jac = jacobi_eigenvalues(&m);
            assert_close(&ql, &jac, 1e-9);
            let _ = trial;
        }
    }
}

//! Stress tests for the `run_fold` condvar turn lock — the one
//! genuinely race-prone region in the workspace, and therefore the
//! ThreadSanitizer target in CI (nightly `tsan` job, alongside
//! `stream_equivalence`). Uneven job costs force workers to finish far
//! out of turn, exercising the wait/notify handoff; the panic test
//! exercises the `FoldAbort` drop-guard so a dying worker can never
//! strand its siblings on the condvar.
//!
//! No wall-clock anywhere: job cost is simulated with a deterministic
//! spin so the tests stay valid under the `no-wall-clock` lint and
//! under TSan's heavy slowdown.

use dk_graph::ensemble::{derive_seed, run, run_fold};
use rand::rngs::StdRng;
use rand::Rng;

/// Deterministic busy work proportional to `units`.
fn spin(units: u64) -> u64 {
    let mut acc = 0u64;
    for k in 0..units * 1500 {
        acc = acc.wrapping_add(derive_seed(acc, k));
    }
    acc
}

#[test]
fn fold_order_is_strict_under_uneven_load() {
    let jobs = 240u64;
    for threads in [2, 3, 4, 8] {
        let order = run_fold(
            jobs,
            0xD15_EA5E,
            threads,
            |i, _rng: &mut StdRng| {
                // jobs early in the turn order are the *slowest*, so
                // successors pile up waiting on the condvar
                std::hint::black_box(spin(6 - (i % 7).min(6)));
                i
            },
            Vec::with_capacity(jobs as usize),
            |acc: &mut Vec<u64>, i, out| {
                assert_eq!(i, out, "fold handed job {i} someone else's output");
                acc.push(i);
            },
        );
        assert_eq!(
            order,
            (0..jobs).collect::<Vec<_>>(),
            "threads={threads}: fold order must be strict job order"
        );
    }
}

#[test]
fn float_fold_bit_identical_across_thread_counts() {
    let jobs = 160u64;
    let job = |i: u64, rng: &mut StdRng| -> f64 {
        std::hint::black_box(spin(i % 5));
        rng.gen_range(0.0..1.0) + (i as f64).sqrt()
    };
    let fold = |acc: &mut f64, _i: u64, x: f64| *acc += x;
    let reference = run_fold(jobs, 42, 1, job, 0.0f64, fold);
    for threads in [2, 4, 8, 0] {
        let parallel = run_fold(jobs, 42, threads, job, 0.0f64, fold);
        assert_eq!(
            parallel.to_bits(),
            reference.to_bits(),
            "threads={threads}: ordered f64 fold must be bit-identical"
        );
    }
}

#[test]
fn fold_matches_collect_then_merge_under_load() {
    let jobs = 120u64;
    let job = |i: u64, rng: &mut StdRng| -> (u64, u64) {
        std::hint::black_box(spin(i % 4));
        (i, rng.gen_range(0..1_000_000))
    };
    let collected = run(jobs, 7, 4, job);
    let mut merged = Vec::new();
    for (i, out) in collected.into_iter().enumerate() {
        merged.push((i as u64, out));
    }
    let folded = run_fold(
        jobs,
        7,
        4,
        job,
        Vec::new(),
        |acc: &mut Vec<(u64, (u64, u64))>, i, out| acc.push((i, out)),
    );
    assert_eq!(folded, merged);
}

#[test]
fn panicking_job_propagates_without_deadlock() {
    // A worker that unwinds mid-fold must wake every sibling blocked on
    // the turn condvar (the FoldAbort drop-guard) and surface the panic
    // at the scope join — never a hang, never a silent partial result.
    let result = std::panic::catch_unwind(|| {
        run_fold(
            64,
            1,
            4,
            |i, _rng: &mut StdRng| {
                std::hint::black_box(spin(i % 3));
                if i == 7 {
                    panic!("job 7 dies");
                }
                i
            },
            0u64,
            |acc: &mut u64, _i, x| *acc += x,
        )
    });
    assert!(
        result.is_err(),
        "the job panic must propagate to the caller"
    );
}

//! Deterministic parallel fan-out — the workspace's work-distribution
//! primitives: [`run`] (collect all results in job order) and
//! [`run_fold`] (stream results into one accumulator in job order, with
//! in-flight memory bounded by the worker count).
//!
//! "Our results represent averages over 100 graphs generated with a
//! different random seed in each case" (paper §5) — every reproduction
//! experiment is an embarrassingly parallel fan-out over seeds, and the
//! metric analyzer fans independent metrics out over the same runner.
//! The module lives in `dk-graph` (the workspace root crate) so that both
//! the generation stack (`dk_core::generate::Generator`) and the analysis
//! stack (`dk_metrics::Analyzer`) can share it without a dependency
//! cycle; `dk_core::ensemble` re-exports it under its historical path.
//!
//! ## Determinism contract
//!
//! Job `i` always computes with `StdRng::seed_from_u64(`[`derive_seed`]
//! `(master, i))` — a function of the master seed and the job index
//! only. Work distribution (which thread runs which job) therefore
//! cannot affect any result: the parallel runner is **bit-identical** to
//! a serial loop, and results come back ordered by job index.
//!
//! The build environment has no rayon, so the pool is hand-rolled on
//! `std::thread::scope` with an atomic work queue — jobs have wildly
//! unequal costs (e.g. targeting chains vs stochastic draws, or spectral
//! solves vs degree sums), so dynamic stealing beats static chunking.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Derives the job-`i` seed from a master seed (SplitMix64 step over
/// a golden-ratio stride — avoids the correlated streams that adjacent
/// raw seeds would give some generators).
pub fn derive_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of worker threads for a requested `threads` value (`0` = all
/// available cores) and a job count — never more workers than jobs.
fn worker_count(threads: usize, jobs: u64) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let want = if threads == 0 { hw } else { threads };
    want.clamp(1, jobs.max(1) as usize)
}

/// Runs `job(i, rng_i)` for every index `i < jobs` across `threads`
/// workers (`0` = all cores) and returns results **in job order**. With
/// `threads = 1` the loop is strictly serial; any other thread count
/// returns bit-identical results (see the module docs).
pub fn run<T, F>(jobs: u64, master_seed: u64, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    let workers = worker_count(threads, jobs);
    if workers <= 1 {
        return (0..jobs)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
                job(i, &mut rng)
            })
            .collect();
    }

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
                let out = job(i, &mut rng);
                results.lock().expect("no worker panicked holding the lock")[i as usize] =
                    Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("all workers joined")
        .into_iter()
        .map(|slot| slot.expect("every job index was dispatched exactly once"))
        .collect()
}

/// State shared by the [`run_fold`] workers: the next job index allowed
/// to merge, the accumulator, and an abort flag raised when any worker
/// panics (so waiters wake up instead of blocking on a turn that will
/// never come).
struct FoldTurn<A> {
    next: u64,
    acc: Option<A>,
    aborted: bool,
}

/// Wakes [`run_fold`] waiters if the owning worker unwinds; disarmed on
/// normal completion.
struct FoldAbort<'a, A> {
    turn: &'a Mutex<FoldTurn<A>>,
    ready: &'a Condvar,
    armed: bool,
}

impl<A> Drop for FoldAbort<'_, A> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut t) = self.turn.lock() {
                t.aborted = true;
            }
            self.ready.notify_all();
        }
    }
}

/// Ordered **streaming fold** over `jobs`: like [`run`], every job `i`
/// computes from its deterministically derived RNG, but instead of
/// collecting all job outputs into a `Vec`, each output is folded into a
/// single accumulator **in strict job-index order** as soon as its turn
/// comes up.
///
/// This is the work-distribution primitive behind the sharded streaming
/// traversals in `dk-metrics`: a job output there is one shard's partial
/// reducer state (an `O(n)` betweenness partial, a distance histogram),
/// and folding in job order keeps the floating-point merge tree a pure
/// function of the job count — **bit-identical to collecting the same
/// outputs with [`run`] and merging them in a loop**, for every thread
/// count.
///
/// Memory: at most one completed-but-unmerged output per worker is alive
/// at any moment (a worker that finishes out of turn blocks on a condvar
/// until the preceding jobs have merged), so the in-flight footprint is
/// `O(workers · |T|)` — never `O(jobs · |T|)` like [`run`]'s collected
/// result vector.
pub fn run_fold<T, A, F, M>(
    jobs: u64,
    master_seed: u64,
    threads: usize,
    job: F,
    mut acc: A,
    fold: M,
) -> A
where
    T: Send,
    A: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
    M: Fn(&mut A, u64, T) + Sync,
{
    let workers = worker_count(threads, jobs);
    if workers <= 1 {
        for i in 0..jobs {
            let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
            let out = job(i, &mut rng);
            fold(&mut acc, i, out);
        }
        return acc;
    }

    let next_job = AtomicU64::new(0);
    let turn = Mutex::new(FoldTurn {
        next: 0,
        acc: Some(acc),
        aborted: false,
    });
    let ready = Condvar::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut guard = FoldAbort {
                    turn: &turn,
                    ready: &ready,
                    armed: true,
                };
                loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
                    let out = job(i, &mut rng);
                    let mut t = turn.lock().expect("no worker panicked holding the lock");
                    while t.next != i && !t.aborted {
                        t = ready.wait(t).expect("no worker panicked holding the lock");
                    }
                    if t.aborted {
                        // a sibling panicked; its unwind is what the
                        // caller sees when the scope joins
                        break;
                    }
                    fold(
                        t.acc.as_mut().expect("accumulator lives until scope end"),
                        i,
                        out,
                    );
                    t.next += 1;
                    drop(t);
                    ready.notify_all();
                }
                guard.armed = false;
            });
        }
    });
    turn.into_inner()
        .expect("all workers joined")
        .acc
        .take()
        .expect("accumulator lives until scope end")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_master_dependent() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn parallel_identical_to_serial() {
        use rand::Rng;
        let job = |i: u64, rng: &mut StdRng| -> (u64, u64) { (i, rng.gen_range(0..1_000_000)) };
        let serial = run(64, 99, 1, job);
        for threads in [2, 3, 8, 0] {
            let parallel = run(64, 99, threads, job);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_job_order() {
        let out = run(32, 5, 4, |i, _| i);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_single_job() {
        assert!(run(0, 1, 0, |i, _| i).is_empty());
        assert_eq!(run(1, 1, 0, |i, _| i), vec![0]);
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(worker_count(1, 100), 1);
        assert_eq!(worker_count(8, 3), 3);
        assert!(worker_count(0, 1000) >= 1);
    }

    #[test]
    fn run_fold_matches_collect_then_merge() {
        use rand::Rng;
        // f64 folding is order-sensitive — the streaming fold must
        // reproduce the collect-then-merge result bit for bit
        let job = |i: u64, rng: &mut StdRng| -> f64 {
            (i as f64 + 1.0).recip() + rng.gen_range(0..1000) as f64 * 1e-7
        };
        let collected = run(100, 42, 4, job);
        let mut want = 0.0f64;
        for p in collected {
            want += p;
        }
        for threads in [1, 2, 3, 8, 0] {
            let got = run_fold(100, 42, threads, job, 0.0f64, |acc, _i, p| *acc += p);
            assert_eq!(got.to_bits(), want.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn run_fold_sees_every_index_in_order() {
        let order = run_fold(
            33,
            7,
            4,
            |i, _| i,
            Vec::new(),
            |acc: &mut Vec<u64>, i, out| {
                assert_eq!(i, out);
                acc.push(i);
            },
        );
        assert_eq!(order, (0..33).collect::<Vec<_>>());
    }

    #[test]
    fn run_fold_zero_and_single_jobs() {
        assert_eq!(run_fold(0, 1, 0, |i, _| i, 99u64, |a, _, v| *a += v), 99);
        assert_eq!(run_fold(1, 1, 0, |i, _| i + 5, 0u64, |a, _, v| *a += v), 5);
    }

    #[test]
    fn run_fold_uneven_costs_keep_order() {
        // early jobs sleep: later workers finish first and must wait
        // their turn instead of merging out of order
        let out = run_fold(
            16,
            3,
            4,
            |i, _| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i
            },
            Vec::new(),
            |acc: &mut Vec<u64>, _, v| acc.push(v),
        );
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_job_costs_still_ordered() {
        // longer work for low indices: stealing reorders execution, but
        // never the results
        let out = run(16, 3, 4, |i, _| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }
}

//! Deterministic parallel fan-out — the one work-distribution primitive
//! the workspace uses.
//!
//! "Our results represent averages over 100 graphs generated with a
//! different random seed in each case" (paper §5) — every reproduction
//! experiment is an embarrassingly parallel fan-out over seeds, and the
//! metric analyzer fans independent metrics out over the same runner.
//! The module lives in `dk-graph` (the workspace root crate) so that both
//! the generation stack (`dk_core::generate::Generator`) and the analysis
//! stack (`dk_metrics::Analyzer`) can share it without a dependency
//! cycle; `dk_core::ensemble` re-exports it under its historical path.
//!
//! ## Determinism contract
//!
//! Job `i` always computes with `StdRng::seed_from_u64(`[`derive_seed`]
//! `(master, i))` — a function of the master seed and the job index
//! only. Work distribution (which thread runs which job) therefore
//! cannot affect any result: the parallel runner is **bit-identical** to
//! a serial loop, and results come back ordered by job index.
//!
//! The build environment has no rayon, so the pool is hand-rolled on
//! `std::thread::scope` with an atomic work queue — jobs have wildly
//! unequal costs (e.g. targeting chains vs stochastic draws, or spectral
//! solves vs degree sums), so dynamic stealing beats static chunking.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Derives the job-`i` seed from a master seed (SplitMix64 step over
/// a golden-ratio stride — avoids the correlated streams that adjacent
/// raw seeds would give some generators).
pub fn derive_seed(master: u64, i: u64) -> u64 {
    let mut z = master.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Number of worker threads for a requested `threads` value (`0` = all
/// available cores) and a job count — never more workers than jobs.
fn worker_count(threads: usize, jobs: u64) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let want = if threads == 0 { hw } else { threads };
    want.clamp(1, jobs.max(1) as usize)
}

/// Runs `job(i, rng_i)` for every index `i < jobs` across `threads`
/// workers (`0` = all cores) and returns results **in job order**. With
/// `threads = 1` the loop is strictly serial; any other thread count
/// returns bit-identical results (see the module docs).
pub fn run<T, F>(jobs: u64, master_seed: u64, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    let workers = worker_count(threads, jobs);
    if workers <= 1 {
        return (0..jobs)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
                job(i, &mut rng)
            })
            .collect();
    }

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, i));
                let out = job(i, &mut rng);
                results.lock().expect("no worker panicked holding the lock")[i as usize] =
                    Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("all workers joined")
        .into_iter()
        .map(|slot| slot.expect("every job index was dispatched exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_master_dependent() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn parallel_identical_to_serial() {
        use rand::Rng;
        let job = |i: u64, rng: &mut StdRng| -> (u64, u64) { (i, rng.gen_range(0..1_000_000)) };
        let serial = run(64, 99, 1, job);
        for threads in [2, 3, 8, 0] {
            let parallel = run(64, 99, threads, job);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_job_order() {
        let out = run(32, 5, 4, |i, _| i);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_single_job() {
        assert!(run(0, 1, 0, |i, _| i).is_empty());
        assert_eq!(run(1, 1, 0, |i, _| i), vec![0]);
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(worker_count(1, 100), 1);
        assert_eq!(worker_count(8, 3), 3);
        assert!(worker_count(0, 1000) >= 1);
    }

    #[test]
    fn uneven_job_costs_still_ordered() {
        // longer work for low indices: stealing reorders execution, but
        // never the results
        let out = run(16, 3, 4, |i, _| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }
}

//! Frozen CSR (compressed sparse row) snapshot of a graph.
//!
//! [`Graph`] stores adjacency as `Vec<Vec<NodeId>>` — the right shape for
//! *mutation* (rewiring inserts and removes edges in O(deg)), but every
//! neighbor-list access pays a pointer chase to a separately allocated
//! vector, and all-source traversals (distance distribution, Brandes
//! betweenness, GCC extraction, triangle census, k-core peeling) walk
//! those lists millions of times. [`CsrGraph`] freezes the adjacency into
//! two flat arrays:
//!
//! * `offsets[u]..offsets[u + 1]` — the slice of `targets` holding the
//!   (sorted) neighbors of `u`;
//! * `targets` — all neighbor lists back to back, 2·m entries.
//!
//! Built in O(n + m) from a [`Graph`], it preserves neighbor order
//! exactly, so any traversal ported from `Graph` to `CsrGraph` visits
//! nodes in the identical sequence and produces bit-identical results —
//! just without the per-list cache miss.
//!
//! The [`AdjacencyView`] trait abstracts the read-only neighbor access
//! both representations share, letting traversal code in
//! [`crate::traversal`] (and the metric passes in `dk-metrics`) run on
//! either: on a `Graph` for convenience, on a `CsrGraph` snapshot when an
//! analyzer amortizes the build cost across many passes.

use crate::graph::{Graph, NodeId};

/// Read-only adjacency access shared by [`Graph`] and [`CsrGraph`].
///
/// Traversal algorithms are written against this trait so one
/// implementation serves both representations. The contract mirrors
/// `Graph`: node ids are dense in `0..node_count()`, neighbor slices are
/// strictly sorted, and every undirected edge appears in both endpoint
/// slices.
pub trait AdjacencyView: Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Sorted neighbor slice of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// Degree of node `u`.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }
}

impl AdjacencyView for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        Graph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }
}

/// Frozen CSR snapshot of an undirected simple graph.
///
/// See the [module docs](self) for rationale. Immutable by construction:
/// take a fresh snapshot after mutating the source [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` delimits the neighbors of `u`;
    /// `offsets.len() == n + 1`, `offsets[n] == 2·m`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists, `2·m` entries.
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds the snapshot in O(n + m), preserving neighbor order.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` edge endpoints
    /// (4 Gi), far beyond the workspace's target scale.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let ends = 2 * g.edge_count();
        assert!(u32::try_from(ends).is_ok(), "graph too large for u32 CSR");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(ends);
        offsets.push(0);
        for u in 0..n as NodeId {
            targets.extend_from_slice(g.neighbors(u));
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// `true` if the snapshot has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// The degree of every node, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Maximum degree, or 0 for the empty snapshot.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Heap footprint of the snapshot in bytes (the two flat arrays) —
    /// what the streaming planner and the perf binaries charge for the
    /// shared read-only side of a traversal's working set.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
    }
}

impl AdjacencyView for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        CsrGraph::degree(self, u)
    }
}

impl<V: AdjacencyView + ?Sized> AdjacencyView for &V {
    #[inline]
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        (**self).neighbors(u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        (**self).degree(u)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn snapshot_matches(g: &Graph) {
        let csr = CsrGraph::from_graph(g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.degrees(), g.degrees());
        assert_eq!(csr.max_degree(), g.max_degree());
        for u in g.nodes() {
            assert_eq!(csr.neighbors(u), g.neighbors(u), "node {u}");
            assert_eq!(csr.degree(u), g.degree(u));
        }
    }

    #[test]
    fn snapshot_round_trips_classics() {
        for g in [
            Graph::new(),
            Graph::with_nodes(5),
            builders::path(7),
            builders::complete(6),
            builders::star(5),
            builders::karate_club(),
            builders::petersen(),
        ] {
            snapshot_matches(&g);
        }
    }

    #[test]
    fn size_bytes_counts_both_arrays() {
        let g = builders::path(4); // 4 nodes, 3 edges
        let csr = CsrGraph::from_graph(&g);
        // offsets: (n + 1) u32s; targets: 2m u32s
        assert_eq!(csr.size_bytes(), 5 * 4 + 6 * 4);
    }

    #[test]
    fn empty_snapshot() {
        let csr = CsrGraph::from_graph(&Graph::new());
        assert!(csr.is_empty());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(csr.nodes().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let mut g = builders::path(3);
        g.add_node();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.neighbors(3), &[] as &[NodeId]);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn view_trait_agrees_across_representations() {
        fn sum_deg<V: AdjacencyView>(v: &V) -> usize {
            (0..v.node_count() as NodeId).map(|u| v.degree(u)).sum()
        }
        let g = builders::karate_club();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(sum_deg(&g), sum_deg(&csr));
        assert_eq!(sum_deg(&g), 2 * g.edge_count());
    }

    #[test]
    fn snapshot_reflects_mutation_only_after_rebuild() {
        let mut g = builders::path(3);
        let before = CsrGraph::from_graph(&g);
        g.add_edge(0, 2).unwrap();
        assert_eq!(before.edge_count(), 2);
        let after = CsrGraph::from_graph(&g);
        assert_eq!(after.edge_count(), 3);
        assert_ne!(before, after);
    }
}

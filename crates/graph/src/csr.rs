//! Frozen CSR (compressed sparse row) snapshot of a graph.
//!
//! [`Graph`] stores adjacency as `Vec<Vec<NodeId>>` — the right shape for
//! *mutation* (rewiring inserts and removes edges in O(deg)), but every
//! neighbor-list access pays a pointer chase to a separately allocated
//! vector, and all-source traversals (distance distribution, Brandes
//! betweenness, GCC extraction, triangle census, k-core peeling) walk
//! those lists millions of times. [`CsrGraph`] freezes the adjacency into
//! two flat arrays:
//!
//! * `offsets[u]..offsets[u + 1]` — the slice of `targets` holding the
//!   (sorted) neighbors of `u`;
//! * `targets` — all neighbor lists back to back, 2·m entries.
//!
//! Built in O(n + m) from a [`Graph`], it preserves neighbor order
//! exactly, so any traversal ported from `Graph` to `CsrGraph` visits
//! nodes in the identical sequence and produces bit-identical results —
//! just without the per-list cache miss.
//!
//! The [`AdjacencyView`] trait abstracts the read-only neighbor access
//! both representations share, letting traversal code in
//! [`crate::traversal`] (and the metric passes in `dk-metrics`) run on
//! either: on a `Graph` for convenience, on a `CsrGraph` snapshot when an
//! analyzer amortizes the build cost across many passes.
//!
//! ## Locality relabeling and the permutation-inversion contract
//!
//! [`CsrGraph::from_graph_relabeled`] builds a second snapshot flavor
//! whose node ids are permuted **degree-descending (ties broken by
//! ascending old id)** — hubs land at the front of the flat arrays, so
//! the high-traffic rows of an all-source traversal share cache lines.
//! The permutation is carried explicitly as a [`Relabeling`]
//! (`to_new`/`to_old`), and the contract is strict:
//!
//! * internal ids **never leak** — every consumer maps per-node outputs
//!   back through `to_old` (and external inputs in through `to_new`)
//!   before anything crosses its API boundary, so external results are
//!   bit-identical to the unpermuted route;
//! * neighbor lists are renamed **in place, order preserved** (they are
//!   *not* re-sorted). Preserving adjacency order is what makes
//!   traversal kernels label-equivariant — a BFS/Brandes sweep from
//!   `to_new[s]` on the relabeled snapshot performs the identical
//!   arithmetic, in the identical order, as a sweep from `s` on the
//!   plain snapshot — but it also means the relabeled snapshot violates
//!   the sorted-neighbor clause of [`AdjacencyView`], so it must stay
//!   private to order-insensitive traversal kernels and never serve
//!   sortedness-dependent passes (triangle intersection, k-core) or be
//!   exposed through a public accessor.

use crate::graph::{Graph, NodeId};

/// Read-only adjacency access shared by [`Graph`] and [`CsrGraph`].
///
/// Traversal algorithms are written against this trait so one
/// implementation serves both representations. The contract mirrors
/// `Graph`: node ids are dense in `0..node_count()`, neighbor slices are
/// strictly sorted, and every undirected edge appears in both endpoint
/// slices.
pub trait AdjacencyView: Sync {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Sorted neighbor slice of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// Degree of node `u`.
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Total edge endpoints `Σ_u deg(u) = 2·m` — the unexplored-edge
    /// budget the direction-optimizing BFS heuristic starts from. The
    /// default sums degrees in O(n); both concrete representations
    /// override it with an O(1) answer.
    fn edge_endpoints(&self) -> u64 {
        (0..self.node_count() as NodeId)
            .map(|u| self.degree(u) as u64)
            .sum()
    }
}

impl AdjacencyView for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        Graph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }

    #[inline]
    fn edge_endpoints(&self) -> u64 {
        2 * Graph::edge_count(self) as u64
    }
}

/// Frozen CSR snapshot of an undirected simple graph.
///
/// See the [module docs](self) for rationale. Immutable by construction:
/// take a fresh snapshot after mutating the source [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` delimits the neighbors of `u`;
    /// `offsets.len() == n + 1`, `offsets[n] == 2·m`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists, `2·m` entries.
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds the snapshot in O(n + m), preserving neighbor order.
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` edge endpoints
    /// (4 Gi), far beyond the workspace's target scale.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let ends = 2 * g.edge_count();
        assert!(u32::try_from(ends).is_ok(), "graph too large for u32 CSR");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(ends);
        offsets.push(0);
        for u in 0..n as NodeId {
            targets.extend_from_slice(g.neighbors(u));
            offsets.push(targets.len() as u32);
        }
        CsrGraph { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// `true` if the snapshot has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// The degree of every node, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Maximum degree, or 0 for the empty snapshot.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Heap footprint of the snapshot in bytes (the two flat arrays) —
    /// what the streaming planner and the perf binaries charge for the
    /// shared read-only side of a traversal's working set.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
    }
}

impl AdjacencyView for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        CsrGraph::degree(self, u)
    }

    #[inline]
    fn edge_endpoints(&self) -> u64 {
        self.targets.len() as u64
    }
}

impl<V: AdjacencyView + ?Sized> AdjacencyView for &V {
    #[inline]
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        (**self).neighbors(u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        (**self).degree(u)
    }

    #[inline]
    fn edge_endpoints(&self) -> u64 {
        (**self).edge_endpoints()
    }
}

/// Explicit node permutation carried by a relabeled
/// [`CsrGraph`] snapshot — see the [module docs](self) for the
/// inversion contract. `to_new[old] = new`, `to_old[new] = old`; both
/// are bijections on `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    to_new: Vec<NodeId>,
    to_old: Vec<NodeId>,
}

impl Relabeling {
    /// Maps an external (old) id to its internal (new) id.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.to_new[old as usize]
    }

    /// Maps an internal (new) id back to its external (old) id.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.to_old[new as usize]
    }

    /// The full `old → new` map, indexed by old id.
    #[inline]
    pub fn forward(&self) -> &[NodeId] {
        &self.to_new
    }

    /// The full `new → old` map, indexed by new id.
    #[inline]
    pub fn backward(&self) -> &[NodeId] {
        &self.to_old
    }

    /// Number of nodes the permutation covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.to_new.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to_new.is_empty()
    }

    /// Inverse-permutes a per-internal-node vector into external id
    /// order: `out[old] = values[to_new[old]]`. The one call every
    /// per-node output surface makes before results leave the
    /// relabeled route.
    ///
    /// # Panics
    /// Panics if `values.len() != self.len()`.
    pub fn invert_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(
            values.len(),
            self.len(),
            "value vector sized to the permutation"
        );
        self.to_new
            .iter()
            .map(|&new| values[new as usize])
            .collect()
    }
}

impl CsrGraph {
    /// Builds a **locality-relabeled** snapshot: node ids permuted
    /// degree-descending (ties broken by ascending old id) so hub rows
    /// cluster at the front of the flat arrays, plus the explicit
    /// [`Relabeling`] consumers must invert on every output surface.
    ///
    /// Neighbor lists are renamed in place with their order preserved
    /// (**not** re-sorted) — the label-equivariance property the
    /// bit-identity contract rests on; the returned snapshot therefore
    /// must stay private to order-insensitive traversal kernels (see
    /// the [module docs](self)).
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` edge endpoints,
    /// as [`CsrGraph::from_graph`].
    pub fn from_graph_relabeled(g: &Graph) -> (Self, Relabeling) {
        let n = g.node_count();
        let ends = 2 * g.edge_count();
        assert!(u32::try_from(ends).is_ok(), "graph too large for u32 CSR");
        let mut to_old: Vec<NodeId> = (0..n as NodeId).collect();
        to_old.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
        let mut to_new = vec![0 as NodeId; n];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = new as NodeId;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(ends);
        offsets.push(0);
        for &old in &to_old {
            targets.extend(g.neighbors(old).iter().map(|&v| to_new[v as usize]));
            offsets.push(targets.len() as u32);
        }
        (CsrGraph { offsets, targets }, Relabeling { to_new, to_old })
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        CsrGraph::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn snapshot_matches(g: &Graph) {
        let csr = CsrGraph::from_graph(g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        assert_eq!(csr.degrees(), g.degrees());
        assert_eq!(csr.max_degree(), g.max_degree());
        for u in g.nodes() {
            assert_eq!(csr.neighbors(u), g.neighbors(u), "node {u}");
            assert_eq!(csr.degree(u), g.degree(u));
        }
    }

    #[test]
    fn snapshot_round_trips_classics() {
        for g in [
            Graph::new(),
            Graph::with_nodes(5),
            builders::path(7),
            builders::complete(6),
            builders::star(5),
            builders::karate_club(),
            builders::petersen(),
        ] {
            snapshot_matches(&g);
        }
    }

    #[test]
    fn size_bytes_counts_both_arrays() {
        let g = builders::path(4); // 4 nodes, 3 edges
        let csr = CsrGraph::from_graph(&g);
        // offsets: (n + 1) u32s; targets: 2m u32s
        assert_eq!(csr.size_bytes(), 5 * 4 + 6 * 4);
    }

    #[test]
    fn empty_snapshot() {
        let csr = CsrGraph::from_graph(&Graph::new());
        assert!(csr.is_empty());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(csr.nodes().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_slices() {
        let mut g = builders::path(3);
        g.add_node();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.neighbors(3), &[] as &[NodeId]);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn view_trait_agrees_across_representations() {
        fn sum_deg<V: AdjacencyView>(v: &V) -> usize {
            (0..v.node_count() as NodeId).map(|u| v.degree(u)).sum()
        }
        let g = builders::karate_club();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(sum_deg(&g), sum_deg(&csr));
        assert_eq!(sum_deg(&g), 2 * g.edge_count());
    }

    #[test]
    fn relabeling_is_degree_descending_with_old_id_ties() {
        let g = builders::star(5); // center 0 (deg 5), leaves 1..=5 (deg 1)
        let (csr, relab) = CsrGraph::from_graph_relabeled(&g);
        assert_eq!(relab.to_new(0), 0, "hub keeps front position");
        // leaves tie on degree → ascending old id
        assert_eq!(relab.backward(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(csr.degree(0), 5);

        let g = builders::path(4); // degrees 1,2,2,1
        let (csr, relab) = CsrGraph::from_graph_relabeled(&g);
        assert_eq!(relab.backward(), &[1, 2, 0, 3]);
        assert_eq!(relab.forward(), &[2, 0, 1, 3]);
        assert_eq!(csr.degrees(), vec![2, 2, 1, 1]);
        // round trip: to_old ∘ to_new = identity
        for u in 0..4 {
            assert_eq!(relab.to_old(relab.to_new(u)), u);
        }
    }

    #[test]
    fn relabeled_snapshot_is_isomorphic_with_order_preserved() {
        for g in [
            builders::karate_club(),
            builders::petersen(),
            builders::complete(5),
            Graph::with_nodes(3),
            Graph::new(),
        ] {
            let (csr, relab) = CsrGraph::from_graph_relabeled(&g);
            assert_eq!(csr.node_count(), g.node_count());
            assert_eq!(csr.edge_count(), g.edge_count());
            assert_eq!(csr.edge_endpoints(), 2 * g.edge_count() as u64);
            for old in g.nodes() {
                let new = relab.to_new(old);
                // renamed in place, order preserved: new list is the old
                // list mapped elementwise through the permutation
                let expect: Vec<NodeId> =
                    g.neighbors(old).iter().map(|&v| relab.to_new(v)).collect();
                assert_eq!(csr.neighbors(new), expect.as_slice(), "node {old}");
            }
            // degree-descending placement
            let degs = csr.degrees();
            assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn invert_values_restores_external_order() {
        let g = builders::path(4);
        let (_, relab) = CsrGraph::from_graph_relabeled(&g);
        // internal vector holding each node's own old id, inverted,
        // must read 0,1,2,3 in external order
        let internal: Vec<NodeId> = (0..4).map(|new| relab.to_old(new)).collect();
        assert_eq!(relab.invert_values(&internal), vec![0, 1, 2, 3]);
    }

    #[test]
    fn snapshot_reflects_mutation_only_after_rebuild() {
        let mut g = builders::path(3);
        let before = CsrGraph::from_graph(&g);
        g.add_edge(0, 2).unwrap();
        assert_eq!(before.edge_count(), 2);
        let after = CsrGraph::from_graph(&g);
        assert_eq!(after.edge_count(), 3);
        assert_ne!(before, after);
    }
}

//! Undirected pseudograph (multigraph with self-loops).
//!
//! Stub-matching constructions — the paper's *pseudograph/configuration*
//! algorithms (§4.1.2) — naturally produce self-loops and parallel edges.
//! [`MultiGraph`] represents that intermediate object faithfully so the
//! cleanup step ("remove all loops and extract the largest connected
//! component") is explicit and measurable: the reproduction harness reports
//! how many "badnesses" each construction produced, exactly like the paper
//! compares its 2K pseudograph generator against PLRG.

use crate::graph::{canon_edge, Graph, NodeId};
use crate::hashers::{det_hash_map, DetHashMap};

/// An undirected multigraph that permits self-loops and parallel edges.
///
/// Degrees follow the standard convention: a self-loop contributes **2** to
/// its endpoint's degree, so stub counts are conserved by construction.
#[derive(Clone, Debug, Default)]
pub struct MultiGraph {
    /// Multiplicity map per node: neighbor → number of parallel edges.
    /// A self-loop on `u` is stored as `adj[u][u] = multiplicity`.
    adj: Vec<DetHashMap<NodeId, u32>>,
    /// Every edge instance, including loops and parallels.
    edges: Vec<(NodeId, NodeId)>,
}

/// Counts of non-simple artifacts in a [`MultiGraph`], the paper's
/// pseudograph "badnesses".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Badness {
    /// Number of self-loop edge instances.
    pub self_loops: usize,
    /// Number of surplus parallel-edge instances
    /// (a pair connected by `c` edges contributes `c − 1`).
    pub parallel_edges: usize,
}

impl Badness {
    /// Total number of edge instances that cleanup will delete.
    pub fn total(&self) -> usize {
        self.self_loops + self.parallel_edges
    }
}

impl MultiGraph {
    /// Creates a multigraph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        MultiGraph {
            adj: vec![det_hash_map(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edge instances (loops and parallels each counted).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `u`; self-loops count twice.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize]
            .iter()
            .map(|(&v, &c)| if v == u { 2 * c as usize } else { c as usize })
            .sum()
    }

    /// Adds an edge instance; `u == v` adds a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "node out of range"
        );
        let key = canon_edge(u, v);
        self.edges.push(key);
        *self.adj[u as usize].entry(v).or_insert(0) += 1;
        if u != v {
            *self.adj[v as usize].entry(u).or_insert(0) += 1;
        }
    }

    /// Multiplicity of edge `(u, v)`; 0 if absent.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> u32 {
        self.adj[u as usize].get(&v).copied().unwrap_or(0)
    }

    /// All edge instances in insertion order (canonical orientation).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Counts self-loops and surplus parallel edges.
    pub fn badness(&self) -> Badness {
        let mut b = Badness::default();
        let mut seen: DetHashMap<(NodeId, NodeId), u32> = det_hash_map();
        for &(u, v) in &self.edges {
            *seen.entry((u, v)).or_insert(0) += 1;
        }
        for ((u, v), c) in seen {
            if u == v {
                b.self_loops += c as usize;
            } else if c > 1 {
                b.parallel_edges += (c - 1) as usize;
            }
        }
        b
    }

    /// Converts to a simple [`Graph`] by dropping self-loops and collapsing
    /// parallel edges (paper §4.1.2 cleanup, first half; GCC extraction is a
    /// separate, explicit step in [`crate::traversal::giant_component`]).
    ///
    /// Returns the simple graph and the [`Badness`] that was removed.
    pub fn simplify(&self) -> (Graph, Badness) {
        let badness = self.badness();
        let mut g = Graph::with_nodes(self.node_count());
        for &(u, v) in &self.edges {
            if u != v {
                let _ = g.try_add_edge(u, v);
            }
        }
        (g, badness)
    }

    /// Sum of degrees; equals `2 × edge_count()` (loops included).
    pub fn degree_sum(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|u| self.degree(u))
            .sum()
    }
}

impl From<&Graph> for MultiGraph {
    fn from(g: &Graph) -> Self {
        let mut m = MultiGraph::with_nodes(g.node_count());
        for &(u, v) in g.edges() {
            m.add_edge(u, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loops_count_twice_in_degree() {
        let mut m = MultiGraph::with_nodes(2);
        m.add_edge(0, 0);
        m.add_edge(0, 1);
        assert_eq!(m.degree(0), 3);
        assert_eq!(m.degree(1), 1);
        assert_eq!(m.degree_sum(), 2 * m.edge_count());
    }

    #[test]
    fn multiplicity_tracks_parallels() {
        let mut m = MultiGraph::with_nodes(3);
        m.add_edge(0, 1);
        m.add_edge(1, 0);
        m.add_edge(1, 2);
        assert_eq!(m.multiplicity(0, 1), 2);
        assert_eq!(m.multiplicity(1, 0), 2);
        assert_eq!(m.multiplicity(1, 2), 1);
        assert_eq!(m.multiplicity(0, 2), 0);
    }

    #[test]
    fn badness_census() {
        let mut m = MultiGraph::with_nodes(3);
        m.add_edge(0, 0); // loop
        m.add_edge(0, 0); // loop
        m.add_edge(0, 1);
        m.add_edge(0, 1); // parallel
        m.add_edge(0, 1); // parallel
        m.add_edge(1, 2);
        let b = m.badness();
        assert_eq!(b.self_loops, 2);
        assert_eq!(b.parallel_edges, 2);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn simplify_drops_badness() {
        let mut m = MultiGraph::with_nodes(3);
        m.add_edge(0, 0);
        m.add_edge(0, 1);
        m.add_edge(1, 0);
        m.add_edge(1, 2);
        let (g, b) = m.simplify();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert_eq!(b.self_loops, 1);
        assert_eq!(b.parallel_edges, 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn from_simple_graph_roundtrip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let m = MultiGraph::from(&g);
        assert_eq!(m.badness(), Badness::default());
        let (g2, _) = m.simplify();
        assert_eq!(g, g2);
    }

    #[test]
    fn degree_sum_invariant_with_loops_and_parallels() {
        let mut m = MultiGraph::with_nodes(4);
        for (u, v) in [(0, 0), (1, 1), (0, 1), (0, 1), (2, 3), (3, 2), (1, 2)] {
            m.add_edge(u, v);
        }
        assert_eq!(m.degree_sum(), 2 * m.edge_count());
    }
}

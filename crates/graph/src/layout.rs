//! Fruchterman–Reingold force-directed layout.
//!
//! Used to regenerate the paper's Figure 3 "picturizations" of dK-random
//! graphs. The layout is a plain, robust implementation of the classic
//! algorithm (attractive force `d²/k` along edges, repulsive force `k²/d`
//! between all pairs, linearly cooling temperature), deterministic under a
//! seeded RNG for the initial placement.
//!
//! Complexity is O(iterations × n²): fine for the ≈10³-node HOT-scale
//! graphs that get visualized. For larger graphs, [`LayoutOptions::repulsion_sample`]
//! approximates the repulsive term with a uniform node sample, trading
//! accuracy for speed; visualization of 10⁴-node graphs stays interactive.

use crate::graph::Graph;
use rand::Rng;

/// 2-D point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// Parameters for [`fruchterman_reingold`].
#[derive(Clone, Copy, Debug)]
pub struct LayoutOptions {
    /// Side length of the square drawing frame.
    pub size: f64,
    /// Number of force iterations.
    pub iterations: usize,
    /// If `Some(s)`, approximate repulsion by sampling `s` random partners
    /// per node instead of all `n−1` (for big graphs).
    pub repulsion_sample: Option<usize>,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            size: 1000.0,
            iterations: 150,
            repulsion_sample: None,
        }
    }
}

/// Computes a Fruchterman–Reingold layout.
///
/// Returns one [`Point`] per node inside `[0, size] × [0, size]`.
/// The empty graph yields an empty vector.
pub fn fruchterman_reingold<R: Rng + ?Sized>(
    g: &Graph,
    opts: &LayoutOptions,
    rng: &mut R,
) -> Vec<Point> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let size = opts.size.max(1.0);
    // Random initial placement.
    let mut pos: Vec<Point> = (0..n)
        .map(|_| Point {
            x: rng.gen_range(0.0..size),
            y: rng.gen_range(0.0..size),
        })
        .collect();
    if n == 1 {
        pos[0] = Point {
            x: size / 2.0,
            y: size / 2.0,
        };
        return pos;
    }
    let k = (size * size / n as f64).sqrt(); // ideal edge length
    let mut disp = vec![Point { x: 0.0, y: 0.0 }; n];
    let mut temperature = size / 10.0;
    let cooling = temperature / (opts.iterations as f64 + 1.0);
    const EPS: f64 = 1e-9;

    for _ in 0..opts.iterations {
        for d in disp.iter_mut() {
            *d = Point { x: 0.0, y: 0.0 };
        }
        // Repulsive forces.
        match opts.repulsion_sample {
            None => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        let dx = pos[i].x - pos[j].x;
                        let dy = pos[i].y - pos[j].y;
                        let dist = (dx * dx + dy * dy).sqrt().max(EPS);
                        let force = k * k / dist;
                        let (fx, fy) = (dx / dist * force, dy / dist * force);
                        disp[i].x += fx;
                        disp[i].y += fy;
                        disp[j].x -= fx;
                        disp[j].y -= fy;
                    }
                }
            }
            Some(s) => {
                // Sampled repulsion: each node repels from `s` random others,
                // scaled up so expected total force matches the exact sum.
                let scale = (n - 1) as f64 / s.max(1) as f64;
                for i in 0..n {
                    for _ in 0..s.max(1) {
                        let j = rng.gen_range(0..n);
                        if j == i {
                            continue;
                        }
                        let dx = pos[i].x - pos[j].x;
                        let dy = pos[i].y - pos[j].y;
                        let dist = (dx * dx + dy * dy).sqrt().max(EPS);
                        let force = k * k / dist * scale;
                        disp[i].x += dx / dist * force;
                        disp[i].y += dy / dist * force;
                    }
                }
            }
        }
        // Attractive forces along edges.
        for &(u, v) in g.edges() {
            let (u, v) = (u as usize, v as usize);
            let dx = pos[u].x - pos[v].x;
            let dy = pos[u].y - pos[v].y;
            let dist = (dx * dx + dy * dy).sqrt().max(EPS);
            let force = dist * dist / k;
            let (fx, fy) = (dx / dist * force, dy / dist * force);
            disp[u].x -= fx;
            disp[u].y -= fy;
            disp[v].x += fx;
            disp[v].y += fy;
        }
        // Apply displacements, clipped by temperature and frame.
        for i in 0..n {
            let dx = disp[i].x;
            let dy = disp[i].y;
            let dist = (dx * dx + dy * dy).sqrt().max(EPS);
            let step = dist.min(temperature);
            pos[i].x = (pos[i].x + dx / dist * step).clamp(0.0, size);
            pos[i].y = (pos[i].y + dy / dist * step).clamp(0.0, size);
        }
        temperature = (temperature - cooling).max(EPS);
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(g: &Graph, opts: &LayoutOptions, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        fruchterman_reingold(g, opts, &mut rng)
    }

    #[test]
    fn empty_and_singleton() {
        assert!(run(&Graph::new(), &LayoutOptions::default(), 1).is_empty());
        let p = run(&Graph::with_nodes(1), &LayoutOptions::default(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].x, 500.0);
    }

    #[test]
    fn points_stay_in_frame() {
        let g = builders::karate_club();
        let opts = LayoutOptions {
            size: 200.0,
            iterations: 60,
            repulsion_sample: None,
        };
        for p in run(&g, &opts, 3) {
            assert!((0.0..=200.0).contains(&p.x));
            assert!((0.0..=200.0).contains(&p.y));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = builders::petersen();
        let a = run(&g, &LayoutOptions::default(), 9);
        let b = run(&g, &LayoutOptions::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn edges_shorter_than_random_pairs() {
        // Layout quality smoke test: after FR, adjacent pairs should sit
        // closer together on average than non-adjacent pairs.
        let g = builders::grid(5, 5);
        let pos = run(&g, &LayoutOptions::default(), 11);
        let dist = |a: Point, b: Point| ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
        let mut edge_sum = 0.0;
        for &(u, v) in g.edges() {
            edge_sum += dist(pos[u as usize], pos[v as usize]);
        }
        let edge_avg = edge_sum / g.edge_count() as f64;
        let mut non_sum = 0.0;
        let mut non_cnt = 0.0;
        for u in 0..g.node_count() as u32 {
            for v in (u + 1)..g.node_count() as u32 {
                if !g.has_edge(u, v) {
                    non_sum += dist(pos[u as usize], pos[v as usize]);
                    non_cnt += 1.0;
                }
            }
        }
        assert!(edge_avg < non_sum / non_cnt);
    }

    #[test]
    fn sampled_repulsion_runs_on_larger_graph() {
        let g = builders::grid(20, 20);
        let opts = LayoutOptions {
            size: 500.0,
            iterations: 10,
            repulsion_sample: Some(8),
        };
        let pos = run(&g, &opts, 5);
        assert_eq!(pos.len(), 400);
        assert!(pos.iter().all(|p| p.x.is_finite() && p.y.is_finite()));
    }
}

//! Graph serialization: plain edge-list text format and Graphviz DOT export.
//!
//! ## Edge-list format
//!
//! One edge per line: two whitespace-separated node ids. Lines starting with
//! `#` and blank lines are ignored. An optional header line `nodes N` pins
//! the node count (otherwise it is `max id + 1`), so graphs with trailing
//! isolated nodes round-trip. This is the format CAIDA-style adjacency
//! snapshots use, and it is what the reproduction binaries write under
//! `results/` so generated topologies can be inspected with standard tools.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a graph from edge-list text.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    let mut max_id: Option<NodeId> = None;
    for (lineno, line) in buf.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(GraphError::from)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty trimmed line has a token");
        if first == "nodes" {
            let n = parts
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "header `nodes` missing count".into(),
                })?
                .parse::<usize>()
                .map_err(|e| GraphError::Parse {
                    line: lineno,
                    msg: format!("bad node count: {e}"),
                })?;
            declared_nodes = Some(n);
            continue;
        }
        let u: NodeId = first.parse().map_err(|e| GraphError::Parse {
            line: lineno,
            msg: format!("bad node id {first:?}: {e}"),
        })?;
        let vtok = parts.next().ok_or_else(|| GraphError::Parse {
            line: lineno,
            msg: "expected two node ids".into(),
        })?;
        let v: NodeId = vtok.parse().map_err(|e| GraphError::Parse {
            line: lineno,
            msg: format!("bad node id {vtok:?}: {e}"),
        })?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno,
                msg: "trailing tokens after edge".into(),
            });
        }
        max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
        edges.push((u, v));
    }
    let implied = max_id.map_or(0, |m| m as usize + 1);
    let n = match declared_nodes {
        Some(n) if n < implied => {
            return Err(GraphError::Parse {
                line: 0,
                msg: format!("declared nodes {n} smaller than max id {}", implied - 1),
            })
        }
        Some(n) => n,
        None => implied,
    };
    // Measured topology snapshots routinely contain both (u,v) and (v,u);
    // treat duplicates as one undirected edge rather than failing.
    Graph::from_edges_dedup(n, edges)
}

/// Writes a graph in edge-list format (with `nodes` header).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# dk-graph edge list: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    writeln!(writer, "nodes {}", g.node_count())?;
    for &(u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Convenience wrapper: read a graph from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Convenience wrapper: write a graph to a file path.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

/// Renders the graph as Graphviz DOT (undirected).
///
/// Node labels are the ids; an optional `highlight_degree_gte` threshold
/// colors high-degree nodes, which makes the core/periphery migration of
/// the paper's Figure 3 visible in external viewers too.
pub fn to_dot(g: &Graph, highlight_degree_gte: Option<usize>) -> String {
    let mut out = String::new();
    out.push_str("graph G {\n  node [shape=circle, fontsize=8];\n");
    if let Some(th) = highlight_degree_gte {
        for u in g.nodes() {
            if g.degree(u) >= th {
                out.push_str(&format!(
                    "  {u} [style=filled, fillcolor=\"#d62728\", fontcolor=white];\n"
                ));
            }
        }
    }
    for &(u, v) in g.edges() {
        out.push_str(&format!("  {u} -- {v};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = builders::karate_club();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_preserves_trailing_isolated_nodes() {
        let mut g = builders::path(3);
        g.add_node();
        g.add_node();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.edge_count(), 2);
    }

    #[test]
    fn parses_comments_blanks_and_dup_edges() {
        let text = "# comment\n\n0 1\n1 0\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("0 1\nbogus\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 2\n".as_bytes()).is_err());
        assert!(read_edge_list("nodes\n".as_bytes()).is_err());
        assert!(read_edge_list("nodes x\n".as_bytes()).is_err());
        // declared node count too small
        assert!(read_edge_list("nodes 1\n0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert!(g.is_empty());
        let g = read_edge_list("# only comments\n".as_bytes()).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn dot_output_contains_edges_and_highlights() {
        let g = builders::star(3);
        let dot = to_dot(&g, Some(3));
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("0 -- 3;"));
        assert!(dot.contains("fillcolor")); // hub highlighted
        let plain = to_dot(&g, None);
        assert!(!plain.contains("fillcolor"));
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("dk_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = builders::cycle(7);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }
}

//! # dk-graph — graph substrate for the dK-series reproduction
//!
//! This crate provides the graph data structures and low-level graph
//! algorithms that the rest of the workspace builds on. It is written from
//! scratch (no external graph library) and is deliberately simple and
//! predictable, in the spirit of robust systems code:
//!
//! * [`Graph`] — an undirected **simple** graph (no self-loops, no parallel
//!   edges) stored as sorted adjacency vectors plus a canonical edge list.
//!   The edge list gives O(1) uniform random edge sampling, which is the hot
//!   operation of every dK-rewiring algorithm; the sorted adjacency gives
//!   O(log deg) membership tests used by wedge/triangle counting.
//! * [`CsrGraph`] — a frozen CSR snapshot (two flat arrays) of a [`Graph`],
//!   the representation every all-source analysis traversal runs on; the
//!   [`AdjacencyView`] trait lets traversal code accept either form.
//! * [`MultiGraph`] — an undirected **pseudograph** (self-loops and parallel
//!   edges allowed), the natural output of stub-matching ("configuration")
//!   constructions before cleanup (paper §4.1.2).
//! * [`traversal`] — BFS, connected components, giant-connected-component
//!   (GCC) extraction. The paper computes all evaluation metrics on GCCs.
//! * [`unionfind`] — deterministic disjoint-set forest with size and
//!   minimum-id tracking, the substrate of the reverse incremental-GCC
//!   percolation sweeps in `dk-metrics`.
//! * [`degree`] — degree-sequence utilities, including the Erdős–Gallai
//!   graphicality test.
//! * [`io`] — plain-text edge-list reader/writer and Graphviz DOT export.
//! * [`layout`] / [`svg`] — Fruchterman–Reingold force-directed layout and a
//!   minimal SVG renderer, used to regenerate the paper's Figure 3
//!   "picturizations".
//!
//! ## Determinism
//!
//! Every randomized routine in the workspace takes `&mut impl Rng`, and all
//! hash-based containers in this crate use a fixed, seed-free hasher
//! ([`hashers::FxHasher64`]); two runs with the same seed produce
//! bit-identical graphs. This mirrors the reproducibility discipline of
//! event-driven network stacks (cf. smoltcp's deterministic core).
//!
//! ## Example
//!
//! ```
//! use dk_graph::Graph;
//!
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(0, 1).unwrap();
//! g.add_edge(1, 2).unwrap();
//! g.add_edge(2, 3).unwrap();
//! g.add_edge(3, 0).unwrap();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 4);
//! assert_eq!(g.degree(0), 2);
//! assert!(g.has_edge(0, 3));
//! assert!(!g.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod csr;
pub mod degree;
pub mod ensemble;
pub mod error;
pub mod graph;
pub mod hashers;
pub mod io;
pub mod layout;
pub mod multigraph;
pub mod svg;
pub mod traversal;
pub mod unionfind;

pub use csr::{AdjacencyView, CsrGraph, Relabeling};
pub use error::GraphError;
pub use graph::{canon_edge, Graph, NodeId, SubgraphMap};
pub use multigraph::MultiGraph;
pub use traversal::{bfs_distances, connected_components, giant_component, is_connected};
pub use unionfind::UnionFind;

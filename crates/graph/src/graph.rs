//! Undirected simple graph with O(1) random-edge access.
//!
//! [`Graph`] is the workhorse of the workspace. The representation is chosen
//! for the access patterns of dK-series algorithms:
//!
//! * **sorted adjacency vectors** (`Vec<Vec<NodeId>>`) — O(log deg)
//!   membership tests (needed by wedge/triangle censuses and by rewiring
//!   feasibility checks), O(deg) neighbor iteration, cache-friendly;
//! * **canonical edge list** (`Vec<(u, v)` with `u < v`) — O(1) *uniform*
//!   random edge sampling, the inner-loop operation of every rewiring
//!   process (paper §4.1.4);
//! * **edge index** (deterministic hash map `(u, v) → position`) — O(1)
//!   targeted removal so a rewiring step (2 removals + 2 insertions) costs
//!   O(deg) overall.
//!
//! The structure maintains the *simple graph* invariant at all times: no
//! self-loops, no parallel edges. Violations are reported as errors, never
//! silently ignored (callers that want "insert if absent" semantics use
//! [`Graph::try_add_edge`]).

use crate::error::GraphError;
use crate::hashers::{det_hash_map, DetHashMap};
use rand::Rng;

/// Node identifier: dense index in `0..node_count()`.
///
/// `u32` keeps adjacency lists compact (half the memory traffic of `usize`
/// on 64-bit hosts); the graphs in this workspace are ≤ a few hundred
/// thousand nodes, far below the 4 Gi limit.
pub type NodeId = u32;

/// An undirected simple graph.
///
/// See the [module docs](self) for representation rationale.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// `adj[u]` is the sorted list of neighbors of `u`.
    adj: Vec<Vec<NodeId>>,
    /// Canonical edge list; each edge appears once as `(min, max)`.
    edges: Vec<(NodeId, NodeId)>,
    /// Position of each canonical edge in `edges`.
    edge_index: DetHashMap<(NodeId, NodeId), u32>,
}

/// Returns the canonical (ordered) form of an undirected edge.
#[inline]
pub fn canon_edge(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl Graph {
    /// Creates an empty graph with zero nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_index: det_hash_map(),
        }
    }

    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Fails on out-of-range endpoints, self-loops, and duplicate edges.
    pub fn from_edges<I>(n: usize, iter: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::with_nodes(n);
        for (u, v) in iter {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds a graph with `n` nodes from an edge iterator, silently
    /// skipping self-loops and duplicate edges.
    ///
    /// This is the "cleanup" constructor used when simplifying the output of
    /// pseudograph algorithms (paper §4.1.2: "remove all loops").
    pub fn from_edges_dedup<I>(n: usize, iter: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = Graph::with_nodes(n);
        for (u, v) in iter {
            if u == v {
                continue;
            }
            if (u as usize) >= n || (v as usize) >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u.max(v),
                    nodes: n,
                });
            }
            let _ = g.try_add_edge(u, v);
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Appends a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as NodeId
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range (an internal programming error; use
    /// [`Graph::has_node`] to validate external input first).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// `true` if `u` is a valid node id.
    #[inline]
    pub fn has_node(&self, u: NodeId) -> bool {
        (u as usize) < self.adj.len()
    }

    /// The degree of every node, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Average degree `k̄ = 2m/n`; the paper's 0K-distribution.
    ///
    /// Returns 0.0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.adj.len() as f64
        }
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Membership test, O(log deg(min(u, v))).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if !self.has_node(u) || !self.has_node(v) {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Membership test without node-id validation, O(log deg(min(u, v))).
    ///
    /// The rewiring inner loop calls a membership test on every one of
    /// its ~50·m attempts with endpoints that are *already known valid*
    /// (sampled from the edge list or from `0..n`); re-validating both
    /// ids there is measurable overhead. Bounds are still debug-asserted,
    /// and out-of-range ids panic via slice indexing in release too —
    /// this trades [`Graph::has_edge`]'s graceful `false` for speed, not
    /// safety.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn has_edge_fast(&self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(
            self.has_node(u) && self.has_node(v),
            "has_edge_fast on out-of-range endpoint ({u}, {v})"
        );
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Membership test through the canonical edge index, O(1).
    ///
    /// Every mutation already maintains `edge_index` (a
    /// deterministic-hasher map from canonical edge to its position in
    /// the edge list), so membership is one hash probe regardless of
    /// degree. The MCMC swap engine validates two presence queries per
    /// proposal at 10⁶-node scale, where hub degrees make even the
    /// O(log deg) binary search of [`Graph::has_edge_fast`] measurable.
    /// Out-of-range ids simply hash to an absent key, so this never
    /// panics.
    #[inline]
    pub fn has_edge_indexed(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_index.contains_key(&canon_edge(u, v))
    }

    /// The canonical edge list. Each undirected edge appears exactly once as
    /// `(u, v)` with `u < v`, in **arbitrary but deterministic** order.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The `i`-th edge of the canonical edge list.
    #[inline]
    pub fn edge_at(&self, i: usize) -> (NodeId, NodeId) {
        self.edges[i]
    }

    /// A uniformly random edge (canonical orientation), O(1).
    ///
    /// # Errors
    /// Returns [`GraphError::EmptyGraph`] if the graph has no edges.
    pub fn random_edge<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<(NodeId, NodeId), GraphError> {
        if self.edges.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        Ok(self.edges[rng.gen_range(0..self.edges.len())])
    }

    /// Adds undirected edge `(u, v)`.
    ///
    /// # Errors
    /// * [`GraphError::NodeOutOfRange`] for invalid endpoints,
    /// * [`GraphError::SelfLoop`] if `u == v`,
    /// * [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.adj.len();
        if (u as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: u, nodes: n });
        }
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange { node: v, nodes: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = canon_edge(u, v);
        if self.edge_index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        self.edge_index.insert(key, self.edges.len() as u32);
        self.edges.push(key);
        Self::adj_insert(&mut self.adj[u as usize], v);
        Self::adj_insert(&mut self.adj[v as usize], u);
        Ok(())
    }

    /// Adds edge `(u, v)` if legal; returns whether it was added.
    ///
    /// Out-of-range endpoints still panic in debug builds via indexing —
    /// this method only tolerates *loops and duplicates*, the two conditions
    /// randomized constructions produce routinely.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.add_edge(u, v).is_ok()
    }

    /// Removes undirected edge `(u, v)`.
    ///
    /// # Errors
    /// [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let key = canon_edge(u, v);
        let pos = match self.edge_index.remove(&key) {
            Some(p) => p as usize,
            None => return Err(GraphError::MissingEdge(key.0, key.1)),
        };
        // swap_remove keeps random-edge sampling O(1); fix the index of the
        // edge that moved into `pos`.
        self.edges.swap_remove(pos);
        if pos < self.edges.len() {
            let moved = self.edges[pos];
            self.edge_index.insert(moved, pos as u32);
        }
        Self::adj_remove(&mut self.adj[u as usize], v);
        Self::adj_remove(&mut self.adj[v as usize], u);
        Ok(())
    }

    /// Number of common neighbors of `u` and `v` (used by clustering and
    /// triangle counting). Linear merge over the two sorted lists.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        let (a, b) = (&self.adj[u as usize], &self.adj[v as usize]);
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Induced subgraph on `nodes`.
    ///
    /// Returns the subgraph (with nodes renumbered `0..nodes.len()` in the
    /// order given) and the mapping `new id → old id`. Callers that also
    /// need the inverse (old → new) direction should use
    /// [`Graph::subgraph_mapped`] instead of re-deriving it.
    ///
    /// Duplicate entries in `nodes` are an error.
    pub fn subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        let (g, map) = self.subgraph_mapped(nodes)?;
        Ok((g, map.new_to_old))
    }

    /// Induced subgraph on `nodes`, with **both** directions of the node
    /// renumbering.
    ///
    /// Like [`Graph::subgraph`], but instead of only the `new → old`
    /// permutation it returns a [`SubgraphMap`] that also exposes the
    /// dense `old → new` inverse the construction builds anyway — so
    /// callers reporting subgraph results keyed by *original* node ids
    /// (e.g. the attack-sweep checkpoints in `dk-metrics`) need not
    /// re-derive it ad hoc.
    ///
    /// The old→new mapping is a dense `Vec` lookup (GCC extraction calls
    /// this on every analyzer run; a hash probe per edge endpoint is pure
    /// overhead next to two array reads).
    ///
    /// Duplicate entries in `nodes` are an error.
    pub fn subgraph_mapped(&self, nodes: &[NodeId]) -> Result<(Graph, SubgraphMap), GraphError> {
        let mut old_to_new: Vec<NodeId> = vec![SubgraphMap::ABSENT; self.node_count()];
        for (new, &old) in nodes.iter().enumerate() {
            if !self.has_node(old) {
                return Err(GraphError::NodeOutOfRange {
                    node: old,
                    nodes: self.node_count(),
                });
            }
            if old_to_new[old as usize] != SubgraphMap::ABSENT {
                return Err(GraphError::ConstructionFailed(format!(
                    "duplicate node {old} in subgraph selection"
                )));
            }
            old_to_new[old as usize] = new as NodeId;
        }
        let mut g = Graph::with_nodes(nodes.len());
        for &(u, v) in &self.edges {
            let (nu, nv) = (old_to_new[u as usize], old_to_new[v as usize]);
            if nu != SubgraphMap::ABSENT && nv != SubgraphMap::ABSENT {
                g.add_edge(nu, nv)?;
            }
        }
        Ok((
            g,
            SubgraphMap {
                new_to_old: nodes.to_vec(),
                old_to_new,
            },
        ))
    }

    /// Sum over edges of the product of endpoint degrees:
    /// the paper's *likelihood* `S = Σ_{(i,j)∈E} k_i·k_j` (§2, ref \[19\]).
    ///
    /// Lives on `Graph` (rather than in `dk-metrics`) because rewiring-based
    /// explorers evaluate it in their inner loop.
    pub fn likelihood_s(&self) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v)| (self.degree(u) as f64) * (self.degree(v) as f64))
            .sum()
    }

    /// Internal consistency check: adjacency, edge list, and edge index
    /// describe the same simple graph. O(n + m log m). Used by tests and
    /// debug assertions in the generators.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let n = self.node_count();
        let mut from_adj: Vec<(NodeId, NodeId)> = Vec::new();
        for u in 0..n {
            let nbrs = &self.adj[u];
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(GraphError::ConstructionFailed(format!(
                    "adjacency of node {u} not sorted/unique"
                )));
            }
            for &v in nbrs {
                if (v as usize) >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, nodes: n });
                }
                if v as usize == u {
                    return Err(GraphError::SelfLoop(u as NodeId));
                }
                if u < v as usize {
                    from_adj.push((u as NodeId, v));
                }
            }
        }
        let mut from_list = self.edges.clone();
        from_adj.sort_unstable();
        from_list.sort_unstable();
        if from_adj != from_list {
            return Err(GraphError::ConstructionFailed(
                "edge list and adjacency disagree".into(),
            ));
        }
        if self.edge_index.len() != self.edges.len() {
            return Err(GraphError::ConstructionFailed(
                "edge index size mismatch".into(),
            ));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if self.edge_index.get(e) != Some(&(i as u32)) {
                return Err(GraphError::ConstructionFailed(format!(
                    "edge index stale for {e:?}"
                )));
            }
        }
        Ok(())
    }

    #[inline]
    fn adj_insert(list: &mut Vec<NodeId>, v: NodeId) {
        match list.binary_search(&v) {
            // add_edge already rejected duplicates, so the entry is absent.
            Err(pos) => list.insert(pos, v),
            Ok(_) => unreachable!("duplicate adjacency entry"),
        }
    }

    #[inline]
    fn adj_remove(list: &mut Vec<NodeId>, v: NodeId) {
        match list.binary_search(&v) {
            Ok(pos) => {
                list.remove(pos);
            }
            Err(_) => unreachable!("removing absent adjacency entry"),
        }
    }
}

/// Node-id translation for an induced subgraph: both directions of the
/// renumbering applied by [`Graph::subgraph_mapped`].
///
/// The forward direction is the `new → old` permutation (what
/// [`Graph::subgraph`] returns); the inverse is the dense `old → new`
/// table the construction builds anyway, with [`SubgraphMap::ABSENT`]
/// marking nodes outside the selection. Exposing both lets callers key
/// subgraph-level results by *original* node ids without re-deriving
/// the inverse ad hoc.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgraphMap {
    /// `new id → old id`, ascending subgraph ids.
    new_to_old: Vec<NodeId>,
    /// Dense `old id → new id`; [`SubgraphMap::ABSENT`] = not selected.
    old_to_new: Vec<NodeId>,
}

impl SubgraphMap {
    /// Sentinel in the dense `old → new` table for nodes outside the
    /// subgraph selection.
    pub const ABSENT: NodeId = NodeId::MAX;

    /// Original id of subgraph node `new`.
    ///
    /// # Panics
    /// Panics if `new` is not a subgraph node id.
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.new_to_old[new as usize]
    }

    /// Subgraph id of original node `old`, or `None` if `old` was not
    /// selected.
    ///
    /// # Panics
    /// Panics if `old` is out of range for the original graph.
    pub fn to_new(&self, old: NodeId) -> Option<NodeId> {
        match self.old_to_new[old as usize] {
            Self::ABSENT => None,
            new => Some(new),
        }
    }

    /// The `new id → old id` permutation.
    pub fn new_to_old(&self) -> &[NodeId] {
        &self.new_to_old
    }

    /// The dense `old id → new id` table; [`SubgraphMap::ABSENT`] marks
    /// unselected nodes.
    pub fn old_to_new(&self) -> &[NodeId] {
        &self.old_to_new
    }

    /// Number of selected (subgraph) nodes.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// `true` if the selection was empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }
}

impl PartialEq for Graph {
    /// Structural equality: same node count and same edge *set* (edge list
    /// order and index layout are representation details).
    fn eq(&self, other: &Self) -> bool {
        if self.node_count() != other.node_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        self.edges.iter().all(|&(u, v)| other.has_edge(u, v))
    }
}

impl Eq for Graph {}

// Structured (de)serialization is intentionally representation-based:
// `(node_count, edges())` is a complete, stable wire form, and
// `Graph::from_edges` rebuilds from it. The text formats in [`crate::io`]
// are the supported interchange surface; serde impls were dropped when the
// workspace went fully offline (no external dependencies available).

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Result<Graph, GraphError> {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn basic_accessors() -> Result<(), GraphError> {
        let g = square()?;
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degrees(), vec![2, 2, 2, 2]);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99));
        assert_eq!(g.nodes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        Ok(())
    }

    #[test]
    fn add_edge_rejects_bad_input() -> Result<(), GraphError> {
        let mut g = Graph::with_nodes(3);
        assert_eq!(g.add_edge(0, 0), Err(GraphError::SelfLoop(0)));
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, nodes: 3 })
        );
        assert_eq!(
            g.add_edge(5, 0),
            Err(GraphError::NodeOutOfRange { node: 5, nodes: 3 })
        );
        g.add_edge(0, 1)?;
        assert_eq!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge(0, 1)));
        g.check_invariants()
    }

    #[test]
    fn try_add_edge_tolerates_dups_and_loops() {
        let mut g = Graph::with_nodes(3);
        assert!(g.try_add_edge(0, 1));
        assert!(!g.try_add_edge(1, 0));
        assert!(!g.try_add_edge(2, 2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn has_edge_fast_matches_has_edge_on_valid_ids() -> Result<(), GraphError> {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (4, 1), (4, 2)])?;
        for u in 0..5u32 {
            for v in 0..5 {
                assert_eq!(g.has_edge(u, v), g.has_edge_fast(u, v), "({u}, {v})");
            }
        }
        Ok(())
    }

    #[test]
    fn remove_edge_swaps_correctly() -> Result<(), GraphError> {
        let mut g = square()?;
        g.remove_edge(1, 0)?; // reversed orientation must work
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.remove_edge(0, 1), Err(GraphError::MissingEdge(0, 1)));
        g.check_invariants()?;
        // Remove all remaining edges.
        g.remove_edge(1, 2)?;
        g.remove_edge(2, 3)?;
        g.remove_edge(3, 0)?;
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degrees(), vec![0, 0, 0, 0]);
        g.check_invariants()
    }

    #[test]
    fn from_edges_dedup_skips_junk() -> Result<(), GraphError> {
        let g = Graph::from_edges_dedup(3, [(0, 1), (1, 0), (1, 1), (1, 2)])?;
        assert_eq!(g.edge_count(), 2);
        assert!(Graph::from_edges_dedup(2, [(0, 5)]).is_err());
        Ok(())
    }

    #[test]
    fn random_edge_uniformity() -> Result<(), GraphError> {
        let g = square()?;
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..4000 {
            let e = g.random_edge(&mut rng)?;
            *counts.entry(e).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (_, c) in counts {
            // each edge expected 1000 times; allow generous slack
            assert!((700..1300).contains(&c));
        }
        let empty = Graph::with_nodes(2);
        assert!(empty.random_edge(&mut rng).is_err());
        Ok(())
    }

    #[test]
    fn common_neighbors_counts() -> Result<(), GraphError> {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (4, 1), (4, 2)])?;
        assert_eq!(g.common_neighbors(0, 4), 2); // 1 and 2
        assert_eq!(g.common_neighbors(1, 2), 2); // 0 and 4
        assert_eq!(g.common_neighbors(3, 4), 0);
        Ok(())
    }

    #[test]
    fn subgraph_induced() -> Result<(), GraphError> {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
        let (sub, map) = g.subgraph(&[0, 1, 2])?;
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // (0,1) and (1,2)
        assert_eq!(map, vec![0, 1, 2]);
        assert!(g.subgraph(&[0, 0]).is_err());
        assert!(g.subgraph(&[99]).is_err());
        Ok(())
    }

    #[test]
    fn subgraph_mapped_exposes_inverse_permutation() -> Result<(), GraphError> {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])?;
        // non-identity selection: subgraph order differs from id order
        let (sub, map) = g.subgraph_mapped(&[4, 1, 2])?;
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1); // only (1,2) survives, as new (1,2)
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        assert_eq!(map.new_to_old(), &[4, 1, 2]);
        // forward and inverse agree on every selected node
        for new in 0..3 {
            assert_eq!(map.to_new(map.to_old(new)), Some(new));
        }
        assert_eq!(map.to_new(1), Some(1));
        assert_eq!(map.to_new(4), Some(0));
        // unselected nodes are ABSENT in the dense table and None here
        assert_eq!(map.to_new(0), None);
        assert_eq!(map.old_to_new()[0], SubgraphMap::ABSENT);
        assert_eq!(map.old_to_new().len(), g.node_count());
        // `subgraph` stays the forward projection of `subgraph_mapped`
        let (sub2, forward) = g.subgraph(&[4, 1, 2])?;
        assert_eq!(sub, sub2);
        assert_eq!(forward, map.new_to_old());
        Ok(())
    }

    #[test]
    fn likelihood_on_star() -> Result<(), GraphError> {
        // Star S4: center degree 4, leaves degree 1 → S = 4 edges × (4·1) = 16.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])?;
        assert_eq!(g.likelihood_s(), 16.0);
        Ok(())
    }

    #[test]
    fn structural_equality_ignores_edge_order() -> Result<(), GraphError> {
        let a = Graph::from_edges(3, [(0, 1), (1, 2)])?;
        let b = Graph::from_edges(3, [(2, 1), (1, 0)])?;
        assert_eq!(a, b);
        let c = Graph::from_edges(3, [(0, 1), (0, 2)])?;
        assert_ne!(a, c);
        Ok(())
    }

    #[test]
    fn wire_repr_roundtrip() -> Result<(), GraphError> {
        // `(node_count, edges())` is the stable wire form; rebuilding from
        // it must reproduce the graph exactly.
        let g = square()?;
        let rebuilt = Graph::from_edges(g.node_count(), g.edges().iter().copied())?;
        assert_eq!(rebuilt.node_count(), 4);
        assert_eq!(rebuilt, g);
        Ok(())
    }

    #[test]
    fn stress_add_remove_keeps_invariants() -> Result<(), GraphError> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = Graph::with_nodes(30);
        use rand::Rng;
        for _ in 0..2000 {
            let u = rng.gen_range(0..30u32);
            let v = rng.gen_range(0..30u32);
            if rng.gen_bool(0.6) {
                let _ = g.try_add_edge(u, v);
            } else if g.has_edge(u, v) {
                g.remove_edge(u, v)?;
            }
        }
        g.check_invariants()
    }
}

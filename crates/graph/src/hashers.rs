//! Deterministic hashing.
//!
//! `std`'s default `HashMap` hasher is randomly seeded per process, which
//! makes iteration order — and therefore any algorithm that iterates a map
//! while making random choices — differ between runs even under a fixed RNG
//! seed. Reproducibility of generated topologies is a hard requirement for
//! this workspace (every experiment in EXPERIMENTS.md must be re-runnable
//! bit-for-bit), so all hash containers use the fixed-key FxHash function
//! from rustc, re-implemented here to avoid an external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state (the multiplicative hash used by rustc).
///
/// Not DoS-resistant — fine here, since all inputs are internally generated
/// node identifiers and small tuples, never attacker-controlled data.
#[derive(Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` with deterministic (seed-free) hashing.
pub type DetHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic (seed-free) hashing.
pub type DetHashSet<K> = HashSet<K, FxBuildHasher>;

/// Creates an empty [`DetHashMap`].
pub fn det_hash_map<K, V>() -> DetHashMap<K, V> {
    DetHashMap::default()
}

/// Creates an empty [`DetHashSet`].
pub fn det_hash_set<K>() -> DetHashSet<K> {
    DetHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher64::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_one(&42u32), hash_one(&42u32));
        assert_eq!(hash_one(&(3u32, 7u32)), hash_one(&(3u32, 7u32)));
    }

    #[test]
    fn different_inputs_differ() {
        // Not a cryptographic property, just a sanity check that the hash
        // actually depends on its input.
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&(1u32, 2u32)), hash_one(&(2u32, 1u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<(u32, u32), u64> = det_hash_map();
        for i in 0..1000u32 {
            m.insert((i, i + 1), u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i + 1)), Some(&(u64::from(i) * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_operations() {
        let mut s: DetHashSet<u32> = det_hash_set();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(&5));
        assert!(s.remove(&5));
        assert!(s.is_empty());
    }

    #[test]
    fn bytes_hashing_covers_partial_chunks() {
        // 9 bytes exercises both the full-word and the partial-word path.
        let mut h = FxHasher64::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h2 = FxHasher64::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h2.finish());
    }
}

//! Minimal SVG rendering of laid-out graphs (for Figure 3 picturizations).
//!
//! Nodes are drawn as circles whose radius and color scale with degree, so
//! the paper's qualitative story — where do the high-degree nodes sit,
//! core or periphery? — is immediately visible. No external renderer is
//! required; the output is standalone SVG 1.1.

use crate::graph::Graph;
use crate::layout::Point;
use std::fmt::Write as _;

/// Rendering options for [`render_svg`].
#[derive(Clone, Debug)]
pub struct SvgOptions {
    /// Canvas width/height in pixels (the layout is rescaled to fit).
    pub canvas: f64,
    /// Margin inside the canvas.
    pub margin: f64,
    /// Minimum node radius.
    pub r_min: f64,
    /// Maximum node radius (assigned to the maximum-degree node).
    pub r_max: f64,
    /// Title embedded in the SVG.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            canvas: 800.0,
            margin: 20.0,
            r_min: 1.5,
            r_max: 10.0,
            title: String::new(),
        }
    }
}

/// Linear interpolation between blue (low degree) and red (high degree).
fn degree_color(deg: usize, max_deg: usize) -> String {
    let t = if max_deg == 0 {
        0.0
    } else {
        deg as f64 / max_deg as f64
    };
    let r = (40.0 + 200.0 * t) as u8;
    let g = 60u8;
    let b = (200.0 - 160.0 * t) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Renders a graph with precomputed positions to an SVG string.
///
/// # Panics
/// Panics if `positions.len() != g.node_count()` (caller bug).
pub fn render_svg(g: &Graph, positions: &[Point], opts: &SvgOptions) -> String {
    assert_eq!(
        positions.len(),
        g.node_count(),
        "one position per node required"
    );
    let c = opts.canvas;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{c}" height="{c}" viewBox="0 0 {c} {c}">"#
    );
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  <title>{}</title>", xml_escape(&opts.title));
        let _ = writeln!(
            out,
            r##"  <text x="{}" y="{}" font-size="14" font-family="sans-serif" fill="#333">{}</text>"##,
            opts.margin,
            opts.margin * 0.75,
            xml_escape(&opts.title)
        );
    }
    let _ = writeln!(
        out,
        r##"  <rect width="{c}" height="{c}" fill="#ffffff"/>"##
    );

    // Rescale layout into the canvas minus margins.
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in positions {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let usable = c - 2.0 * opts.margin;
    let sx = |x: f64| opts.margin + (x - min_x) / span_x * usable;
    let sy = |y: f64| opts.margin + (y - min_y) / span_y * usable;

    let _ = writeln!(
        out,
        r##"  <g stroke="#9999aa" stroke-width="0.4" stroke-opacity="0.6">"##
    );
    for &(u, v) in g.edges() {
        let (pu, pv) = (positions[u as usize], positions[v as usize]);
        let _ = writeln!(
            out,
            r#"    <line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}"/>"#,
            sx(pu.x),
            sy(pu.y),
            sx(pv.x),
            sy(pv.y)
        );
    }
    let _ = writeln!(out, "  </g>");

    let max_deg = g.max_degree();
    let _ = writeln!(out, r#"  <g stroke="none">"#);
    for u in g.nodes() {
        let p = positions[u as usize];
        let deg = g.degree(u);
        let t = if max_deg == 0 {
            0.0
        } else {
            (deg as f64 / max_deg as f64).sqrt()
        };
        let r = opts.r_min + (opts.r_max - opts.r_min) * t;
        let _ = writeln!(
            out,
            r#"    <circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{}"/>"#,
            sx(p.x),
            sy(p.y),
            r,
            degree_color(deg, max_deg)
        );
    }
    let _ = writeln!(out, "  </g>");
    let _ = writeln!(out, "</svg>");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::layout::{fruchterman_reingold, LayoutOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn render(g: &Graph, title: &str) -> String {
        let mut rng = StdRng::seed_from_u64(1);
        let pos = fruchterman_reingold(g, &LayoutOptions::default(), &mut rng);
        render_svg(
            g,
            &pos,
            &SvgOptions {
                title: title.to_string(),
                ..SvgOptions::default()
            },
        )
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let g = builders::karate_club();
        let svg = render(&g, "karate & <club>");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 34);
        assert_eq!(svg.matches("<line").count(), 78);
        // title is escaped
        assert!(svg.contains("karate &amp; &lt;club&gt;"));
        assert!(!svg.contains("<club>"));
    }

    #[test]
    fn node_count_mismatch_panics() {
        let g = builders::path(3);
        let pos = vec![Point { x: 0.0, y: 0.0 }; 2];
        let res = std::panic::catch_unwind(|| render_svg(&g, &pos, &SvgOptions::default()));
        assert!(res.is_err());
    }

    #[test]
    fn colors_span_degree_range() {
        assert_eq!(degree_color(0, 10), "#283cc8");
        assert_eq!(degree_color(10, 10), "#f03c28");
        // degenerate max_deg = 0
        assert_eq!(degree_color(0, 0), "#283cc8");
    }

    #[test]
    fn degenerate_single_point_layout_renders() {
        let g = Graph::with_nodes(1);
        let pos = vec![Point { x: 5.0, y: 5.0 }];
        let svg = render_svg(&g, &pos, &SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), 1);
    }
}

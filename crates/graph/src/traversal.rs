//! Breadth-first traversal, connected components, and GCC extraction.
//!
//! The paper computes every evaluation metric "for the giant connected
//! component (GCC)" (§5.2) because the construction algorithms do not
//! maintain connectivity. [`giant_component`] is therefore on the hot path
//! of the whole reproduction harness.
//!
//! Every routine here is generic over [`AdjacencyView`], so it runs both
//! on a mutable [`Graph`] and on a frozen [`CsrGraph`]
//! snapshot (two flat arrays, no per-list pointer chase — the
//! representation the analyzer-side all-source sweeps use). Neighbor
//! order is identical in both representations, so results are
//! bit-identical regardless of which one a caller traverses.
//!
//! ## Direction-optimizing BFS
//!
//! [`bfs_visit`] is a direction-optimizing (Beamer-style) kernel: each
//! level is expanded either **top-down** (scan the frontier, probe its
//! neighbors) or **bottom-up** (scan the unvisited nodes, probe their
//! neighbors for a frontier parent, stopping at the first hit). The
//! switching heuristic is purely integer-valued — no timing, no
//! randomness: with `mf` the edge endpoints on the current frontier,
//! `mu` the endpoints on still-unvisited nodes, and `nf` the frontier
//! size, a top-down level switches down when `mf · ALPHA > mu`
//! ([`DOBFS_ALPHA`]) and a bottom-up level switches back up when
//! `nf · BETA < n` ([`DOBFS_BETA`]). Every quantity is a deterministic
//! function of the graph and the source, so the traversal — including
//! which direction each level ran in — is reproducible across runs,
//! thread counts, and representations.
//!
//! **Visit-order contract:** top-down levels emit `visit` callbacks in
//! the classic FIFO discovery order (identical to the historical
//! queue-based kernel — discovery order equals pop order in a
//! level-synchronous BFS); bottom-up levels emit them in **ascending
//! node id**. Both orders agree on the *set* of `(node, level)` pairs,
//! so every reducer built on this kernel (distance histograms,
//! eccentricities, reach counts) is order-insensitive within a level
//! and produces bit-identical results on either path.

use crate::csr::{AdjacencyView, CsrGraph};
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance sentinel for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Top-down → bottom-up switch: take the bottom-up path when the
/// frontier carries more than `1/ALPHA` of the unexplored edge
/// endpoints (`mf · ALPHA > mu`). The classic direction-optimizing
/// constant (Beamer et al., SC'12).
pub const DOBFS_ALPHA: u64 = 14;

/// Bottom-up → top-down switch: return to the top-down path when the
/// frontier shrinks below `n / BETA` nodes (`nf · BETA < n`).
pub const DOBFS_BETA: u64 = 24;

/// Reusable per-worker scratch for [`bfs_visit`]: the distance array,
/// the frontier/next queues, and the two frontier bitmaps the
/// bottom-up direction reads and writes. One allocation per worker,
/// reused across thousands of sources by the sharded streaming
/// traversals in `dk-metrics` — `4n + 4n + 4n + 2·(n/8)` bytes, the
/// figure `dk_metrics::stream::per_worker_bytes` charges.
#[derive(Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    front_bits: Vec<u64>,
    next_bits: Vec<u64>,
}

impl BfsScratch {
    /// Scratch sized for an `n`-node graph (resized on demand by
    /// [`bfs_visit`], so any starting size is valid).
    pub fn new(n: usize) -> Self {
        let mut s = BfsScratch::default();
        s.resize(n);
        s
    }

    /// Distances written by the most recent [`bfs_visit`] call
    /// (unreachable nodes hold [`UNREACHABLE`]).
    pub fn dist(&self) -> &[u32] {
        &self.dist
    }

    fn resize(&mut self, n: usize) {
        self.dist.resize(n, UNREACHABLE);
        let words = n.div_ceil(64);
        self.front_bits.resize(words, 0);
        self.next_bits.resize(words, 0);
    }
}

#[inline]
fn bit_test(bits: &[u64], i: NodeId) -> bool {
    bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], i: NodeId) {
    bits[(i / 64) as usize] |= 1u64 << (i % 64);
}

/// Single-source direction-optimizing BFS into caller-provided scratch
/// — the hot loop of the sharded streaming traversals in `dk-metrics`,
/// where one worker runs thousands of BFS sweeps reusing the same
/// `O(n)` scratch instead of allocating per source.
///
/// Resets the scratch, runs the BFS, and calls `visit(node, distance)`
/// exactly once for every reached node: in FIFO discovery order on
/// top-down levels (identical to the historical queue-based kernel)
/// and in ascending node id on bottom-up levels — see the
/// [module docs](self) for the switching heuristic and the determinism
/// argument. The visit order is identical for [`Graph`] and
/// [`CsrGraph`], so reducers built on this kernel (distance
/// histograms) are representation-independent.
/// Returns `(reached, depth)`: the number of reached nodes and the
/// greatest finite distance (the source's eccentricity within its
/// component — the streamed diameter reducer max-merges this).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_visit<V: AdjacencyView + ?Sized>(
    g: &V,
    source: NodeId,
    scratch: &mut BfsScratch,
    mut visit: impl FnMut(NodeId, u32),
) -> (u64, u32) {
    let n = g.node_count();
    assert!((source as usize) < n, "BFS source out of range");
    scratch.resize(n);
    let BfsScratch {
        dist,
        frontier,
        next,
        front_bits,
        next_bits,
    } = scratch;
    dist.fill(UNREACHABLE);
    dist[source as usize] = 0;
    visit(source, 0);
    frontier.clear();
    frontier.push(source);
    let mut reached = 1u64;
    let mut depth = 0u32;
    // `mu`: edge endpoints on unvisited nodes; `mf`: endpoints on the
    // current frontier. Both integers, so the per-level direction
    // decision is a pure function of (graph, source).
    let mut mu = g.edge_endpoints() - g.degree(source) as u64;
    let mut mf = g.degree(source) as u64;
    let mut bottom_up = false;
    // whether `front_bits` currently mirrors `frontier` (only
    // maintained across consecutive bottom-up levels)
    let mut bits_valid = false;
    while !frontier.is_empty() {
        bottom_up = if bottom_up {
            frontier.len() as u64 * DOBFS_BETA >= n as u64
        } else {
            mf * DOBFS_ALPHA > mu
        };
        next.clear();
        let mut mf_next = 0u64;
        let d = depth + 1;
        if bottom_up {
            if !bits_valid {
                front_bits.fill(0);
                for &u in frontier.iter() {
                    bit_set(front_bits, u);
                }
            }
            next_bits.fill(0);
            for v in 0..n as NodeId {
                if dist[v as usize] != UNREACHABLE {
                    continue;
                }
                for &u in g.neighbors(v) {
                    if bit_test(front_bits, u) {
                        dist[v as usize] = d;
                        visit(v, d);
                        next.push(v);
                        bit_set(next_bits, v);
                        mf_next += g.degree(v) as u64;
                        break;
                    }
                }
            }
            std::mem::swap(front_bits, next_bits);
            bits_valid = true;
        } else {
            for &u in frontier.iter() {
                for &v in g.neighbors(u) {
                    if dist[v as usize] == UNREACHABLE {
                        dist[v as usize] = d;
                        visit(v, d);
                        next.push(v);
                        mf_next += g.degree(v) as u64;
                    }
                }
            }
            bits_valid = false;
        }
        reached += next.len() as u64;
        if !next.is_empty() {
            depth = d;
        }
        mu -= mf_next;
        mf = mf_next;
        std::mem::swap(frontier, next);
    }
    (reached, depth)
}

/// Single-source BFS distances.
///
/// Returns a vector of hop counts from `source`; unreachable nodes hold
/// [`UNREACHABLE`].
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_distances<V: AdjacencyView + ?Sized>(g: &V, source: NodeId) -> Vec<u32> {
    let mut scratch = BfsScratch::new(g.node_count());
    bfs_visit(g, source, &mut scratch, |_, _| {});
    scratch.dist
}

/// Connected components as a label vector plus component count.
///
/// `labels[u]` is the 0-based component id of node `u`; components are
/// numbered in **increasing order of their smallest member id** (the BFS
/// seeds scan ids ascending), so labeling is deterministic and label
/// order doubles as the workspace-wide size tie-break key: a smaller
/// label means "contains a smaller node id". See
/// [`giant_component_nodes`] for the rule's statement.
pub fn connected_components<V: AdjacencyView + ?Sized>(g: &V) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = next;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Sizes of all connected components, indexed by component label.
pub fn component_sizes<V: AdjacencyView + ?Sized>(g: &V) -> Vec<usize> {
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

/// `true` if the graph is connected. The empty graph is considered
/// connected (it has no pair of disconnected nodes); a graph of isolated
/// nodes is not.
pub fn is_connected<V: AdjacencyView + ?Sized>(g: &V) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Node ids of the giant (largest) connected component, in ascending
/// order. Empty for an empty graph.
///
/// **Tie-break rule:** when two or more components tie for largest, the
/// winner is deterministically the component **containing the smallest
/// node id**. (Component labels from [`connected_components`] ascend
/// with each component's smallest member, so "smallest label wins"
/// implements exactly this.) The rule is workspace-wide: the attack
/// engine in `dk-metrics` replicates it through
/// [`UnionFind::min_of`](crate::unionfind::UnionFind::min_of), so
/// removal-sweep trajectories and thresholds are reproducible against
/// this function step for step.
pub fn giant_component_nodes<V: AdjacencyView + ?Sized>(g: &V) -> Vec<NodeId> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let giant = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i as u32)
        .expect("non-empty graph has at least one component");
    (0..g.node_count() as NodeId)
        .filter(|&u| labels[u as usize] == giant)
        .collect()
}

/// Extracts the giant (largest) connected component.
///
/// Returns the GCC as a new graph with nodes renumbered `0..size` (in
/// ascending original-id order) and the mapping `new id → original id`.
/// Ties between equal-size components break toward the component
/// containing the smallest node id — the deterministic rule stated on
/// [`giant_component_nodes`].
///
/// The component labeling runs on a fresh [`CsrGraph`] snapshot — at
/// reproduction scale the flat-array BFS more than pays for the O(n + m)
/// snapshot build.
///
/// Returns an empty graph for an empty input.
pub fn giant_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    if g.is_empty() {
        return (Graph::new(), Vec::new());
    }
    let nodes = giant_component_nodes(&CsrGraph::from_graph(g));
    g.subgraph(&nodes)
        .expect("component nodes are valid and unique")
}

/// Fraction of nodes inside the giant component (1.0 for connected graphs).
pub fn gcc_fraction<V: AdjacencyView + ?Sized>(g: &V) -> f64 {
    if g.node_count() == 0 {
        return 1.0;
    }
    let sizes = component_sizes(g);
    *sizes.iter().max().expect("non-empty") as f64 / g.node_count() as f64
}

/// Eccentricity of `source`: the greatest BFS distance to any reachable
/// node. Returns `None` if some node is unreachable from `source`.
pub fn eccentricity<V: AdjacencyView + ?Sized>(g: &V, source: NodeId) -> Option<u32> {
    let mut scratch = BfsScratch::new(g.node_count());
    let (reached, depth) = bfs_visit(g, source, &mut scratch, |_, _| {});
    (reached as usize == g.node_count()).then_some(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn bfs_on_path() {
        let g = builders::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_labeling_deterministic() {
        // {0,1}, {2,3,4}, {5}
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels, vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(component_sizes(&g), vec![2, 3, 1]);
    }

    #[test]
    fn connectivity_edge_cases() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(!is_connected(&Graph::with_nodes(2)));
        assert!(is_connected(&builders::cycle(5)));
    }

    #[test]
    fn gcc_picks_largest() {
        let g = Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap();
        let (gcc, map) = giant_component(&g);
        assert_eq!(gcc.node_count(), 3);
        assert_eq!(gcc.edge_count(), 3);
        assert_eq!(map, vec![2, 3, 4]);
        assert!((gcc_fraction(&g) - 3.0 / 7.0).abs() < 1e-12);
        gcc.check_invariants().unwrap();
    }

    #[test]
    fn gcc_of_connected_graph_is_identity_shape() {
        let g = builders::complete(5);
        let (gcc, map) = giant_component(&g);
        assert_eq!(gcc.node_count(), 5);
        assert_eq!(gcc.edge_count(), 10);
        assert_eq!(map, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gcc_of_empty_graph() {
        let (gcc, map) = giant_component(&Graph::new());
        assert!(gcc.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn gcc_tie_breaks_to_first_component() {
        // two components of size 2: {0,1} and {2,3}
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let (_, map) = giant_component(&g);
        assert_eq!(map, vec![0, 1]);
    }

    #[test]
    fn gcc_tie_breaks_to_component_with_smallest_node_id() {
        // two triangles of equal size, with the component containing
        // node 0 listed LAST in the edge list: {1,3,5} then {0,2,4}.
        // The documented rule — on size ties, the component containing
        // the smallest node id wins — must hold regardless of edge
        // insertion order.
        let g = Graph::from_edges(6, [(1, 3), (3, 5), (5, 1), (0, 2), (2, 4), (4, 0)]).unwrap();
        assert_eq!(giant_component_nodes(&g), vec![0, 2, 4]);
        let (gcc, map) = giant_component(&g);
        assert_eq!(map, vec![0, 2, 4]);
        assert_eq!(gcc.edge_count(), 3);
        // and identically on the CSR snapshot
        assert_eq!(
            giant_component_nodes(&CsrGraph::from_graph(&g)),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn bfs_visit_reports_reach_depth_and_visit_order() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut scratch = BfsScratch::new(5);
        let mut visits = Vec::new();
        let (reached, depth) = bfs_visit(&g, 0, &mut scratch, |v, d| visits.push((v, d)));
        assert_eq!((reached, depth), (3, 2));
        assert_eq!(visits, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(scratch.dist(), &[0, 1, 2, UNREACHABLE, UNREACHABLE]);
        // buffers are reusable across sources: the kernel resets them
        let (reached, depth) = bfs_visit(&g, 3, &mut scratch, |_, _| {});
        assert_eq!((reached, depth), (2, 1));
    }

    /// The direction-optimizing kernel must agree with a plain
    /// queue-based oracle on (dist, reached, depth) and on the visited
    /// `(node, level)` *set* — the kernel's documented contract — for
    /// graphs dense enough to actually trigger the bottom-up path.
    #[test]
    fn bfs_visit_matches_queue_oracle_across_shapes() {
        fn oracle<V: AdjacencyView + ?Sized>(
            g: &V,
            s: NodeId,
        ) -> (Vec<u32>, u64, u32, Vec<(NodeId, u32)>) {
            let n = g.node_count();
            let mut dist = vec![UNREACHABLE; n];
            let mut queue = VecDeque::new();
            let mut visits = Vec::new();
            dist[s as usize] = 0;
            queue.push_back(s);
            let (mut reached, mut depth) = (0u64, 0u32);
            while let Some(u) = queue.pop_front() {
                let du = dist[u as usize];
                reached += 1;
                depth = depth.max(du);
                visits.push((u, du));
                for &v in g.neighbors(u) {
                    if dist[v as usize] == UNREACHABLE {
                        dist[v as usize] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            (dist, reached, depth, visits)
        }
        for g in [
            builders::complete(9),
            builders::karate_club(),
            builders::star(12),
            builders::cycle(30),
            Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap(),
        ] {
            let csr = CsrGraph::from_graph(&g);
            let mut scratch = BfsScratch::new(g.node_count());
            for s in 0..g.node_count() as NodeId {
                let (dist, reached, depth, mut visits) = oracle(&g, s);
                let mut got = Vec::new();
                let (r, d) = bfs_visit(&csr, s, &mut scratch, |v, dd| got.push((v, dd)));
                assert_eq!((r, d), (reached, depth), "source {s}");
                assert_eq!(scratch.dist(), dist.as_slice(), "source {s}");
                visits.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, visits, "visit set differs from oracle, source {s}");
            }
        }
    }

    #[test]
    fn eccentricity_values() {
        let g = builders::path(5);
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
        let disconnected = Graph::with_nodes(3);
        assert_eq!(eccentricity(&disconnected, 0), None);
    }

    #[test]
    fn csr_traversals_match_graph_traversals() {
        // every routine must agree between the two representations
        for g in [
            builders::karate_club(),
            Graph::from_edges(7, [(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]).unwrap(),
            Graph::with_nodes(4),
        ] {
            let csr = CsrGraph::from_graph(&g);
            if g.node_count() > 0 {
                assert_eq!(bfs_distances(&g, 0), bfs_distances(&csr, 0));
                assert_eq!(eccentricity(&g, 0), eccentricity(&csr, 0));
            }
            assert_eq!(connected_components(&g), connected_components(&csr));
            assert_eq!(component_sizes(&g), component_sizes(&csr));
            assert_eq!(is_connected(&g), is_connected(&csr));
            assert_eq!(gcc_fraction(&g), gcc_fraction(&csr));
            assert_eq!(giant_component_nodes(&g), giant_component_nodes(&csr));
        }
    }
}

//! Deterministic construction of named small graphs.
//!
//! These serve as oracles throughout the test suite: their metric values
//! (spectra, distance distributions, clustering, betweenness) have closed
//! forms, so every metric implementation in the workspace is validated
//! against them.

use crate::graph::{Graph, NodeId};

/// Path graph `P_n`: `0 − 1 − … − (n−1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 1..n {
        g.add_edge((u - 1) as NodeId, u as NodeId)
            .expect("distinct consecutive ids");
    }
    g
}

/// Cycle graph `C_n` (requires `n ≥ 3`; smaller n yields a path).
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge((n - 1) as NodeId, 0)
            .expect("closing edge is new");
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u as NodeId, v as NodeId)
                .expect("each pair added once");
        }
    }
    g
}

/// Star graph `S_k`: node 0 is the hub joined to `k` leaves (`n = k + 1`).
pub fn star(k: usize) -> Graph {
    let mut g = Graph::with_nodes(k + 1);
    for leaf in 1..=k {
        g.add_edge(0, leaf as NodeId).expect("distinct leaves");
    }
    g
}

/// Complete bipartite graph `K_{a,b}`; parts are `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::with_nodes(a + b);
    for u in 0..a {
        for v in a..a + b {
            g.add_edge(u as NodeId, v as NodeId)
                .expect("distinct parts");
        }
    }
    g
}

/// 2-D grid graph with `rows × cols` nodes; node `(r, c)` has id
/// `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1))
                    .expect("grid edges unique");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c))
                    .expect("grid edges unique");
            }
        }
    }
    g
}

/// Balanced tree with branching factor `b` and `depth` levels below the
/// root (depth 0 = a single node).
pub fn balanced_tree(b: usize, depth: usize) -> Graph {
    let mut nodes = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= b;
        nodes += level;
    }
    let mut g = Graph::with_nodes(nodes);
    // children of node u are b*u+1 ..= b*u+b (heap layout)
    for u in 0..nodes {
        for j in 1..=b {
            let c = b * u + j;
            if c < nodes {
                g.add_edge(u as NodeId, c as NodeId)
                    .expect("tree edges unique");
            }
        }
    }
    g
}

/// The Petersen graph (3-regular, 10 nodes, girth 5) — a classic
/// counterexample machine, used in tests for clustering (it is
/// triangle-free) and spectra.
pub fn petersen() -> Graph {
    let outer: [(NodeId, NodeId); 5] = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
    let spokes: [(NodeId, NodeId); 5] = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
    let inner: [(NodeId, NodeId); 5] = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
    let mut g = Graph::with_nodes(10);
    for &(u, v) in outer.iter().chain(&spokes).chain(&inner) {
        g.add_edge(u, v).expect("petersen edge list is simple");
    }
    g
}

/// Zachary's karate club graph (34 nodes, 78 edges) — the standard small
/// real-world test graph; it has triangles, hubs, and a mild community
/// structure, which exercises metric code paths that regular graphs miss.
pub fn karate_club() -> Graph {
    const EDGES: [(NodeId, NodeId); 78] = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    Graph::from_edges(34, EDGES).expect("karate edge list is simple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).node_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.degrees().iter().all(|&d| d == 2));
        // degenerate sizes fall back to paths
        assert_eq!(cycle(2).edge_count(), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.degrees().iter().all(|&d| d == 5));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 2);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(is_connected(&g));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(14), 1);
        assert_eq!(balanced_tree(3, 0).node_count(), 1);
    }

    #[test]
    fn petersen_is_3_regular_triangle_free() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.degrees().iter().all(|&d| d == 3));
        // triangle-free: no edge's endpoints share a neighbor
        for &(u, v) in g.edges() {
            assert_eq!(g.common_neighbors(u, v), 0);
        }
    }

    #[test]
    fn karate_club_shape() {
        let g = karate_club();
        assert_eq!(g.node_count(), 34);
        assert_eq!(g.edge_count(), 78);
        assert!(is_connected(&g));
        assert_eq!(g.degree(33), 17); // instructor hub
        assert_eq!(g.degree(0), 16); // president hub
        g.check_invariants().unwrap();
    }
}

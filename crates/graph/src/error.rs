//! Error types for graph operations.

use std::fmt;

/// Errors produced by graph mutation, construction, and I/O.
///
/// The crate follows the "errors are values" style: fallible operations
/// return `Result<_, GraphError>` and never panic on bad *input* (panics are
/// reserved for internal invariant violations, i.e. bugs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// Attempted to add a self-loop to a simple graph.
    SelfLoop(u32),
    /// Attempted to add an edge that already exists to a simple graph.
    DuplicateEdge(u32, u32),
    /// Attempted to remove an edge that does not exist.
    MissingEdge(u32, u32),
    /// A degree sequence is not realizable as a simple graph
    /// (fails the Erdős–Gallai conditions or has odd sum).
    NotGraphical(String),
    /// Construction algorithm could not complete (e.g. matching deadlock
    /// that survived all resolution attempts).
    ConstructionFailed(String),
    /// Malformed input while parsing a graph file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// The operation requires a non-empty graph.
    EmptyGraph,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            GraphError::SelfLoop(u) => {
                write!(f, "self-loop on node {u} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "edge ({u}, {v}) already present in a simple graph")
            }
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) not present"),
            GraphError::NotGraphical(msg) => write!(f, "degree sequence not graphical: {msg}"),
            GraphError::ConstructionFailed(msg) => write!(f, "graph construction failed: {msg}"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (
                GraphError::NodeOutOfRange { node: 7, nodes: 3 },
                "node 7 out of range",
            ),
            (GraphError::SelfLoop(2), "self-loop on node 2"),
            (
                GraphError::DuplicateEdge(1, 2),
                "edge (1, 2) already present",
            ),
            (GraphError::MissingEdge(0, 9), "edge (0, 9) not present"),
            (
                GraphError::NotGraphical("odd sum".into()),
                "not graphical: odd sum",
            ),
            (
                GraphError::ConstructionFailed("deadlock".into()),
                "construction failed: deadlock",
            ),
            (
                GraphError::Parse {
                    line: 4,
                    msg: "bad token".into(),
                },
                "line 4",
            ),
            (GraphError::Io("disk on fire".into()), "disk on fire"),
            (GraphError::EmptyGraph, "non-empty"),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let ge: GraphError = io.into();
        assert!(matches!(ge, GraphError::Io(_)));
    }
}

//! Degree-sequence utilities.
//!
//! Degree sequences are the lingua franca between the dK-distributions and
//! the construction algorithms: a 1K-distribution *is* a normalized degree
//! sequence, and both pseudograph and matching constructions start from
//! realized sequences. This module provides the sequence-level checks and
//! transforms they need.

use crate::error::GraphError;
use crate::graph::Graph;

/// Degree histogram: `hist[k]` = number of nodes of degree `k`
/// (`n(k)` in the paper's notation).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for d in g.degrees() {
        hist[d] += 1;
    }
    hist
}

/// `true` if the degree-sum is even — necessary for any multigraph
/// realization (handshake lemma).
pub fn has_even_sum(seq: &[usize]) -> bool {
    seq.iter().sum::<usize>() % 2 == 0
}

/// Erdős–Gallai test: is `seq` realizable as a **simple** graph?
///
/// The sequence need not be sorted. Runs in O(n log n).
pub fn is_graphical(seq: &[usize]) -> bool {
    if seq.is_empty() {
        return true;
    }
    if !has_even_sum(seq) {
        return false;
    }
    let n = seq.len();
    let mut d: Vec<usize> = seq.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d[0] >= n {
        return false;
    }
    // prefix sums of the sorted sequence
    let mut prefix = vec![0usize; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + d[i];
    }
    for k in 1..=n {
        let lhs = prefix[k];
        // rhs = k(k-1) + Σ_{i>k} min(d_i, k)
        let mut rhs = k * (k - 1);
        for &di in &d[k..] {
            rhs += di.min(k);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

/// Validates a degree sequence for simple-graph realization, with a
/// descriptive error.
pub fn check_graphical(seq: &[usize]) -> Result<(), GraphError> {
    if !has_even_sum(seq) {
        return Err(GraphError::NotGraphical(format!(
            "degree sum {} is odd",
            seq.iter().sum::<usize>()
        )));
    }
    if !is_graphical(seq) {
        return Err(GraphError::NotGraphical(
            "violates Erdős–Gallai inequalities".into(),
        ));
    }
    Ok(())
}

/// Havel–Hakimi realization: builds *a* simple graph with the given degree
/// sequence (deterministic, highly assortative — useful as a seed graph and
/// as an independent graphicality oracle in tests).
///
/// # Errors
/// [`GraphError::NotGraphical`] if the sequence is not graphical.
pub fn havel_hakimi(seq: &[usize]) -> Result<Graph, GraphError> {
    check_graphical(seq)?;
    let n = seq.len();
    let mut g = Graph::with_nodes(n);
    // (remaining degree, node id)
    let mut rem: Vec<(usize, u32)> = seq
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, i as u32))
        .collect();
    while !rem.is_empty() {
        rem.sort_unstable_by(|a, b| b.cmp(a));
        let (d, u) = rem[0];
        if d == 0 {
            break;
        }
        if d >= rem.len() {
            // cannot happen for a graphical sequence, but keep the error
            // path instead of panicking on an internal inconsistency
            return Err(GraphError::NotGraphical("ran out of partners".into()));
        }
        for item in rem.iter_mut().take(d + 1).skip(1) {
            let (dv, v) = *item;
            if dv == 0 {
                return Err(GraphError::NotGraphical("exhausted partner degree".into()));
            }
            g.add_edge(u, v)
                .map_err(|e| GraphError::NotGraphical(format!("havel-hakimi collision: {e}")))?;
            item.0 = dv - 1;
        }
        rem[0].0 = 0;
    }
    Ok(g)
}

/// Empirical complementary CDF of a degree sequence:
/// `ccdf[i] = (#nodes with degree ≥ i-th distinct degree) / n`, returned as
/// `(degree, fraction)` pairs in ascending degree order. Used by power-law
/// diagnostics in `dk-topologies`.
pub fn degree_ccdf(g: &Graph) -> Vec<(usize, f64)> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let hist = degree_histogram(g);
    let mut out = Vec::new();
    let mut tail = n;
    for (k, &cnt) in hist.iter().enumerate() {
        if cnt > 0 {
            out.push((k, tail as f64 / n as f64));
        }
        tail -= cnt;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use proptest::prelude::*;

    #[test]
    fn histogram_of_star() {
        let g = builders::star(4);
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn graphical_classics() {
        assert!(is_graphical(&[])); // empty
        assert!(is_graphical(&[0, 0])); // isolated nodes
        assert!(is_graphical(&[1, 1]));
        assert!(is_graphical(&[2, 2, 2]));
        assert!(is_graphical(&[3, 3, 3, 3]));
        assert!(!is_graphical(&[1])); // odd sum
        assert!(!is_graphical(&[3, 1])); // degree ≥ n
        assert!(!is_graphical(&[3, 3, 1, 1])); // fails Erdős–Gallai
        assert!(is_graphical(&[2, 2, 1, 1]));
    }

    #[test]
    fn check_graphical_errors() {
        assert!(matches!(
            check_graphical(&[1]),
            Err(GraphError::NotGraphical(_))
        ));
        assert!(matches!(
            check_graphical(&[3, 3, 1, 1]),
            Err(GraphError::NotGraphical(_))
        ));
        assert!(check_graphical(&[1, 1]).is_ok());
    }

    #[test]
    fn havel_hakimi_realizes_sequences() {
        for seq in [
            vec![1usize, 1],
            vec![2, 2, 2],
            vec![3, 3, 3, 3],
            vec![4, 3, 2, 2, 2, 1],
            vec![5, 5, 4, 4, 2, 2, 2, 2, 1, 1],
        ] {
            let g = havel_hakimi(&seq).unwrap();
            let mut got = g.degrees();
            let mut want = seq.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "sequence {seq:?}");
            g.check_invariants().unwrap();
        }
        assert!(havel_hakimi(&[3, 1]).is_err());
    }

    #[test]
    fn ccdf_monotone() {
        let g = builders::karate_club();
        let ccdf = degree_ccdf(&g);
        assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        for w in ccdf.windows(2) {
            assert!(w[0].1 >= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    proptest! {
        /// Any sequence realized by Havel–Hakimi must pass is_graphical,
        /// and the degrees of any realized graph match the input.
        #[test]
        fn hh_agrees_with_erdos_gallai(seq in proptest::collection::vec(0usize..6, 0..12)) {
            let realized = havel_hakimi(&seq);
            prop_assert_eq!(realized.is_ok(), is_graphical(&seq));
            if let Ok(g) = realized {
                let mut got = g.degrees();
                let mut want = seq.clone();
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }

        /// Degree histograms of arbitrary graphs sum to n.
        #[test]
        fn histogram_sums_to_n(edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40)) {
            let g = crate::graph::Graph::from_edges_dedup(15, edges).unwrap();
            let hist = degree_histogram(&g);
            prop_assert_eq!(hist.iter().sum::<usize>(), 15);
        }
    }
}

//! Deterministic disjoint-set forest (union-find) over dense node ids.
//!
//! Built for the incremental-GCC percolation sweeps in `dk-metrics`:
//! a removal sweep processed **in reverse** re-inserts nodes one at a
//! time and unions each re-inserted node with its already-live
//! neighbors, so the giant-component trajectory of the whole sweep
//! costs one near-linear pass instead of `n` component recomputes.
//!
//! ## Determinism
//!
//! Everything here is a pure function of the union sequence:
//!
//! * `union` picks the winning root by **size, ties toward the smaller
//!   root id** — no randomness, no address- or hash-dependent choices;
//! * each set tracks the **smallest member id** ([`UnionFind::min_of`]),
//!   which is how callers implement the workspace-wide tie-break rule
//!   "on equal sizes, the component containing the smallest node id
//!   wins" (see [`crate::traversal::giant_component_nodes`]).
//!
//! Two runs replaying the same union sequence therefore produce
//! bit-identical forests, sizes, and minima — regardless of thread
//! count, because a `UnionFind` is single-owner mutable state and the
//! sweep replaying into it is serial by construction.
//!
//! Path halving keeps `find` amortized near-constant; with union by
//! size the total cost of `u` unions and `f` finds is
//! `O((u + f)·α(n))`.

use crate::graph::NodeId;

/// Disjoint-set forest over nodes `0..n` with size and minimum-id
/// tracking per set. See the [module docs](self) for the determinism
/// contract.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointers; a root points to itself.
    parent: Vec<NodeId>,
    /// Set size, valid at roots only.
    size: Vec<u32>,
    /// Smallest member id, valid at roots only.
    min: Vec<NodeId>,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as NodeId).collect(),
            size: vec![1; n],
            min: (0..n as NodeId).collect(),
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `u`'s set, with path halving.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn find(&mut self, u: NodeId) -> NodeId {
        let mut u = u;
        while self.parent[u as usize] != u {
            let grandparent = self.parent[self.parent[u as usize] as usize];
            self.parent[u as usize] = grandparent;
            u = grandparent;
        }
        u
    }

    /// Merges the sets of `u` and `v`. Returns `true` if two distinct
    /// sets were merged, `false` if they were already one.
    ///
    /// The larger set's root wins; equal sizes break toward the smaller
    /// root id, so the forest shape depends only on the union sequence.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn union(&mut self, u: NodeId, v: NodeId) -> bool {
        let ra = self.find(u);
        let rb = self.find(v);
        if ra == rb {
            return false;
        }
        let (winner, loser) = if self.size[ra as usize] > self.size[rb as usize]
            || (self.size[ra as usize] == self.size[rb as usize] && ra < rb)
        {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser as usize] = winner;
        self.size[winner as usize] += self.size[loser as usize];
        if self.min[loser as usize] < self.min[winner as usize] {
            self.min[winner as usize] = self.min[loser as usize];
        }
        true
    }

    /// `true` if `u` and `v` are in the same set.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn connected(&mut self, u: NodeId, v: NodeId) -> bool {
        self.find(u) == self.find(v)
    }

    /// Size of `u`'s set.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn size_of(&mut self, u: NodeId) -> u32 {
        let r = self.find(u);
        self.size[r as usize]
    }

    /// Smallest member id of `u`'s set — the tie-break key for "the
    /// component containing the smallest node id wins".
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn min_of(&mut self, u: NodeId) -> NodeId {
        let r = self.find(u);
        self.min[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_merges() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        for u in 0..5 {
            assert_eq!(uf.find(u), u);
            assert_eq!(uf.size_of(u), 1);
            assert_eq!(uf.min_of(u), u);
        }
        assert!(uf.union(3, 4));
        assert!(!uf.union(4, 3), "already merged");
        assert!(uf.connected(3, 4));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.size_of(4), 2);
        assert_eq!(uf.min_of(4), 3);
    }

    #[test]
    fn min_tracking_spans_chained_merges() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 4);
        uf.union(3, 5);
        uf.union(1, 2);
        uf.union(2, 4);
        assert_eq!(uf.size_of(5), 5);
        assert_eq!(uf.min_of(5), 1);
        assert_eq!(uf.min_of(1), 1);
        assert_eq!(uf.size_of(0), 1);
    }

    #[test]
    fn equal_size_tie_breaks_to_smaller_root() {
        // two 2-sets rooted at 0 and 2; merging must crown root 0
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert_eq!(uf.find(3), 0);
        assert_eq!(uf.find(2), 0);
        assert_eq!(uf.size_of(0), 4);
    }

    #[test]
    fn replayed_sequences_are_bit_identical() {
        let ops = [(0, 1), (2, 3), (1, 3), (5, 6), (4, 6), (0, 6)];
        let run = || {
            let mut uf = UnionFind::new(8);
            for &(u, v) in &ops {
                uf.union(u, v);
            }
            // compress everything so the comparison covers find too
            let roots: Vec<NodeId> = (0..8).map(|u| uf.find(u)).collect();
            (uf.parent.clone(), uf.size.clone(), uf.min.clone(), roots)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_forest() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
    }
}

//! Erdős–Rényi random graphs.
//!
//! `G(n, p)` delegates to the 0K stochastic constructor in `dk-core` (it
//! *is* the 0K construction); `G(n, m)` draws exactly `m` distinct edges,
//! which several tests prefer for exact edge counts.

use dk_core::dist::Dist0K;
use dk_graph::Graph;
use rand::Rng;

/// `G(n, p)`: every pair connected independently with probability `p`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let expected = (p.clamp(0.0, 1.0) * (n as f64) * (n as f64 - 1.0) / 2.0).round() as usize;
    dk_core::generate::stochastic::generate_0k(
        &Dist0K {
            nodes: n,
            edges: expected,
        },
        rng,
    )
    .graph
}

/// `G(n, m)`: uniformly random simple graph with exactly `m` edges.
///
/// # Panics
/// Panics if `m > C(n, 2)`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "m = {m} exceeds C({n},2) = {max}");
    let mut g = Graph::with_nodes(n);
    // rejection sampling is fine for sparse graphs (all ours are)
    while g.edge_count() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let _ = u != v && g.try_add_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(100, 250, &mut rng);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 250);
        g.check_invariants().unwrap();
    }

    #[test]
    fn gnm_complete() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm(6, 15, &mut rng);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_overfull_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        gnm(4, 7, &mut rng);
    }

    #[test]
    fn gnp_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnp(500, 0.05, &mut rng);
        let expected = 0.05 * 500.0 * 499.0 / 2.0;
        let rel = g.edge_count() as f64 / expected;
        assert!((rel - 1.0).abs() < 0.1, "edges {}", g.edge_count());
    }

    #[test]
    fn gnp_degree_distribution_is_poissonish() {
        // Table 1's maximum-entropy claim: 0K-random ⇒ Poisson degrees.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3000;
        let kavg = 6.0;
        let g = gnp(n, kavg / n as f64, &mut rng);
        let hist = dk_graph::degree::degree_histogram(&g);
        let mut chi2 = 0.0;
        for k in 0..hist.len().min(15) {
            let expected = n as f64 * dk_metrics::degree::poisson_pmf(kavg, k);
            if expected < 5.0 {
                continue;
            }
            let got = hist.get(k).copied().unwrap_or(0) as f64;
            chi2 += (got - expected).powi(2) / expected;
        }
        // ~14 dof; 99.9th percentile ≈ 36 — generous but catches breakage
        assert!(chi2 < 40.0, "chi² = {chi2}");
    }
}

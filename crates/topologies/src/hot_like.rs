//! HOT-like router-level topology — the substitute for the Li et al.
//! HOT graph (paper ref \[19\]; n = 939, m = 988).
//!
//! HOT ("Heuristically Optimal Topology") encodes router technology
//! constraints: core routers carry high bandwidth over *few* ports (low
//! degree), while access routers at the edge aggregate many low-bandwidth
//! customers (high degree). The result is the opposite of what
//! degree-driven random graphs produce — high-degree nodes at the
//! **periphery**, a low-degree mesh **core**, near-zero clustering, and
//! strong disassortativity — precisely why the paper uses it as the hard
//! case where 1K fails and d = 3 is needed.
//!
//! This generator builds that structure from first principles:
//!
//! ```text
//! core ring + chords  (low degree, high "bandwidth")
//!   └── gateways      (per-core fanout)
//!         └── access routers (per-gateway fanout)
//!               └── hosts    (degree-1 leaves, heavy-tailed fanout)
//! plus a redundancy budget of triangle-free cross links
//! ```
//!
//! Defaults are calibrated to the published HOT scale: n ≈ 939,
//! m ≈ 988, `k̄ ≈ 2.1`, `r ≈ −0.22`, `C̄ ≈ 0`, `d̄ ≈ 6.8`.

use dk_graph::{Graph, NodeId};
use rand::Rng;

use crate::powerlaw::{sample_sequence, PowerLawParams};

/// Parameters for [`hot_like`].
#[derive(Clone, Copy, Debug)]
pub struct HotLikeParams {
    /// Core mesh size.
    pub core_routers: usize,
    /// Extra chords across the core ring (distance ≥ 3, triangle-free).
    pub core_chords: usize,
    /// Gateways hanging off each core router.
    pub gateways_per_core: usize,
    /// Access routers per gateway.
    pub access_per_gateway: usize,
    /// Total nodes (hosts fill the remainder).
    pub target_nodes: usize,
    /// Total edges (redundancy links fill the remainder).
    pub target_edges: usize,
    /// Power-law exponent of the access-router host fanout.
    pub fanout_gamma: f64,
    /// Cap on a single access router's host count.
    pub max_fanout: usize,
}

impl Default for HotLikeParams {
    fn default() -> Self {
        HotLikeParams {
            core_routers: 12,
            core_chords: 6,
            gateways_per_core: 3,
            access_per_gateway: 4,
            target_nodes: 939,
            target_edges: 988,
            fanout_gamma: 1.6,
            max_fanout: 120,
        }
    }
}

impl HotLikeParams {
    /// CI-scale preset (~1/3 size, same shape).
    pub fn small() -> Self {
        HotLikeParams {
            core_routers: 6,
            core_chords: 3,
            gateways_per_core: 3,
            access_per_gateway: 3,
            target_nodes: 320,
            target_edges: 337,
            ..Default::default()
        }
    }

    /// Number of infrastructure (non-host) nodes.
    pub fn infra_nodes(&self) -> usize {
        let gw = self.core_routers * self.gateways_per_core;
        self.core_routers + gw + gw * self.access_per_gateway
    }
}

/// Generates a HOT-like router topology. Always connected.
///
/// # Panics
/// Panics if `target_nodes` does not leave room for at least one host
/// per ten access routers, or the core is too small for the chords.
pub fn hot_like<R: Rng + ?Sized>(p: &HotLikeParams, rng: &mut R) -> Graph {
    let nc = p.core_routers;
    assert!(nc >= 4, "core needs ≥ 4 routers");
    let n_gw = nc * p.gateways_per_core;
    let n_ar = n_gw * p.access_per_gateway;
    let infra = p.infra_nodes();
    assert!(
        p.target_nodes > infra + n_ar / 10,
        "target_nodes {} leaves no room for hosts over {} infra nodes",
        p.target_nodes,
        infra
    );
    let n_hosts = p.target_nodes - infra;
    let mut g = Graph::with_nodes(p.target_nodes);

    // id layout: [0, nc) core | [nc, nc+n_gw) gateways | access | hosts
    let core = |i: usize| i as NodeId;
    let gw = |i: usize| (nc + i) as NodeId;
    let ar = |i: usize| (nc + n_gw + i) as NodeId;
    let host = |i: usize| (infra + i) as NodeId;

    // core ring
    for i in 0..nc {
        g.add_edge(core(i), core((i + 1) % nc)).expect("ring");
    }
    // chords at distance ≥ 3 (no triangles with ring edges)
    let mut chords_added = 0;
    let mut span = nc / 2;
    'outer: while chords_added < p.core_chords && span >= 3 {
        for i in 0..nc {
            if chords_added >= p.core_chords {
                break 'outer;
            }
            let j = (i + span) % nc;
            if g.try_add_edge(core(i), core(j)) {
                chords_added += 1;
            }
        }
        span -= 1;
    }

    // core → gateways
    for c in 0..nc {
        for s in 0..p.gateways_per_core {
            g.add_edge(core(c), gw(c * p.gateways_per_core + s))
                .expect("gateway tree");
        }
    }
    // gateways → access routers
    for w in 0..n_gw {
        for s in 0..p.access_per_gateway {
            g.add_edge(gw(w), ar(w * p.access_per_gateway + s))
                .expect("access tree");
        }
    }

    // heavy-tailed host fanouts, apportioned to sum exactly to n_hosts
    let raw = sample_sequence(
        &PowerLawParams {
            nodes: n_ar,
            gamma: p.fanout_gamma,
            k_min: 1,
            k_max: Some(p.max_fanout),
        },
        rng,
    );
    let total_raw: usize = raw.iter().sum();
    let mut assigned = 0usize;
    let mut fanouts: Vec<usize> = raw
        .iter()
        .map(|&w| {
            let f = w * n_hosts / total_raw;
            assigned += f;
            f
        })
        .collect();
    // distribute the remainder to the largest raw weights (keeps tail)
    let mut order: Vec<usize> = (0..n_ar).collect();
    order.sort_by(|&a, &b| raw[b].cmp(&raw[a]).then(a.cmp(&b)));
    let mut left = n_hosts - assigned;
    for &i in order.iter().cycle().take(n_ar * 2) {
        if left == 0 {
            break;
        }
        fanouts[i] += 1;
        left -= 1;
    }

    // access routers → hosts
    let mut next_host = 0usize;
    for (i, &f) in fanouts.iter().enumerate() {
        for _ in 0..f {
            g.add_edge(ar(i), host(next_host)).expect("host leaf");
            next_host += 1;
        }
    }
    debug_assert_eq!(next_host, n_hosts);

    // redundancy links up to the edge target: gateway↔gateway or
    // access↔core across different branches, triangle-free to keep C̄ ≈ 0
    let mut guard = 0;
    while g.edge_count() < p.target_edges && guard < 10_000 {
        guard += 1;
        let u = if rng.gen_bool(0.7) {
            gw(rng.gen_range(0..n_gw))
        } else {
            ar(rng.gen_range(0..n_ar))
        };
        let v = if rng.gen_bool(0.5) {
            gw(rng.gen_range(0..n_gw))
        } else {
            core(rng.gen_range(0..nc))
        };
        if u == v || g.has_edge(u, v) || g.common_neighbors(u, v) > 0 {
            continue;
        }
        g.add_edge(u, v).expect("checked");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn default_instance() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        hot_like(&HotLikeParams::default(), &mut rng)
    }

    #[test]
    fn calibration_matches_published_hot_scale() {
        let g = default_instance();
        assert_eq!(g.node_count(), 939);
        assert!(
            (g.edge_count() as i64 - 988).abs() <= 5,
            "m = {}",
            g.edge_count()
        );
        let k = g.avg_degree();
        assert!((1.9..2.3).contains(&k), "k̄ = {k} (paper: 2.10)");
        assert!(dk_graph::is_connected(&g));
        g.check_invariants().unwrap();
    }

    #[test]
    fn near_zero_clustering() {
        let g = default_instance();
        let c = dk_metrics::clustering::mean_clustering(&g);
        assert!(c < 0.02, "C̄ = {c} (paper: 0)");
    }

    #[test]
    fn disassortative() {
        let g = default_instance();
        let r = dk_metrics::jdd::assortativity(&g);
        assert!((-0.5..-0.1).contains(&r), "r = {r} (paper: −0.22)");
    }

    #[test]
    fn high_degree_nodes_sit_at_the_periphery() {
        // The defining HOT feature: the max-degree node is an access
        // router whose neighbors are almost all degree-1 hosts.
        let g = default_instance();
        let vmax = g.nodes().max_by_key(|&u| g.degree(u)).expect("non-empty");
        let leafy = g
            .neighbors(vmax)
            .iter()
            .filter(|&&w| g.degree(w) == 1)
            .count();
        let frac = leafy as f64 / g.degree(vmax) as f64;
        assert!(
            frac > 0.8,
            "max-degree node has only {frac:.0}% leaf neighbors"
        );
        // and the core is low-degree
        let core_max = (0..12u32).map(|u| g.degree(u)).max().unwrap();
        assert!(
            core_max < g.max_degree() / 2,
            "core degree {core_max} vs periphery max {}",
            g.max_degree()
        );
    }

    #[test]
    fn distances_in_hot_range() {
        let g = default_instance();
        let d = dk_metrics::distance::DistanceDistribution::from_graph(&g);
        let mean = d.mean();
        assert!((5.0..9.0).contains(&mean), "d̄ = {mean} (paper: 6.81)");
    }

    #[test]
    fn small_preset_same_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = hot_like(&HotLikeParams::small(), &mut rng);
        assert_eq!(g.node_count(), 320);
        assert!(dk_graph::is_connected(&g));
        assert!(dk_metrics::jdd::assortativity(&g) < -0.1);
        assert!(dk_metrics::clustering::mean_clustering(&g) < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(3);
            hot_like(&HotLikeParams::default(), &mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(3);
            hot_like(&HotLikeParams::default(), &mut rng)
        };
        assert_eq!(a, b);
    }
}

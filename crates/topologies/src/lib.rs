//! # dk-topologies — input-topology substitutes and baseline models
//!
//! The paper evaluates on two proprietary/unavailable inputs: CAIDA's
//! **skitter** AS-level graph (March 2004; n = 9204, m = 28959) and the
//! **HOT** router-level topology of Li et al. (n = 939, m = 988). This
//! crate builds synthetic stand-ins that exercise the identical dK code
//! paths and reproduce the structural features the paper's conclusions
//! rest on, plus the classical random-graph baselines used throughout the
//! test suite:
//!
//! * [`er`] — Erdős–Rényi `G(n, p)` / `G(n, m)`;
//! * [`ba`] — Barabási–Albert preferential attachment;
//! * [`glp`] — Bu–Towsley Generalized Linear Preference (the paper's
//!   ref \[4\]), an AS-evolution model with tunable power-law exponent and
//!   clustering;
//! * [`ws`] — Watts–Strogatz small worlds;
//! * [`powerlaw`] — discrete power-law degree-sequence sampling with
//!   graphicality repair and exponent calibration;
//! * [`as_like`] — the **skitter substitute**: a heavy-tailed,
//!   structurally disassortative, clustering-annealed AS-scale graph
//!   calibrated against the scalar values the paper itself publishes in
//!   Table 6;
//! * [`mod@hot_like`] — the **HOT substitute**: a first-principles
//!   core/gateway/access/host design with high-degree nodes at the
//!   periphery, low-degree core, near-zero clustering — the structure
//!   that makes degree-distribution-only generation fail (Li et al.,
//!   paper §5.2).
//!
//! All generators take explicit parameter structs with documented
//! defaults and an `&mut impl Rng`; same seed ⇒ same graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as_like;
pub mod ba;
pub mod er;
pub mod glp;
pub mod hot_like;
pub mod powerlaw;
pub mod ws;

pub use as_like::{skitter_like, AsLikeParams};
pub use hot_like::{hot_like, HotLikeParams};

//! Barabási–Albert preferential attachment.
//!
//! The classic scale-free growth baseline: each arriving node attaches
//! `m` edges to existing nodes with probability proportional to their
//! degree. Implemented with the standard repeated-endpoint list, giving
//! O(1) proportional sampling and O(n·m) total construction.

use dk_graph::Graph;
use rand::Rng;

/// Parameters for [`barabasi_albert`].
#[derive(Clone, Copy, Debug)]
pub struct BaParams {
    /// Final number of nodes.
    pub nodes: usize,
    /// Edges attached per arriving node.
    pub edges_per_node: usize,
    /// Seed clique size (≥ `edges_per_node` + 1 recommended).
    pub seed_nodes: usize,
}

impl Default for BaParams {
    fn default() -> Self {
        BaParams {
            nodes: 1000,
            edges_per_node: 2,
            seed_nodes: 3,
        }
    }
}

/// Generates a BA graph.
///
/// # Panics
/// Panics if `seed_nodes < 2`, `edges_per_node == 0`, or
/// `nodes < seed_nodes`.
pub fn barabasi_albert<R: Rng + ?Sized>(p: &BaParams, rng: &mut R) -> Graph {
    assert!(p.seed_nodes >= 2, "need at least a seed edge");
    assert!(p.edges_per_node >= 1, "each node must attach something");
    assert!(p.nodes >= p.seed_nodes, "nodes < seed_nodes");
    let mut g = Graph::with_nodes(p.nodes);
    // endpoint multiset: node appears once per incident edge end
    let mut ends: Vec<u32> = Vec::with_capacity(2 * p.nodes * p.edges_per_node);
    // seed: clique on seed_nodes
    for u in 0..p.seed_nodes as u32 {
        for v in (u + 1)..p.seed_nodes as u32 {
            g.add_edge(u, v).expect("seed clique");
            ends.push(u);
            ends.push(v);
        }
    }
    for u in p.seed_nodes as u32..p.nodes as u32 {
        let mut added = 0;
        let mut guard = 0;
        while added < p.edges_per_node.min(u as usize) {
            let target = ends[rng.gen_range(0..ends.len())];
            if g.try_add_edge(u, target) {
                ends.push(u);
                ends.push(target);
                added += 1;
            }
            guard += 1;
            if guard > 100 * p.edges_per_node {
                break; // extremely unlikely; avoids pathological spins
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(&BaParams::default(), &mut rng);
        assert_eq!(g.node_count(), 1000);
        // m ≈ seed C(3,2) + 997·2
        assert!((g.edge_count() as i64 - (3 + 997 * 2)).abs() <= 20);
        assert!(dk_graph::is_connected(&g));
        g.check_invariants().unwrap();
    }

    #[test]
    fn heavy_tail_present() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(
            &BaParams {
                nodes: 2000,
                edges_per_node: 2,
                seed_nodes: 3,
            },
            &mut rng,
        );
        // BA γ = 3 → max degree ≈ √n·m ≫ k̄
        assert!(
            g.max_degree() > 20 * g.avg_degree() as usize,
            "max degree {} too small for a scale-free graph",
            g.max_degree()
        );
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(&BaParams::default(), &mut rng);
        assert!(g.degrees().iter().all(|&d| d >= 2));
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn bad_params_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        barabasi_albert(
            &BaParams {
                nodes: 10,
                edges_per_node: 1,
                seed_nodes: 1,
            },
            &mut rng,
        );
    }
}

//! Watts–Strogatz small-world graphs.
//!
//! Ring lattice (each node joined to its `k/2` nearest neighbors on each
//! side) with each edge rewired to a random endpoint with probability
//! `beta`. High clustering at `beta = 0`, rapidly shrinking distances as
//! `beta` grows — the standard clustered baseline for metric tests.

use dk_graph::Graph;
use rand::Rng;

/// Parameters for [`watts_strogatz`].
#[derive(Clone, Copy, Debug)]
pub struct WsParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Even lattice degree (k/2 neighbors per side).
    pub lattice_degree: usize,
    /// Rewiring probability per edge.
    pub beta: f64,
}

impl Default for WsParams {
    fn default() -> Self {
        WsParams {
            nodes: 1000,
            lattice_degree: 6,
            beta: 0.1,
        }
    }
}

/// Generates a Watts–Strogatz graph.
///
/// # Panics
/// Panics if `lattice_degree` is odd, zero, or ≥ `nodes`.
pub fn watts_strogatz<R: Rng + ?Sized>(p: &WsParams, rng: &mut R) -> Graph {
    assert!(
        p.lattice_degree.is_multiple_of(2),
        "lattice degree must be even"
    );
    assert!(
        p.lattice_degree > 0 && p.lattice_degree < p.nodes,
        "lattice degree out of range"
    );
    let n = p.nodes as u32;
    let mut g = Graph::with_nodes(p.nodes);
    for u in 0..n {
        for off in 1..=(p.lattice_degree / 2) as u32 {
            let v = (u + off) % n;
            let _ = g.try_add_edge(u, v);
        }
    }
    // rewiring pass: for each original lattice edge, with prob beta move
    // its far endpoint to a random node
    for u in 0..n {
        for off in 1..=(p.lattice_degree / 2) as u32 {
            let v = (u + off) % n;
            if !g.has_edge(u, v) {
                continue; // already rewired away
            }
            if rng.gen_bool(p.beta) {
                let mut tries = 0;
                loop {
                    let w = rng.gen_range(0..n);
                    if w != u && !g.has_edge(u, w) {
                        g.remove_edge(u, v).expect("lattice edge");
                        g.add_edge(u, w).expect("checked");
                        break;
                    }
                    tries += 1;
                    if tries > 100 {
                        break; // node saturated; keep lattice edge
                    }
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(
            &WsParams {
                nodes: 50,
                lattice_degree: 4,
                beta: 0.0,
            },
            &mut rng,
        );
        assert_eq!(g.edge_count(), 100);
        assert!(g.degrees().iter().all(|&d| d == 4));
        // ring lattice with k = 4 has clustering 0.5
        let c = dk_metrics::clustering::mean_clustering(&g);
        assert!((c - 0.5).abs() < 1e-9, "C̄ = {c}");
    }

    #[test]
    fn rewiring_shrinks_distances_and_clustering() {
        let mut rng = StdRng::seed_from_u64(2);
        let lattice = watts_strogatz(
            &WsParams {
                nodes: 400,
                lattice_degree: 6,
                beta: 0.0,
            },
            &mut rng,
        );
        let small_world = watts_strogatz(
            &WsParams {
                nodes: 400,
                lattice_degree: 6,
                beta: 0.2,
            },
            &mut rng,
        );
        let d0 = dk_metrics::distance::average_distance(&lattice);
        let (gcc, _) = dk_graph::giant_component(&small_world);
        let d1 = dk_metrics::distance::average_distance(&gcc);
        assert!(d1 < d0 / 2.0, "distances {d0} → {d1}");
        let c0 = dk_metrics::clustering::mean_clustering(&lattice);
        let c1 = dk_metrics::clustering::mean_clustering(&small_world);
        assert!(c1 < c0, "clustering {c0} → {c1}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        watts_strogatz(
            &WsParams {
                nodes: 10,
                lattice_degree: 3,
                beta: 0.0,
            },
            &mut rng,
        );
    }
}

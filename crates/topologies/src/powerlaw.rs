//! Discrete power-law degree sequences with calibration and
//! graphicality repair.
//!
//! AS-level degree distributions follow `P(k) ∝ k^(−γ)` with a natural
//! cutoff `k_max ≈ n^(1/(γ−1))` (paper §4.2 uses exactly this estimate
//! for its `G(n,p)` probability argument). This module samples such
//! sequences, repairs them into simple-graph-realizable ("graphical")
//! sequences, and calibrates `γ` to hit a target average degree — the
//! knob the skitter substitute turns to land on `k̄ ≈ 6.29`.

use dk_graph::degree;
use rand::Rng;

/// Parameters for [`sample_sequence`].
#[derive(Clone, Copy, Debug)]
pub struct PowerLawParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Exponent `γ > 1`.
    pub gamma: f64,
    /// Minimum degree.
    pub k_min: usize,
    /// Maximum degree (natural cutoff if `None`: `n^(1/(γ−1))`).
    pub k_max: Option<usize>,
}

impl Default for PowerLawParams {
    fn default() -> Self {
        PowerLawParams {
            nodes: 1000,
            gamma: 2.1,
            k_min: 1,
            k_max: None,
        }
    }
}

/// Effective maximum degree (explicit or natural cutoff).
pub fn effective_k_max(p: &PowerLawParams) -> usize {
    p.k_max.unwrap_or_else(|| {
        ((p.nodes as f64).powf(1.0 / (p.gamma - 1.0)).round() as usize)
            .clamp(p.k_min, p.nodes.saturating_sub(1))
    })
}

/// Exact mean of the truncated discrete power law.
pub fn theoretical_mean(p: &PowerLawParams) -> f64 {
    let kmax = effective_k_max(p);
    let mut z = 0.0;
    let mut zk = 0.0;
    for k in p.k_min..=kmax {
        let w = (k as f64).powf(-p.gamma);
        z += w;
        zk += k as f64 * w;
    }
    if z == 0.0 {
        0.0
    } else {
        zk / z
    }
}

/// Samples a degree sequence from the truncated power law (not yet
/// graphical — see [`make_graphical`]).
pub fn sample_sequence<R: Rng + ?Sized>(p: &PowerLawParams, rng: &mut R) -> Vec<usize> {
    let kmax = effective_k_max(p);
    assert!(p.gamma > 1.0, "power law needs gamma > 1");
    assert!(p.k_min >= 1 && p.k_min <= kmax);
    // inverse-CDF table
    let weights: Vec<f64> = (p.k_min..=kmax)
        .map(|k| (k as f64).powf(-p.gamma))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..p.nodes)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            p.k_min + idx
        })
        .collect()
}

/// Repairs a sequence into a graphical one with minimal perturbation:
/// fixes parity by bumping one entry, then, while the Erdős–Gallai test
/// fails, decrements the largest entry (transferring the stub to the
/// smallest entry keeps the sum even).
pub fn make_graphical(seq: &mut Vec<usize>) {
    if seq.is_empty() {
        return;
    }
    let n = seq.len();
    // cap degrees at n−1
    for d in seq.iter_mut() {
        *d = (*d).min(n - 1).max(1);
    }
    if seq.iter().sum::<usize>() % 2 == 1 {
        // bump the first minimal entry up (keeps the tail intact)
        let i = (0..n).min_by_key(|&i| seq[i]).expect("non-empty");
        seq[i] += 1;
    }
    let mut guard = 0;
    while !degree::is_graphical(seq) {
        // shift one stub from the largest to the smallest entry
        let hi = (0..n).max_by_key(|&i| seq[i]).expect("non-empty");
        let lo = (0..n)
            .filter(|&i| i != hi)
            .min_by_key(|&i| seq[i])
            .expect("n ≥ 2 when non-graphical");
        if seq[hi] <= seq[lo] + 1 {
            break; // flat sequence that still fails ⇒ give up silently
        }
        seq[hi] -= 1;
        seq[lo] += 1;
        guard += 1;
        if guard > 10 * n {
            break;
        }
    }
    debug_assert!(degree::is_graphical(seq), "repair failed: {seq:?}");
}

/// Calibrates `γ` by bisection so the truncated power-law mean hits
/// `target_mean` (at the natural cutoff for `nodes`).
///
/// Returns the calibrated parameters. Mean is monotone decreasing in γ on
/// the searched interval.
pub fn calibrate_gamma(nodes: usize, k_min: usize, target_mean: f64) -> PowerLawParams {
    calibrate_gamma_with_cutoff(nodes, k_min, None, target_mean)
}

/// [`calibrate_gamma`] with an explicit maximum degree.
///
/// An explicit cap matters when the target mean pushes `γ` below 2: the
/// natural cutoff `n^(1/(γ−1))` then exceeds `n` and clamps to `n − 1`,
/// yielding near-complete stars that no AS graph exhibits (skitter's
/// `k_max ≈ n/4`).
pub fn calibrate_gamma_with_cutoff(
    nodes: usize,
    k_min: usize,
    k_max: Option<usize>,
    target_mean: f64,
) -> PowerLawParams {
    let mut lo = 1.05;
    let mut hi = 4.5;
    let mean_at = |gamma: f64| {
        theoretical_mean(&PowerLawParams {
            nodes,
            gamma,
            k_min,
            k_max,
        })
    };
    // clamp the target into the attainable range
    let (m_lo, m_hi) = (mean_at(hi), mean_at(lo));
    let target = target_mean.clamp(m_lo, m_hi);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mean_at(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    PowerLawParams {
        nodes,
        gamma: 0.5 * (lo + hi),
        k_min,
        k_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = PowerLawParams {
            nodes: 5000,
            gamma: 2.2,
            k_min: 2,
            k_max: Some(100),
        };
        let seq = sample_sequence(&p, &mut rng);
        assert_eq!(seq.len(), 5000);
        assert!(seq.iter().all(|&d| (2..=100).contains(&d)));
    }

    #[test]
    fn empirical_mean_matches_theory() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = PowerLawParams {
            nodes: 50_000,
            gamma: 2.5,
            k_min: 1,
            k_max: Some(1000),
        };
        let seq = sample_sequence(&p, &mut rng);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        let theory = theoretical_mean(&p);
        assert!(
            (mean - theory).abs() / theory < 0.05,
            "mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn make_graphical_repairs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = PowerLawParams {
                nodes: 500,
                gamma: 2.0,
                k_min: 1,
                k_max: None,
            };
            let mut seq = sample_sequence(&p, &mut rng);
            make_graphical(&mut seq);
            assert!(degree::is_graphical(&seq));
        }
    }

    #[test]
    fn make_graphical_noop_on_valid() {
        let mut seq = vec![2usize, 2, 2];
        make_graphical(&mut seq);
        assert_eq!(seq, vec![2, 2, 2]);
        let mut empty: Vec<usize> = vec![];
        make_graphical(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn calibration_hits_target_mean() {
        for target in [3.0, 6.29, 10.0] {
            let p = calibrate_gamma(9204, 1, target);
            let got = theoretical_mean(&p);
            assert!(
                (got - target).abs() < 0.05,
                "target {target}: γ = {}, mean = {got}",
                p.gamma
            );
        }
    }

    #[test]
    fn natural_cutoff_formula() {
        let p = PowerLawParams {
            nodes: 10_000,
            gamma: 2.1,
            k_min: 1,
            k_max: None,
        };
        // n^(1/1.1) ≈ 4329
        let k = effective_k_max(&p);
        assert!((4000..4700).contains(&k), "cutoff {k}");
    }
}

//! GLP — Generalized Linear Preference (Bu & Towsley, INFOCOM 2002;
//! the paper's ref \[4\]).
//!
//! An AS-evolution model refining BA: attachment probability is
//! proportional to `d_i − β` with `β < 1`, and growth interleaves two
//! operations:
//!
//! * with probability `p`: add `m` new links between *existing* nodes
//!   (both endpoints chosen preferentially) — densification;
//! * with probability `1 − p`: add a new node with `m` preferential
//!   links.
//!
//! Compared to BA it produces steeper, tunable power laws (γ = 1 +
//! 1/((1−β)·(…)) in the original analysis) and noticeably higher
//! clustering — which is why Bu & Towsley used it to argue about
//! distinguishing Internet power-law generators, and why it serves here
//! as an AS-like input source.

use dk_graph::Graph;
use rand::Rng;

/// Parameters for [`glp`].
#[derive(Clone, Copy, Debug)]
pub struct GlpParams {
    /// Final number of nodes.
    pub nodes: usize,
    /// Links added per growth event.
    pub edges_per_step: usize,
    /// Probability of a link-addition (densification) step.
    pub p_link: f64,
    /// Preference shift `β < 1`; Bu & Towsley fit ≈ 0.6447 for the AS
    /// graph.
    pub beta: f64,
    /// Seed ring size.
    pub seed_nodes: usize,
}

impl Default for GlpParams {
    fn default() -> Self {
        GlpParams {
            nodes: 1000,
            edges_per_step: 2,
            p_link: 0.4695,
            beta: 0.6447,
            seed_nodes: 5,
        }
    }
}

/// Generates a GLP graph.
///
/// # Panics
/// Panics on degenerate parameters (`beta ≥ 1`, empty seed, etc.).
pub fn glp<R: Rng + ?Sized>(p: &GlpParams, rng: &mut R) -> Graph {
    assert!(p.beta < 1.0, "GLP requires beta < 1");
    assert!(p.seed_nodes >= 3, "seed ring needs ≥ 3 nodes");
    assert!(p.nodes >= p.seed_nodes);
    assert!((0.0..1.0).contains(&p.p_link));
    let mut g = Graph::with_nodes(p.nodes);
    let mut active = p.seed_nodes as u32; // nodes currently in the graph
    for u in 0..active {
        g.add_edge(u, (u + 1) % active).expect("seed ring");
    }

    // preferential pick ∝ d_i − β over the first `active` nodes via
    // rejection on the endpoint list trick: sample node by degree list,
    // accept with prob (d−β)/d; β<1 keeps acceptance > 0 for d ≥ 1.
    // Isolated nodes (d = 0) never appear in the list, matching d−β < 1
    // semantics of the original model (all active nodes have d ≥ 1 here).
    fn pick_pref<R: Rng + ?Sized>(g: &Graph, active: u32, beta: f64, rng: &mut R) -> u32 {
        // degree-proportional proposal: random edge end among active set
        loop {
            let Ok((a, b)) = g.random_edge(rng) else {
                return rng.gen_range(0..active);
            };
            let cand = if rng.gen_bool(0.5) { a } else { b };
            if cand >= active {
                continue;
            }
            let d = g.degree(cand) as f64;
            if rng.gen_bool(((d - beta) / d).clamp(0.0, 1.0)) {
                return cand;
            }
        }
    }

    while (active as usize) < p.nodes {
        if rng.gen_bool(p.p_link) && g.edge_count() >= 2 {
            // densification: m new links between existing nodes
            for _ in 0..p.edges_per_step {
                let mut done = false;
                for _ in 0..50 {
                    let u = pick_pref(&g, active, p.beta, rng);
                    let v = pick_pref(&g, active, p.beta, rng);
                    if u != v && g.try_add_edge(u, v) {
                        done = true;
                        break;
                    }
                }
                if !done {
                    break; // saturated neighborhoods; skip
                }
            }
        } else {
            // growth: new node with m preferential links
            let u = active;
            active += 1;
            let mut added = 0;
            let mut guard = 0;
            while added < p.edges_per_step.min(active as usize - 1) {
                let v = pick_pref(&g, active - 1, p.beta, rng);
                if g.try_add_edge(u, v) {
                    added += 1;
                }
                guard += 1;
                if guard > 100 * p.edges_per_step {
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = glp(&GlpParams::default(), &mut rng);
        assert_eq!(g.node_count(), 1000);
        assert!(dk_graph::is_connected(&g), "growth keeps GLP connected");
        g.check_invariants().unwrap();
    }

    #[test]
    fn heavier_tail_than_ba() {
        // With β ≈ 0.64, GLP's exponent is lower (heavier tail) than
        // BA's γ = 3 at comparable size/density.
        let mut rng = StdRng::seed_from_u64(2);
        let glp_g = glp(
            &GlpParams {
                nodes: 3000,
                ..Default::default()
            },
            &mut rng,
        );
        let ba_g = crate::ba::barabasi_albert(
            &crate::ba::BaParams {
                nodes: 3000,
                edges_per_node: 2,
                seed_nodes: 3,
            },
            &mut rng,
        );
        assert!(
            glp_g.max_degree() > ba_g.max_degree(),
            "GLP max degree {} should exceed BA's {}",
            glp_g.max_degree(),
            ba_g.max_degree()
        );
    }

    #[test]
    fn densification_produces_clustering() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = glp(
            &GlpParams {
                nodes: 1500,
                ..Default::default()
            },
            &mut rng,
        );
        let c = dk_metrics::clustering::mean_clustering(&g);
        // GLP's link-addition step creates triangles around hubs; the
        // 1K-random counterpart of this graph would have far less.
        assert!(c > 0.02, "C̄ = {c}");
    }

    #[test]
    fn disassortative_like_as_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = glp(
            &GlpParams {
                nodes: 2000,
                ..Default::default()
            },
            &mut rng,
        );
        let r = dk_metrics::jdd::assortativity(&g);
        assert!(r < 0.0, "r = {r} should be negative (hub-leaf wiring)");
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_must_be_below_one() {
        let mut rng = StdRng::seed_from_u64(5);
        glp(
            &GlpParams {
                beta: 1.0,
                ..Default::default()
            },
            &mut rng,
        );
    }
}

//! Skitter-like AS topology — the substitute for the paper's measured
//! CAIDA skitter graph (March 2004).
//!
//! Calibration targets come from the paper's own published numbers
//! (Table 6 / §5): `n = 9204`, `m = 28959` (`k̄ ≈ 6.29`), `r ≈ −0.24`,
//! `C̄ ≈ 0.46`, heavy-tailed degrees with γ ≈ 2.1.
//!
//! Construction:
//!
//! 1. **degrees** — sample a truncated power-law sequence with `γ`
//!    bisected so the mean hits the target `k̄` ([`crate::powerlaw`]),
//!    then repair to graphicality;
//! 2. **realization** — 1K matching (exact degrees, simple graph), GCC
//!    extracted;
//! 3. **disassortativity** — free: heavy-tailed simple graphs are
//!    *structurally* disassortative (hubs cannot all interconnect), which
//!    lands `r` near the AS value without any targeting step;
//! 4. **clustering** — annealed up to the target `C̄` with 2K-preserving
//!    clustering-maximizing exploration (`dk_core::explore`), which by
//!    construction cannot disturb `P(k)`, the JDD, or `r`.
//!
//! The result is *not* the skitter graph; it is a graph that stresses the
//! dK machinery the same way: same scale, same degree-correlation regime,
//! same clustering regime. EXPERIMENTS.md reports our measured values
//! next to the paper's.

use dk_core::dist::Dist1K;
use dk_core::explore::{explore_2k, Direction, ExploreOptions, Objective2K};
use dk_core::generate::matching;
use dk_graph::{giant_component, Graph};
use rand::Rng;

use crate::powerlaw;

/// Parameters for [`skitter_like`].
#[derive(Clone, Copy, Debug)]
pub struct AsLikeParams {
    /// Node count before GCC extraction.
    pub nodes: usize,
    /// Target average degree (paper: 2·28959/9204 ≈ 6.29).
    pub target_mean_degree: f64,
    /// Power-law exponent of the degree **tail** (k ≥ 2); the paper's
    /// skitter value is γ ≈ 2.1. The degree-1 leaf fraction — AS graphs
    /// have a fat head of stub networks — is calibrated automatically so
    /// the mixture hits `target_mean_degree`. (A pure power law forced to
    /// this mean would need γ < 2, flooding the graph with mid-range hubs
    /// and inflating structural clustering far beyond anything measured.)
    pub tail_gamma: f64,
    /// Target mean clustering `C̄` (paper: 0.46). Annealing stops early
    /// once reached.
    pub target_clustering: f64,
    /// Total clustering-annealing attempt budget.
    pub anneal_attempts: u64,
}

impl Default for AsLikeParams {
    fn default() -> Self {
        AsLikeParams {
            nodes: 9204,
            target_mean_degree: 6.29,
            tail_gamma: 2.1,
            target_clustering: 0.46,
            anneal_attempts: 3_000_000,
        }
    }
}

impl AsLikeParams {
    /// CI-scale preset (~1/10 the node count, same structural regime).
    pub fn small() -> Self {
        AsLikeParams {
            nodes: 900,
            anneal_attempts: 300_000,
            ..Default::default()
        }
    }
}

/// Generates a skitter-like AS topology (connected: the GCC of the
/// realized sequence).
pub fn skitter_like<R: Rng + ?Sized>(params: &AsLikeParams, rng: &mut R) -> Graph {
    // 1. mixture degree sequence: degree-1 leaves + a γ-exponent tail
    //    from k = 2 up to the n/4 cutoff (skitter's own regime). The leaf
    //    fraction is bisected so the mixture mean hits the target.
    let tail = powerlaw::PowerLawParams {
        nodes: params.nodes,
        gamma: params.tail_gamma,
        k_min: 2,
        k_max: Some((params.nodes / 4).max(3)),
    };
    let tail_mean = powerlaw::theoretical_mean(&tail);
    // mean = f·1 + (1−f)·tail_mean  ⇒  f = (tail_mean − target)/(tail_mean − 1)
    let leaf_fraction = if tail_mean > params.target_mean_degree {
        ((tail_mean - params.target_mean_degree) / (tail_mean - 1.0)).clamp(0.0, 0.95)
    } else {
        0.0 // tail alone is too thin; generate pure tail (documented drift)
    };
    let mut seq = powerlaw::sample_sequence(&tail, rng);
    for d in seq.iter_mut() {
        if rng.gen_bool(leaf_fraction) {
            *d = 1;
        }
    }
    powerlaw::make_graphical(&mut seq);
    let d1 = Dist1K::from_degree_sequence(&seq);

    // 2. simple-graph realization with exact degrees
    let realized = matching::generate_1k(&d1, rng)
        .expect("graphical sequence realizes")
        .graph;
    let (mut gcc, _) = giant_component(&realized);

    // 3+4. clustering annealing in chunks with early stop at the target
    let chunk = 100_000u64.min(params.anneal_attempts.max(1));
    let mut spent = 0u64;
    while spent < params.anneal_attempts {
        let c = dk_metrics::clustering::mean_clustering(&gcc);
        if c >= params.target_clustering {
            break;
        }
        explore_2k(
            &mut gcc,
            Objective2K::MeanClustering,
            Direction::Maximize,
            &ExploreOptions {
                max_attempts: chunk,
                patience: Some(chunk),
            },
            rng,
        );
        spent += chunk;
    }
    // annealing moves do not maintain connectivity (rewiring never does,
    // paper §4.1.4); re-extract the GCC
    let (connected, _) = giant_component(&gcc);
    connected
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One small-scale graph shared by the calibration tests (generation
    /// involves annealing, so build it once).
    fn small_instance() -> Graph {
        let mut rng = StdRng::seed_from_u64(42);
        skitter_like(&AsLikeParams::small(), &mut rng)
    }

    #[test]
    fn structural_regime_matches_as_graphs() {
        let g = small_instance();
        assert!(dk_graph::is_connected(&g));
        // scale: GCC keeps most nodes
        assert!(g.node_count() > 700, "GCC too small: {}", g.node_count());
        // mean degree near target (GCC extraction shifts it slightly up)
        let k = g.avg_degree();
        assert!((4.0..9.0).contains(&k), "k̄ = {k}");
        // heavy tail
        assert!(
            g.max_degree() > 10 * k as usize,
            "max degree {} not heavy-tailed",
            g.max_degree()
        );
        // structurally disassortative
        let r = dk_metrics::jdd::assortativity(&g);
        assert!(r < -0.05, "r = {r}");
        // clustering annealed upward (well above the 1K-random level)
        let c = dk_metrics::clustering::mean_clustering(&g);
        assert!(c > 0.15, "C̄ = {c}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a_rng = StdRng::seed_from_u64(7);
        let mut b_rng = StdRng::seed_from_u64(7);
        let p = AsLikeParams {
            nodes: 300,
            anneal_attempts: 20_000,
            ..AsLikeParams::small()
        };
        let a = skitter_like(&p, &mut a_rng);
        let b = skitter_like(&p, &mut b_rng);
        assert_eq!(a, b);
    }

    #[test]
    fn anneal_budget_zero_equals_trivial_target() {
        // With a zero budget and with an already-satisfied target, the
        // annealing loop must not touch the graph: same seed ⇒ identical
        // output both ways.
        let p0 = AsLikeParams {
            nodes: 400,
            anneal_attempts: 0,
            ..AsLikeParams::small()
        };
        let ptriv = AsLikeParams {
            nodes: 400,
            target_clustering: 0.0,
            anneal_attempts: 50_000,
            ..AsLikeParams::small()
        };
        let a = skitter_like(&p0, &mut StdRng::seed_from_u64(9));
        let b = skitter_like(&ptriv, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn small_scale_is_naturally_clustered() {
        // At n = 400 with k_max = n/4, hub neighborhoods overlap so much
        // that even the 1K-random realization is clustered — the reason
        // the full-scale default (n = 9204) is what EXPERIMENTS.md uses.
        let p = AsLikeParams {
            nodes: 400,
            anneal_attempts: 0,
            ..AsLikeParams::small()
        };
        let g = skitter_like(&p, &mut StdRng::seed_from_u64(9));
        let c = dk_metrics::clustering::mean_clustering(&g);
        assert!(c > 0.1, "C̄ = {c}");
    }
}

//! Census of possible initial dK-preserving rewirings (paper Table 5).
//!
//! "We first calculate the number of possible initial dK-preserving
//! rewirings … We then subtract the number of rewirings that leave the
//! graph isomorphic. For example, rewiring of any two (1,k)- and
//! (1,k')-edges … the graph before rewiring is isomorphic to the graph
//! after rewiring."
//!
//! The census doubles as a size indicator of the dK-graph space: it
//! collapses dramatically as `d` grows (Table 5 reports 435M → 478K →
//! 326K → 146 for HOT), which is the quantitative face of Figure 2's
//! shrinking circles.
//!
//! Complexity: O(m²) pair enumeration for `d ≥ 1` (with an O(deg) 3K
//! check per pair at `d = 3`) — intended for HOT-scale graphs, exactly
//! like the paper's own Table 5.

use crate::generate::delta::{add_edge_tracked, frozen_degrees, remove_edge_tracked, Delta3K};
use dk_graph::Graph;

/// Result of [`count_initial_rewirings`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RewireCensus {
    /// Edge (pairs) admitting at least one valid dK-preserving rewiring.
    pub total: u64,
    /// As `total`, excluding pairs whose only valid rewirings are obvious
    /// isomorphisms (leaf swaps). `None` for `d = 0`, where the paper
    /// reports no discount (Table 5's "-").
    pub excluding_obvious_isomorphic: Option<u64>,
}

/// Counts the possible initial dK-preserving rewirings of `g`.
///
/// * `d = 0`: every (edge, empty slot) combination: `m · (C(n,2) − m)`.
/// * `d ≥ 1`: unordered pairs of edges admitting ≥ 1 valid orientation
///   (simple-graph-valid; JDD-preserving for `d = 2`; additionally
///   3K-preserving for `d = 3`).
///
/// # Panics
/// Panics if `d > 3`.
pub fn count_initial_rewirings(g: &Graph, d: u8) -> RewireCensus {
    assert!(d <= 3, "census implemented for d ≤ 3");
    if d == 0 {
        let n = g.node_count() as u64;
        let m = g.edge_count() as u64;
        let slots = n * n.saturating_sub(1) / 2 - m;
        return RewireCensus {
            total: m * slots,
            excluding_obvious_isomorphic: None,
        };
    }
    let mut work = g.clone(); // mutated only transiently for d = 3 checks
    let deg = frozen_degrees(g);
    let mut scratch = Delta3K::default();
    let m = g.edge_count();
    let mut total = 0u64;
    let mut non_iso = 0u64;
    for i in 0..m {
        let (a, b) = g.edge_at(i);
        for j in (i + 1)..m {
            let (c0, d0) = g.edge_at(j);
            let mut any_valid = false;
            let mut any_non_iso = false;
            // two orientations of the second edge
            for (c, dd) in [(c0, d0), (d0, c0)] {
                if !swap_ok(&mut work, d, &deg, &mut scratch, a, b, c, dd) {
                    continue;
                }
                any_valid = true;
                // swap {a,b},{c,dd} → {a,dd},{c,b}: exchanges partners
                // b ↔ dd; obvious isomorphism when both are leaves
                // (the paper's (1,k)/(1,k') case), or when the other
                // exchanged pair a ↔ c are both leaves.
                let leaf_swap = (work.degree(b) == 1 && work.degree(dd) == 1)
                    || (work.degree(a) == 1 && work.degree(c) == 1);
                if !leaf_swap {
                    any_non_iso = true;
                }
            }
            if any_valid {
                total += 1;
            }
            if any_non_iso {
                non_iso += 1;
            }
        }
    }
    RewireCensus {
        total,
        excluding_obvious_isomorphic: Some(non_iso),
    }
}

/// Checks the swap `{a,b},{c,d} → {a,d},{c,b}` for validity at level `dk`.
#[allow(clippy::too_many_arguments)] // four endpoints + level + scratch is the natural shape
fn swap_ok(
    work: &mut Graph,
    dk: u8,
    deg: &[u32],
    scratch: &mut Delta3K,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
) -> bool {
    // endpoints come from the edge list; see rewiring's swap_valid
    if a == d || c == b || work.has_edge_fast(a, d) || work.has_edge_fast(c, b) {
        return false;
    }
    if dk >= 2 && !(work.degree(b) == work.degree(d) || work.degree(a) == work.degree(c)) {
        return false;
    }
    if dk < 3 {
        return true;
    }
    // 3K: tentatively apply, inspect the histogram delta, revert.
    scratch.clear();
    remove_edge_tracked(work, a, b, deg, scratch);
    remove_edge_tracked(work, c, d, deg, scratch);
    add_edge_tracked(work, a, d, deg, scratch);
    add_edge_tracked(work, c, b, deg, scratch);
    let ok = scratch.is_zero();
    work.remove_edge(a, d).expect("just added");
    work.remove_edge(c, b).expect("just added");
    work.add_edge(a, b).expect("restore");
    work.add_edge(c, d).expect("restore");
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn census_0k_formula() {
        let g = builders::karate_club(); // n = 34, m = 78
        let c = count_initial_rewirings(&g, 0);
        let slots = 34u64 * 33 / 2 - 78;
        assert_eq!(c.total, 78 * slots);
        assert_eq!(c.excluding_obvious_isomorphic, None);
    }

    #[test]
    fn census_shrinks_with_d() {
        // the Table 5 monotonicity: |rewirings| collapses as d grows
        let g = builders::karate_club();
        let c0 = count_initial_rewirings(&g, 0).total;
        let c1 = count_initial_rewirings(&g, 1).total;
        let c2 = count_initial_rewirings(&g, 2).total;
        let c3 = count_initial_rewirings(&g, 3).total;
        assert!(c0 > c1, "0K {c0} vs 1K {c1}");
        assert!(c1 > c2, "1K {c1} vs 2K {c2}");
        assert!(c2 > c3, "2K {c2} vs 3K {c3}");
        assert!(c3 > 0, "karate admits some 3K rewirings");
    }

    #[test]
    fn complete_graph_admits_no_swaps() {
        let g = builders::complete(6);
        for d in 1..=3u8 {
            assert_eq!(count_initial_rewirings(&g, d).total, 0, "d = {d}");
        }
    }

    #[test]
    fn star_rewirings_are_all_obvious_isomorphisms() {
        // In a star every edge is (1,k); every 1K swap exchanges leaves.
        let g = builders::star(5);
        let c = count_initial_rewirings(&g, 1);
        // no swap is even valid: (a=hub,b,hub,d) → (hub,d) already exists…
        // both orientations collapse. Expect zero total.
        assert_eq!(c.total, 0);
        assert_eq!(c.excluding_obvious_isomorphic, Some(0));
    }

    #[test]
    fn leaf_swap_discount_on_double_star() {
        // two hubs joined; leaves on each side: leaf-pair swaps across
        // hubs are valid but isomorphic-obvious.
        let g =
            Graph::from_edges(8, [(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)]).unwrap();
        let c1 = count_initial_rewirings(&g, 1);
        assert!(c1.total > 0);
        let ex = c1.excluding_obvious_isomorphic.unwrap();
        assert!(
            ex < c1.total,
            "leaf swaps must be discounted: {} vs {}",
            ex,
            c1.total
        );
    }

    #[test]
    fn census_nonincreasing_in_d_on_grid() {
        let g = builders::grid(4, 4);
        let c1 = count_initial_rewirings(&g, 1).total;
        let c2 = count_initial_rewirings(&g, 2).total;
        let c3 = count_initial_rewirings(&g, 3).total;
        assert!(c1 >= c2 && c2 >= c3);
    }

    #[test]
    fn census_leaves_graph_untouched() {
        let g = builders::karate_club();
        let before = g.clone();
        let _ = count_initial_rewirings(&g, 3);
        assert_eq!(g, before);
    }
}

//! dK-space exploration (paper §4.3): constructing *non-random*
//! dK-graphs with extreme values of metrics defined by `P_{d+1}`.
//!
//! "To explore structural diversity among all dK-graphs, we must generate
//! dK-graphs that are not random. … accept a rewiring step only if it
//! maximizes or minimizes: 1) S2, or 2) C̄."
//!
//! * **1K-space** — 1K-preserving rewiring driving the likelihood
//!   `S = Σ_{edges} k_i·k_j` to its extremes (the Li et al. experiment
//!   the paper cites as motivating `d = 1`'s insufficiency);
//! * **2K-space** — 2K-preserving rewiring driving the second-order
//!   likelihood `S2` (wedge component) or the mean clustering `C̄`
//!   (triangle component) to their extremes;
//! * **custom** — any user objective, re-evaluated per candidate (slow
//!   but fully general).
//!
//! All exploration is greedy hill climbing, exactly as in the paper; the
//! returned extreme is a local optimum of the rewiring neighborhood.

use crate::generate::delta::{add_edge_tracked, frozen_degrees, remove_edge_tracked, Delta3K};
use crate::generate::rewire::pick_2k_swap;
use dk_graph::Graph;
use rand::Rng;

/// Whether to drive the objective up or down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Accept only increases.
    Maximize,
    /// Accept only decreases.
    Minimize,
}

impl Direction {
    fn improves(self, delta: f64) -> bool {
        match self {
            Direction::Maximize => delta > 0.0,
            Direction::Minimize => delta < 0.0,
        }
    }
}

/// Options for exploration runs.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Maximum attempted moves.
    pub max_attempts: u64,
    /// Stop after this many attempts without an accepted move.
    pub patience: Option<u64>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_attempts: 1_000_000,
            patience: Some(100_000),
        }
    }
}

/// Outcome of an exploration run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExploreStats {
    /// Moves attempted.
    pub attempts: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// Objective before.
    pub initial_value: f64,
    /// Objective after.
    pub final_value: f64,
}

/// 1K-space exploration: drive `S` to an extreme with 1K-preserving
/// swaps. `ΔS` is O(1) per candidate (degrees are invariant).
pub fn explore_1k_likelihood<R: Rng + ?Sized>(
    g: &mut Graph,
    dir: Direction,
    opts: &ExploreOptions,
    rng: &mut R,
) -> ExploreStats {
    let mut value = g.likelihood_s();
    let mut stats = ExploreStats {
        attempts: 0,
        accepted: 0,
        initial_value: value,
        final_value: value,
    };
    if g.edge_count() < 2 {
        return stats;
    }
    let deg = frozen_degrees(g);
    let kd = |u: u32| deg[u as usize] as f64;
    let mut since = 0u64;
    for _ in 0..opts.max_attempts {
        if let Some(p) = opts.patience {
            if since >= p {
                break;
            }
        }
        stats.attempts += 1;
        since += 1;
        let m = g.edge_count();
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m - 1);
        let j = if j >= i { j + 1 } else { j };
        let (a, b) = g.edge_at(i);
        let e2 = g.edge_at(j);
        let (c, d) = if rng.gen_bool(0.5) { e2 } else { (e2.1, e2.0) };
        // endpoints come from the edge list — skip id revalidation in
        // the per-attempt membership test (same argument as rewiring's
        // swap_valid)
        if a == d || c == b || g.has_edge_fast(a, d) || g.has_edge_fast(c, b) {
            continue;
        }
        let delta = kd(a) * kd(d) + kd(c) * kd(b) - kd(a) * kd(b) - kd(c) * kd(d);
        if !dir.improves(delta) {
            continue;
        }
        g.remove_edge(a, b).expect("edge 1");
        g.remove_edge(c, d).expect("edge 2");
        g.add_edge(a, d).expect("validated");
        g.add_edge(c, b).expect("validated");
        value += delta;
        stats.accepted += 1;
        since = 0;
    }
    stats.final_value = g.likelihood_s();
    debug_assert!((stats.final_value - value).abs() < 1e-6 * value.abs().max(1.0));
    stats
}

/// Which `P_3`-defined scalar a 2K-space exploration drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective2K {
    /// Second-order likelihood `S2` (wedge component).
    SecondOrderLikelihood,
    /// Mean clustering `C̄` (triangle component).
    MeanClustering,
}

/// 2K-space exploration: drive `S2` or `C̄` to an extreme with
/// 2K-preserving swaps, evaluating the objective change from the exact
/// wedge/triangle delta of each candidate.
pub fn explore_2k<R: Rng + ?Sized>(
    g: &mut Graph,
    objective: Objective2K,
    dir: Direction,
    opts: &ExploreOptions,
    rng: &mut R,
) -> ExploreStats {
    let initial = match objective {
        Objective2K::SecondOrderLikelihood => dk_metrics::likelihood::likelihood_s2(g),
        Objective2K::MeanClustering => dk_metrics::clustering::mean_clustering(g),
    };
    let mut stats = ExploreStats {
        attempts: 0,
        accepted: 0,
        initial_value: initial,
        final_value: initial,
    };
    if g.edge_count() < 2 {
        return stats;
    }
    let deg = frozen_degrees(g);
    // number of nodes with degree ≥ 2 — invariant under 2K moves; used to
    // convert triangle-weight deltas into mean-clustering deltas
    let n2 = deg.iter().filter(|&&k| k >= 2).count().max(1) as f64;
    let tri_weight = |a: u32, b: u32, c: u32| -> f64 {
        let w = |k: u32| {
            let k = k as f64;
            2.0 / (k * (k - 1.0))
        };
        w(a) + w(b) + w(c)
    };
    let mut delta = Delta3K::default();
    let mut since = 0u64;
    for _ in 0..opts.max_attempts {
        if let Some(p) = opts.patience {
            if since >= p {
                break;
            }
        }
        stats.attempts += 1;
        since += 1;
        let Some((e1, e2, orient)) = pick_2k_swap(g, rng) else {
            continue;
        };
        let (a, b) = e1;
        let (c, d) = if orient { e2 } else { (e2.1, e2.0) };
        delta.clear();
        remove_edge_tracked(g, a, b, &deg, &mut delta);
        remove_edge_tracked(g, c, d, &deg, &mut delta);
        add_edge_tracked(g, a, d, &deg, &mut delta);
        add_edge_tracked(g, c, b, &deg, &mut delta);
        let obj_delta = match objective {
            Objective2K::SecondOrderLikelihood => delta
                .wedges
                .iter()
                .map(|(&(x, _, z), &dv)| (x as f64) * (z as f64) * dv as f64)
                .sum::<f64>(),
            Objective2K::MeanClustering => {
                delta
                    .triangles
                    .iter()
                    .map(|(&(x, y, z), &dv)| tri_weight(x, y, z) * dv as f64)
                    .sum::<f64>()
                    / n2
            }
        };
        if dir.improves(obj_delta) {
            stats.accepted += 1;
            since = 0;
        } else {
            g.remove_edge(a, d).expect("just added");
            g.remove_edge(c, b).expect("just added");
            g.add_edge(a, b).expect("restore");
            g.add_edge(c, d).expect("restore");
        }
    }
    stats.final_value = match objective {
        Objective2K::SecondOrderLikelihood => dk_metrics::likelihood::likelihood_s2(g),
        Objective2K::MeanClustering => dk_metrics::clustering::mean_clustering(g),
    };
    stats
}

/// Generic exploration with a user objective, under `d`-preserving moves
/// (`d ∈ {1, 2}`). The objective is re-evaluated on the whole graph per
/// candidate — O(cost(f)) per attempt; use the specialized explorers when
/// they apply.
pub fn explore_custom<R: Rng + ?Sized, F: Fn(&Graph) -> f64>(
    g: &mut Graph,
    d: u8,
    dir: Direction,
    objective: F,
    opts: &ExploreOptions,
    rng: &mut R,
) -> ExploreStats {
    assert!(d == 1 || d == 2, "custom exploration supports d ∈ {{1, 2}}");
    let mut value = objective(g);
    let mut stats = ExploreStats {
        attempts: 0,
        accepted: 0,
        initial_value: value,
        final_value: value,
    };
    if g.edge_count() < 2 {
        return stats;
    }
    let mut since = 0u64;
    for _ in 0..opts.max_attempts {
        if let Some(p) = opts.patience {
            if since >= p {
                break;
            }
        }
        stats.attempts += 1;
        since += 1;
        // candidate selection per level
        let cand = if d == 2 {
            pick_2k_swap(g, rng).map(|(e1, e2, o)| {
                let (c, dd) = if o { e2 } else { (e2.1, e2.0) };
                (e1.0, e1.1, c, dd)
            })
        } else {
            let m = g.edge_count();
            let i = rng.gen_range(0..m);
            let j = rng.gen_range(0..m - 1);
            let j = if j >= i { j + 1 } else { j };
            let (a, b) = g.edge_at(i);
            let e2 = g.edge_at(j);
            let (c, dd) = if rng.gen_bool(0.5) { e2 } else { (e2.1, e2.0) };
            if a == dd || c == b || g.has_edge_fast(a, dd) || g.has_edge_fast(c, b) {
                None
            } else {
                Some((a, b, c, dd))
            }
        };
        let Some((a, b, c, dd)) = cand else { continue };
        g.remove_edge(a, b).expect("edge 1");
        g.remove_edge(c, dd).expect("edge 2");
        g.add_edge(a, dd).expect("validated");
        g.add_edge(c, b).expect("validated");
        let new_value = objective(g);
        if dir.improves(new_value - value) {
            value = new_value;
            stats.accepted += 1;
            since = 0;
        } else {
            g.remove_edge(a, dd).expect("just added");
            g.remove_edge(c, b).expect("just added");
            g.add_edge(a, b).expect("restore");
            g.add_edge(c, dd).expect("restore");
        }
    }
    stats.final_value = value;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist1K, Dist2K};
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts() -> ExploreOptions {
        ExploreOptions {
            max_attempts: 60_000,
            patience: Some(15_000),
        }
    }

    #[test]
    fn s_exploration_preserves_1k_and_moves_s() {
        let original = builders::karate_club();
        let d1 = Dist1K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(1);

        let mut gmax = original.clone();
        let smax = explore_1k_likelihood(&mut gmax, Direction::Maximize, &opts(), &mut rng);
        assert!(smax.final_value > smax.initial_value);
        assert_eq!(Dist1K::from_graph(&gmax), d1);

        let mut gmin = original.clone();
        let smin = explore_1k_likelihood(&mut gmin, Direction::Minimize, &opts(), &mut rng);
        assert!(smin.final_value < smin.initial_value);
        assert_eq!(Dist1K::from_graph(&gmin), d1);

        // max-S graphs are more assortative than min-S graphs
        let rmax = dk_metrics::jdd::assortativity(&gmax);
        let rmin = dk_metrics::jdd::assortativity(&gmin);
        assert!(rmax > rmin, "r_max {rmax} vs r_min {rmin}");
    }

    #[test]
    fn clustering_exploration_preserves_2k() {
        let original = builders::karate_club();
        let d2 = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(2);

        let mut gmax = original.clone();
        let cmax = explore_2k(
            &mut gmax,
            Objective2K::MeanClustering,
            Direction::Maximize,
            &opts(),
            &mut rng,
        );
        assert_eq!(Dist2K::from_graph(&gmax), d2, "2K must be preserved");
        assert!(
            cmax.final_value >= cmax.initial_value,
            "C̄ {} → {}",
            cmax.initial_value,
            cmax.final_value
        );

        let mut gmin = original.clone();
        let cmin = explore_2k(
            &mut gmin,
            Objective2K::MeanClustering,
            Direction::Minimize,
            &opts(),
            &mut rng,
        );
        assert_eq!(Dist2K::from_graph(&gmin), d2);
        assert!(cmin.final_value <= cmin.initial_value);
        assert!(
            cmax.final_value > cmin.final_value,
            "exploration must open a clustering gap: {} vs {}",
            cmax.final_value,
            cmin.final_value
        );
    }

    #[test]
    fn s2_exploration_moves_s2_and_preserves_2k() {
        let original = builders::karate_club();
        let d2 = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = original.clone();
        let st = explore_2k(
            &mut g,
            Objective2K::SecondOrderLikelihood,
            Direction::Maximize,
            &opts(),
            &mut rng,
        );
        assert_eq!(Dist2K::from_graph(&g), d2);
        assert!(st.final_value >= st.initial_value);
        // incremental bookkeeping must agree with recomputation
        assert!((dk_metrics::likelihood::likelihood_s2(&g) - st.final_value).abs() < 1e-9);
    }

    #[test]
    fn custom_objective_triangle_count() {
        let original = builders::karate_club();
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = original.clone();
        let st = explore_custom(
            &mut g,
            1,
            Direction::Minimize,
            |g| dk_metrics::clustering::triangle_count(g) as f64,
            &ExploreOptions {
                max_attempts: 3000,
                patience: Some(1500),
            },
            &mut rng,
        );
        assert!(st.final_value <= st.initial_value);
        assert_eq!(
            dk_metrics::clustering::triangle_count(&g) as f64,
            st.final_value
        );
        // degrees preserved by d = 1 moves
        assert_eq!(Dist1K::from_graph(&g), Dist1K::from_graph(&original));
    }

    #[test]
    #[should_panic(expected = "supports d")]
    fn custom_rejects_d3() {
        let mut g = builders::path(4);
        let mut rng = StdRng::seed_from_u64(5);
        explore_custom(
            &mut g,
            3,
            Direction::Maximize,
            |_| 0.0,
            &ExploreOptions::default(),
            &mut rng,
        );
    }

    #[test]
    fn tiny_graph_no_moves() {
        let mut g = builders::path(2);
        let mut rng = StdRng::seed_from_u64(6);
        let st = explore_1k_likelihood(&mut g, Direction::Maximize, &opts(), &mut rng);
        assert_eq!(st.accepted, 0);
    }
}

//! Deterministic parallel ensemble execution (historical path).
//!
//! "Our results represent averages over 100 graphs generated with a
//! different random seed in each case" (paper §5) — every reproduction
//! experiment is an embarrassingly parallel fan-out over seeds. The
//! runner itself now lives in [`dk_graph::ensemble`] so that the analysis
//! stack (`dk-metrics`, which `dk-core` depends on) can share the same
//! deterministic fan-out without a dependency cycle; this module
//! re-exports it under the path the generation stack and the bench
//! harness have always used.
//!
//! See [`dk_graph::ensemble`] for the determinism contract: replica `i`
//! is seeded from `(master, i)` only, so any thread count is
//! bit-identical to a serial loop.

pub use dk_graph::ensemble::{derive_seed, run};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_graph_runner() {
        // the historical path and the new home must be the same function
        assert_eq!(derive_seed(7, 3), dk_graph::ensemble::derive_seed(7, 3));
        assert_eq!(run(4, 1, 2, |i, _| i), vec![0, 1, 2, 3]);
    }
}

//! # dk-core — the dK-series: analysis and generation via degree correlations
//!
//! This crate implements the primary contribution of
//! *"Systematic Topology Analysis and Generation Using Degree Correlations"*
//! (Mahadevan, Krioukov, Fall, Vahdat — SIGCOMM 2006):
//!
//! * the **dK-distributions** for `d = 0, 1, 2, 3` — degree correlations
//!   within connected subgraphs of size `d` ([`Dist0K`], [`Dist1K`],
//!   [`Dist2K`], [`Dist3K`]), with extraction from arbitrary graphs,
//!   inclusion/derivation maps (paper Table 1), distance metrics `D_d`
//!   (§4.1.4), and an Orbis-style text file format ([`io`]);
//! * every **construction algorithm family** of §4.1:
//!   [`generate::stochastic`] (0K/1K/2K), [`generate::pseudograph`]
//!   (1K/2K), [`generate::matching`] (1K/2K with deadlock resolution),
//!   [`generate::rewire`] (dK-randomizing rewiring, `d = 0..3`), and
//!   [`generate::target`] (dK-targeting d'K-preserving rewiring with
//!   simulated-annealing temperature, §4.1.4);
//! * the **rewiring census** of Table 5 ([`census`]);
//! * **dK-space exploration** (§4.3): extremal rewiring that maximizes or
//!   minimizes scalar metrics defined by `P_{d+1}` — likelihood `S`,
//!   second-order likelihood `S2`, mean clustering `C̄`, or any
//!   user-supplied objective ([`explore`]);
//! * the §6 extensions: external **constraint hooks** on rewiring
//!   ([`constraints`]), **rescaling** of dK-distributions to arbitrary
//!   graph sizes ([`rescale`]), and **annotated** (link-labeled) 2K
//!   distributions ([`annotate`]).
//!
//! ## Subgraph-counting convention
//!
//! For `d = 3` the two geometries are counted over **induced** subgraphs:
//! a node triple contributes to the wedge component `P∧` iff its induced
//! subgraph is a path of length 2, and to the triangle component `P△` iff
//! it is a 3-clique. Every connected node triple therefore contributes to
//! exactly one component, which is what makes the pair (P∧, P△) a
//! *distribution* over size-3 geometries and makes 3K-preserving rewiring
//! well-defined.
//!
//! ## Quickstart
//!
//! ```
//! use dk_core::{Dist2K, generate};
//! use dk_graph::builders;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let original = builders::karate_club();
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Extract the joint degree distribution and build a 2K-random graph.
//! let jdd = Dist2K::from_graph(&original);
//! let random2k = generate::pseudograph::generate_2k(&jdd, &mut rng).unwrap();
//!
//! // The (pre-cleanup) construction reproduces the JDD exactly; the
//! // simplified graph approximates it.
//! assert_eq!(random2k.graph.node_count(), original.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod census;
pub mod constraints;
pub mod dist;
pub mod explore;
pub mod generate;
pub mod io;
pub mod rescale;
pub mod space;

pub use dist::{canon_triangle, canon_wedge, Dist0K, Dist1K, Dist2K, Dist3K};
pub use generate::rewire::{randomize, RewireOptions};
pub use generate::target::{target_rewire, TargetOptions};

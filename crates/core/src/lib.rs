//! # dk-core — the dK-series: analysis and generation via degree correlations
//!
//! This crate implements the primary contribution of
//! *"Systematic Topology Analysis and Generation Using Degree Correlations"*
//! (Mahadevan, Krioukov, Fall, Vahdat — SIGCOMM 2006):
//!
//! * the **dK-distributions** for `d = 0, 1, 2, 3` — degree correlations
//!   within connected subgraphs of size `d` ([`Dist0K`], [`Dist1K`],
//!   [`Dist2K`], [`Dist3K`]), with extraction from arbitrary graphs,
//!   inclusion/derivation maps (paper Table 1), distance metrics `D_d`
//!   (§4.1.4), and an Orbis-style text file format ([`io`]);
//! * every **construction algorithm family** of §4.1:
//!   [`generate::stochastic`] (0K/1K/2K), [`generate::pseudograph`]
//!   (1K/2K), [`generate::matching`] (1K/2K with deadlock resolution),
//!   [`generate::rewire`] (dK-randomizing rewiring, `d = 0..3`), and
//!   [`generate::target`] (dK-targeting d'K-preserving rewiring with
//!   simulated-annealing temperature, §4.1.4);
//! * the **rewiring census** of Table 5 ([`census`]);
//! * **dK-space exploration** (§4.3): extremal rewiring that maximizes or
//!   minimizes scalar metrics defined by `P_{d+1}` — likelihood `S`,
//!   second-order likelihood `S2`, mean clustering `C̄`, or any
//!   user-supplied objective ([`explore`]);
//! * the §6 extensions: external **constraint hooks** on rewiring
//!   ([`constraints`]), **rescaling** of dK-distributions to arbitrary
//!   graph sizes ([`rescale`]), and **annotated** (link-labeled) 2K
//!   distributions ([`annotate`]).
//!
//! ## Subgraph-counting convention
//!
//! For `d = 3` the two geometries are counted over **induced** subgraphs:
//! a node triple contributes to the wedge component `P∧` iff its induced
//! subgraph is a path of length 2, and to the triangle component `P△` iff
//! it is a 3-clique. Every connected node triple therefore contributes to
//! exactly one component, which is what makes the pair (P∧, P△) a
//! *distribution* over size-3 geometries and makes 3K-preserving rewiring
//! well-defined.
//!
//! ## Quickstart
//!
//! The dK-series is *one* family indexed by `d`, and the public API
//! treats it that way: extract a distribution of runtime-chosen order
//! into an [`AnyDist`], then construct graphs through the capability-
//! checked [`Generator`] builder — no per-`(d, algorithm)` dispatch on
//! the caller's side:
//!
//! ```
//! use dk_core::{AnyDist, Generator, Method};
//! use dk_graph::builders;
//!
//! let observed = builders::karate_club();
//!
//! // Extract the joint degree distribution (d = 2)...
//! let jdd = AnyDist::from_graph(2, &observed).unwrap();
//!
//! // ...and build a 2K-random graph with the pseudograph family.
//! let random2k = Generator::new(Method::Pseudograph)
//!     .seed(7)
//!     .build(&jdd)
//!     .unwrap();
//! assert_eq!(random2k.graph.node_count(), observed.node_count());
//!
//! // Impossible combinations are typed errors, not panics or footguns:
//! let d3 = AnyDist::from_graph(3, &observed).unwrap();
//! assert!(Generator::new(Method::Pseudograph).build(&d3).is_err());
//!
//! // Ensembles fan out in parallel, bit-identical to the serial loop:
//! let graphs = Generator::new(Method::Pseudograph)
//!     .seed(7)
//!     .sample_ensemble(&jdd, 4, 0);
//! assert_eq!(graphs.len(), 4);
//! ```
//!
//! The per-family modules ([`generate::pseudograph`],
//! [`generate::matching`], …) remain available as the low-level layer
//! for callers that thread their own RNG; the facade's output is
//! byte-identical to them under the same seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod census;
pub mod constraints;
pub mod dist;
pub mod ensemble;
pub mod explore;
pub mod generate;
pub mod io;
pub mod rescale;
pub mod space;

pub use dist::{
    canon_triangle, canon_wedge, AnyDist, Dist0K, Dist1K, Dist2K, Dist3K, DkDistribution,
};
pub use generate::rewire::{randomize, RewireOptions};
pub use generate::target::{target_rewire, TargetOptions};
pub use generate::{GenError, Generated, Generator, Method};

//! Annotated (link-labeled) dK-distributions (paper §6).
//!
//! "In the AS-level topology case, the link types can represent business
//! AS relationships, e.g., customer-provider or peering. … the dK-series
//! would describe correlations among different types of nodes connected
//! by different types of links within d-sized geometries. … we believe
//! that 2K-random annotated graphs could provide appropriate descriptions
//! of observed networks in a variety of settings."
//!
//! This module implements the 2K case the paper singles out: the
//! **annotated JDD** `m(k1, k2, ℓ)` — edge counts between degree classes
//! *per link label* — with extraction, consistency checks, and a
//! pseudograph-style generator whose output matches the annotated JDD
//! exactly before cleanup.

use crate::dist::{canon_pair, Degree, Dist2K};
use dk_graph::hashers::{det_hash_map, DetHashMap};
use dk_graph::{Graph, GraphError, MultiGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Link label (e.g. 0 = customer-provider, 1 = peering).
pub type Label = u16;

/// A graph whose edges carry labels.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The underlying simple graph.
    pub graph: Graph,
    /// Label per canonical edge. Every edge of `graph` must have an entry.
    pub labels: DetHashMap<(u32, u32), Label>,
}

impl LabeledGraph {
    /// Builds from a graph and a labeling function.
    pub fn new_with(graph: Graph, f: impl Fn(u32, u32) -> Label) -> Self {
        let mut labels = det_hash_map();
        for &(u, v) in graph.edges() {
            labels.insert((u, v), f(u, v));
        }
        LabeledGraph { graph, labels }
    }

    /// Label of edge `(u, v)`.
    pub fn label(&self, u: u32, v: u32) -> Option<Label> {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.labels.get(&key).copied()
    }

    /// Checks that every edge is labeled.
    pub fn validate(&self) -> Result<(), GraphError> {
        for &(u, v) in self.graph.edges() {
            if !self.labels.contains_key(&(u, v)) {
                return Err(GraphError::ConstructionFailed(format!(
                    "edge ({u}, {v}) missing a label"
                )));
            }
        }
        Ok(())
    }
}

/// The annotated 2K-distribution: `m(k1, k2, ℓ)` with `k1 ≤ k2`.
#[derive(Clone, Debug, Default)]
pub struct Annotated2K {
    /// Edge counts keyed by (degree pair, label).
    pub counts: DetHashMap<(Degree, Degree, Label), u64>,
}

impl PartialEq for Annotated2K {
    fn eq(&self, other: &Self) -> bool {
        self.counts.len() == other.counts.len()
            && self
                .counts
                .iter()
                .all(|(k, v)| other.counts.get(k) == Some(v))
    }
}

impl Eq for Annotated2K {}

impl Annotated2K {
    /// Extracts the annotated JDD from a labeled graph.
    ///
    /// # Errors
    /// Fails if some edge is unlabeled.
    pub fn from_graph(lg: &LabeledGraph) -> Result<Self, GraphError> {
        lg.validate()?;
        let mut counts = det_hash_map();
        for &(u, v) in lg.graph.edges() {
            let (k1, k2) = canon_pair(lg.graph.degree(u) as Degree, lg.graph.degree(v) as Degree);
            let l = lg.label(u, v).expect("validated above");
            *counts.entry((k1, k2, l)).or_insert(0) += 1;
        }
        Ok(Annotated2K { counts })
    }

    /// Forgets labels: the plain 2K-distribution (inclusion map).
    pub fn to_2k(&self) -> Dist2K {
        let mut d = Dist2K::default();
        for (&(k1, k2, _), &c) in &self.counts {
            *d.counts.entry((k1, k2)).or_insert(0) += c;
        }
        d
    }

    /// Total edges.
    pub fn edges(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Distinct labels present.
    pub fn labels(&self) -> Vec<Label> {
        let mut v: Vec<Label> = self.counts.keys().map(|&(_, _, l)| l).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Squared distance between annotated JDDs (the `D_2` analogue).
    pub fn distance_sq(&self, other: &Annotated2K) -> f64 {
        let mut acc = 0.0;
        for (k, &a) in &self.counts {
            let b = other.counts.get(k).copied().unwrap_or(0);
            acc += (a as f64 - b as f64).powi(2);
        }
        for (k, &b) in &other.counts {
            if !self.counts.contains_key(k) {
                acc += (b as f64).powi(2);
            }
        }
        acc
    }
}

/// Pseudograph-style construction of a labeled graph matching an
/// annotated JDD exactly before cleanup.
///
/// The algorithm is the paper's 2K pseudograph with labels riding along:
/// labeled edge instances are created per `(k1, k2, ℓ)` class; edge-end
/// grouping into nodes ignores labels entirely (labels constrain edges,
/// not stub grouping), so the degree structure matches the plain 2K
/// construction while each edge keeps its label.
pub fn generate_annotated_2k<R: Rng + ?Sized>(
    d: &Annotated2K,
    rng: &mut R,
) -> Result<LabeledGraph, GraphError> {
    let plain = d.to_2k();
    let d1 = plain.to_1k()?;
    let n = d1.nodes();
    let kmax = d1.counts.len();

    // labeled edge instances
    let mut ends_of: Vec<Vec<(u64, u8)>> = vec![Vec::new(); kmax];
    let mut edge_labels: Vec<Label> = Vec::new();
    let mut entries: Vec<(&(Degree, Degree, Label), &u64)> = d.counts.iter().collect();
    entries.sort_unstable(); // deterministic order before shuffling
    for (&(k1, k2, l), &m) in entries {
        for _ in 0..m {
            let e = edge_labels.len() as u64;
            ends_of[k1 as usize].push((e, 0));
            ends_of[k2 as usize].push((e, 1));
            edge_labels.push(l);
        }
    }
    let mut endpoint: Vec<[u32; 2]> = vec![[u32::MAX; 2]; edge_labels.len()];
    let mut node = 0u32;
    for (k, list) in ends_of.iter_mut().enumerate() {
        if k == 0 || list.is_empty() {
            continue;
        }
        list.shuffle(rng);
        for group in list.chunks(k) {
            for &(e, side) in group {
                endpoint[e as usize][side as usize] = node;
            }
            node += 1;
        }
    }
    let mut mg = MultiGraph::with_nodes(n);
    for ep in &endpoint {
        mg.add_edge(ep[0], ep[1]);
    }
    let (graph, _badness) = mg.simplify();
    // label surviving edges: first instance wins for collapsed parallels
    let mut labels: DetHashMap<(u32, u32), Label> = det_hash_map();
    for (e, ep) in endpoint.iter().enumerate() {
        let (u, v) = (ep[0].min(ep[1]), ep[0].max(ep[1]));
        if u != v && graph.has_edge(u, v) {
            labels.entry((u, v)).or_insert(edge_labels[e]);
        }
    }
    let lg = LabeledGraph { graph, labels };
    lg.validate()?;
    Ok(lg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_karate() -> LabeledGraph {
        // label: 0 if the edge touches a hub (deg ≥ 10), else 1 — a crude
        // "customer-provider vs peering" stand-in
        let g = builders::karate_club();
        LabeledGraph::new_with(g.clone(), |u, v| {
            if g.degree(u) >= 10 || g.degree(v) >= 10 {
                0
            } else {
                1
            }
        })
    }

    #[test]
    fn extraction_counts_labels() {
        let lg = labeled_karate();
        let a = Annotated2K::from_graph(&lg).unwrap();
        assert_eq!(a.edges(), 78);
        assert_eq!(a.labels(), vec![0, 1]);
        // forgetting labels gives the plain JDD
        assert_eq!(a.to_2k(), Dist2K::from_graph(&lg.graph));
    }

    #[test]
    fn unlabeled_edge_rejected() {
        let g = builders::path(3);
        let lg = LabeledGraph {
            graph: g,
            labels: det_hash_map(),
        };
        assert!(lg.validate().is_err());
        assert!(Annotated2K::from_graph(&lg).is_err());
    }

    #[test]
    fn generation_matches_annotated_jdd_modulo_cleanup() {
        let lg = labeled_karate();
        let target = Annotated2K::from_graph(&lg).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = generate_annotated_2k(&target, &mut rng).unwrap();
        out.validate().unwrap();
        let got = Annotated2K::from_graph(&out).unwrap();
        // Cleanup drops a few edges, which shifts hub degrees and thereby
        // relabels whole JDD rows (the paper's own k̄/r-discrepancy
        // effect), so cellwise distance is a poor yardstick. Assert the
        // robust invariants instead:
        // 1. edge count within cleanup noise,
        let (e_got, e_tgt) = (got.edges() as f64, target.edges() as f64);
        assert!(
            (e_got - e_tgt).abs() / e_tgt < 0.15,
            "edge count {e_got} too far from target {e_tgt}"
        );
        // 2. per-label edge mass approximately preserved,
        for l in target.labels() {
            let mass = |a: &Annotated2K| -> f64 {
                a.counts
                    .iter()
                    .filter(|(&(_, _, ll), _)| ll == l)
                    .map(|(_, &c)| c as f64)
                    .sum()
            };
            let (mg, mt) = (mass(&got), mass(&target));
            assert!(
                (mg - mt).abs() / mt.max(1.0) < 0.25,
                "label {l}: mass {mg} vs target {mt}"
            );
        }
        // 3. every surviving edge labeled, labels drawn from the target set
        for &(u, v) in out.graph.edges() {
            let l = out.label(u, v).unwrap();
            assert!(l == 0 || l == 1);
        }
    }

    #[test]
    fn label_lookup_orientation_free() {
        let lg = labeled_karate();
        assert_eq!(lg.label(0, 1), lg.label(1, 0));
        assert_eq!(lg.label(0, 999), None);
    }

    #[test]
    fn distance_sq_zero_on_self() {
        let a = Annotated2K::from_graph(&labeled_karate()).unwrap();
        assert_eq!(a.distance_sq(&a), 0.0);
    }
}

//! Stochastic constructions (paper §4.1.1): connect node pairs
//! independently with dK-derived probabilities.
//!
//! * 0K: `G(n, p)` with `p = k̄/n` — classical Erdős–Rényi;
//! * 1K: Chung–Lu, `p(q_i, q_j) = q_i·q_j/(n·q̄)` — expected degrees match;
//! * 2K: hidden-variable block model — nodes are grouped into degree
//!   classes and class pairs `(k1, k2)` are wired as bipartite `G(n1·n2,
//!   p)` blocks with `p` chosen so the **expected** edge count equals the
//!   target `m(k1, k2)`.
//!
//! All three use geometric gap-skipping over the pair space (Batagelj &
//! Brandes), so generation is O(n + m) rather than O(n²); the high
//! *statistical variance* the paper criticizes (§4.1.1, §5.1 — e.g.
//! expected-degree-1 nodes ending up isolated) is faithfully present, and
//! the evaluation tables show it.

use crate::dist::{Dist0K, Dist1K, Dist2K};
use crate::generate::Generated;
use dk_graph::{Graph, GraphError};
use rand::Rng;

/// Geometric skip sampling: calls `emit(t)` for each selected index
/// `t < total`, where each index is selected independently with
/// probability `p`.
fn skip_sample<R: Rng + ?Sized>(total: u64, p: f64, rng: &mut R, mut emit: impl FnMut(u64)) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for t in 0..total {
            emit(t);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut t: i64 = -1;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (u.ln() / log_q).floor() as i64 + 1;
        t += gap.max(1);
        if t as u64 >= total {
            return;
        }
        emit(t as u64);
    }
}

/// Maps a linear index to the `(i, j)` pair with `i < j < n`
/// (row-major over the strictly-upper triangle).
fn unrank_pair(t: u64, n: u64) -> (u64, u64) {
    // Solve i: the number of pairs before row i is i*n - i*(i+1)/2.
    // Linear scan is avoided with the closed-form inverse.
    let tf = t as f64;
    let nf = n as f64;
    let mut i = (nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * tf).max(0.0).sqrt()).floor() as u64;
    // guard against float slop
    loop {
        let before = i * n - i * (i + 1) / 2;
        if before > t {
            i -= 1;
            continue;
        }
        let row_len = n - i - 1;
        if t - before >= row_len {
            i += 1;
            continue;
        }
        let j = i + 1 + (t - before);
        return (i, j);
    }
}

/// 0K construction: `G(n, p)` with `p = k̄/n`.
pub fn generate_0k<R: Rng + ?Sized>(d: &Dist0K, rng: &mut R) -> Generated {
    let n = d.nodes;
    let mut g = Graph::with_nodes(n);
    if n >= 2 {
        let total = (n as u64) * (n as u64 - 1) / 2;
        skip_sample(total, d.edge_probability(), rng, |t| {
            let (i, j) = unrank_pair(t, n as u64);
            let _ = g.try_add_edge(i as u32, j as u32);
        });
    }
    Generated::clean(g)
}

/// 1K construction (Chung–Lu): nodes labeled with expected degrees `q_i`
/// drawn from the target distribution; `p_ij = min(1, q_i·q_j/(2m))`.
///
/// Implemented block-wise over degree classes so the gap-skipping trick
/// applies (within a class pair the probability is constant).
pub fn generate_1k<R: Rng + ?Sized>(d: &Dist1K, rng: &mut R) -> Result<Generated, GraphError> {
    let n = d.nodes();
    let two_m = 2.0 * d.edges()? as f64;
    let mut g = Graph::with_nodes(n);
    if n == 0 || two_m == 0.0 {
        return Ok(Generated::clean(g));
    }
    // class → node-id range (nodes laid out by ascending degree)
    let classes = class_layout(d);
    for (a, &(ka, lo_a, hi_a)) in classes.iter().enumerate() {
        for &(kb, lo_b, hi_b) in classes.iter().skip(a) {
            let p = ((ka as f64 * kb as f64) / two_m).min(1.0);
            connect_block(&mut g, (lo_a, hi_a), (lo_b, hi_b), p, rng);
        }
    }
    Ok(Generated::clean(g))
}

/// 2K construction (hidden-variable / block model): class pair `(k1, k2)`
/// is wired with constant probability chosen so the expected number of
/// block edges equals the target `m(k1, k2)`.
pub fn generate_2k<R: Rng + ?Sized>(d: &Dist2K, rng: &mut R) -> Result<Generated, GraphError> {
    let d1 = d.to_1k()?;
    let n = d1.nodes();
    let mut g = Graph::with_nodes(n);
    let classes = class_layout(&d1);
    let class_of = |k: u32| classes.iter().find(|&&(ck, _, _)| ck == k).copied();
    for (&(k1, k2), &m_target) in &d.counts {
        let (Some((_, lo1, hi1)), Some((_, lo2, hi2))) = (class_of(k1), class_of(k2)) else {
            return Err(GraphError::NotGraphical(format!(
                "2K references degree class {k1} or {k2} with no nodes"
            )));
        };
        let pairs = if k1 == k2 {
            let s = hi1 - lo1;
            s * (s.saturating_sub(1)) / 2
        } else {
            (hi1 - lo1) * (hi2 - lo2)
        };
        if pairs == 0 {
            continue;
        }
        let p = (m_target as f64 / pairs as f64).min(1.0);
        connect_block(&mut g, (lo1, hi1), (lo2, hi2), p, rng);
    }
    Ok(Generated::clean(g))
}

/// Lays nodes out contiguously by degree class:
/// returns `(degree, lo, hi)` ranges with `hi` exclusive.
fn class_layout(d: &Dist1K) -> Vec<(u32, u64, u64)> {
    let mut out = Vec::new();
    let mut next = 0u64;
    for (k, &c) in d.counts.iter().enumerate() {
        if c > 0 {
            out.push((k as u32, next, next + c as u64));
            next += c as u64;
        }
    }
    out
}

/// Wires a (possibly diagonal) block with constant probability `p`.
fn connect_block<R: Rng + ?Sized>(
    g: &mut Graph,
    (lo_a, hi_a): (u64, u64),
    (lo_b, hi_b): (u64, u64),
    p: f64,
    rng: &mut R,
) {
    if lo_a == lo_b {
        // diagonal block: pairs within one class
        let s = hi_a - lo_a;
        if s < 2 {
            return;
        }
        skip_sample(s * (s - 1) / 2, p, rng, |t| {
            let (i, j) = unrank_pair(t, s);
            let _ = g.try_add_edge((lo_a + i) as u32, (lo_a + j) as u32);
        });
    } else {
        let (na, nb) = (hi_a - lo_a, hi_b - lo_b);
        skip_sample(na * nb, p, rng, |t| {
            let i = lo_a + t / nb;
            let j = lo_b + t % nb;
            let _ = g.try_add_edge(i as u32, j as u32);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unrank_pair_covers_triangle() {
        let n = 7u64;
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..n * (n - 1) / 2 {
            let (i, j) = unrank_pair(t, n);
            assert!(i < j && j < n, "t={t} → ({i},{j})");
            assert!(seen.insert((i, j)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn skip_sample_p1_emits_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut got = Vec::new();
        skip_sample(10, 1.0, &mut rng, |t| got.push(t));
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        got.clear();
        skip_sample(10, 0.0, &mut rng, |t| got.push(t));
        assert!(got.is_empty());
    }

    #[test]
    fn skip_sample_density_close_to_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut count = 0u64;
        skip_sample(200_000, 0.3, &mut rng, |_| count += 1);
        let rate = count as f64 / 200_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gnp_matches_expected_density() {
        let d = Dist0K {
            nodes: 2000,
            edges: 6000,
        }; // k̄ = 6
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate_0k(&d, &mut rng).graph;
        assert_eq!(g.node_count(), 2000);
        let rel = g.edge_count() as f64 / 6000.0;
        assert!((rel - 1.0).abs() < 0.1, "edges {}", g.edge_count());
    }

    #[test]
    fn gnp_edge_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            generate_0k(&Dist0K { nodes: 0, edges: 0 }, &mut rng)
                .graph
                .node_count(),
            0
        );
        assert_eq!(
            generate_0k(&Dist0K { nodes: 1, edges: 0 }, &mut rng)
                .graph
                .edge_count(),
            0
        );
        // p ≥ 1 → complete graph
        let g = generate_0k(
            &Dist0K {
                nodes: 5,
                edges: 50,
            },
            &mut rng,
        )
        .graph;
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn chung_lu_expected_degrees() {
        // heavy class structure: 100 nodes of degree 2, 10 of degree 20
        let mut counts = vec![0usize; 21];
        counts[2] = 100;
        counts[20] = 10;
        let d = Dist1K { counts };
        let mut rng = StdRng::seed_from_u64(5);
        // average over several graphs to beat the variance
        let mut deg2_sum = 0.0;
        let mut deg20_sum = 0.0;
        const REPS: usize = 40;
        for _ in 0..REPS {
            let g = generate_1k(&d, &mut rng).unwrap().graph;
            // nodes are laid out by ascending degree: first 100 are the
            // expected-degree-2 class
            let degs = g.degrees();
            deg2_sum += degs[..100].iter().sum::<usize>() as f64 / 100.0;
            deg20_sum += degs[100..].iter().sum::<usize>() as f64 / 10.0;
        }
        let d2 = deg2_sum / REPS as f64;
        let d20 = deg20_sum / REPS as f64;
        assert!((d2 - 2.0).abs() < 0.3, "mean degree of class 2: {d2}");
        assert!((d20 - 20.0).abs() < 2.0, "mean degree of class 20: {d20}");
    }

    #[test]
    fn stochastic_2k_expected_jdd() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(6);
        // Expected per-class edge counts equal the target; verify the
        // ensemble mean of total edges.
        let mut total = 0.0;
        const REPS: usize = 50;
        for _ in 0..REPS {
            let g = generate_2k(&target, &mut rng).unwrap().graph;
            total += g.edge_count() as f64;
        }
        let mean = total / REPS as f64;
        assert!(
            (mean - 78.0).abs() < 5.0,
            "mean edges {mean}, want ≈ 78 (variance is expected, bias is not)"
        );
    }

    #[test]
    fn stochastic_2k_rejects_inconsistent_input() {
        let mut d = Dist2K::default();
        d.counts.insert((2, 3), 1); // class 2 has 1 stub — inconsistent
        let mut rng = StdRng::seed_from_u64(7);
        assert!(generate_2k(&d, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Dist0K {
            nodes: 300,
            edges: 900,
        };
        let a = generate_0k(&d, &mut StdRng::seed_from_u64(9)).graph;
        let b = generate_0k(&d, &mut StdRng::seed_from_u64(9)).graph;
        assert_eq!(a, b);
    }
}

//! dK-randomizing rewiring (paper §4.1.4 and Figure 4).
//!
//! Rewire random (pairs of) edges while preserving the graph's
//! dK-distribution:
//!
//! * `d = 0` — move a random edge to a random unoccupied node pair
//!   (preserves `k̄` only);
//! * `d = 1` — swap the partners of two random edges
//!   (`{a,b},{c,d} → {a,d},{c,b}`; preserves every degree);
//! * `d = 2` — a 1K-swap restricted to orientations with matching
//!   endpoint degrees, which leaves the JDD intact (Figure 4's condition:
//!   "at least two nodes of equal degrees adjacent to the different
//!   edges");
//! * `d = 3` — a 2K-swap that additionally leaves the wedge and triangle
//!   histograms unchanged, verified exactly via incremental delta
//!   tracking ([`super::delta`]) with revert on violation.
//!
//! The swap families (`d ≥ 1`) run on the [`dk_mcmc`] engine: explicit
//! [`MoveProposal`] records, O(1) edge-index presence checks, and — for
//! `d = 3` — the [`Preserve3K`] objective deciding acceptance from the
//! tracked census delta. External [`RewireConstraint`]s plug in as the
//! chain's veto filter.
//!
//! ## Convergence budget
//!
//! The paper performs `10 ×` (number of possible initial rewirings) steps
//! and then verifies stationarity. That recipe is quadratic in `m` for
//! `d ≥ 1` and infeasible at skitter scale for `d = 0`; Gkantsidis et
//! al. \[15\] show O(m) steps suffice in practice. The default budget is
//! therefore **attempts = 50·m**, with [`SwapBudget`] offering the
//! paper-literal census-based budget for small graphs, and
//! [`verify_randomization`] implementing the paper's stationarity probe
//! (rewire more, confirm metrics stay put).

use crate::constraints::{NoConstraint, RewireConstraint};
use crate::generate::objective::Preserve3K;
use dk_graph::Graph;
use dk_mcmc::{ChainOptions, McmcChain, MoveProposal, NullObjective, ProposalKind, RunBudget};
use rand::Rng;

/// How many rewiring steps to attempt.
#[derive(Clone, Copy, Debug)]
pub enum SwapBudget {
    /// Fixed number of attempted moves.
    Attempts(u64),
    /// `factor × m` attempted moves (default policy).
    AttemptsPerEdge(f64),
    /// Paper-literal: `factor ×` the Table-5 census of possible initial
    /// rewirings. O(m²) to compute — use on HOT-scale graphs only.
    CensusTimes(f64),
}

impl Default for SwapBudget {
    fn default() -> Self {
        SwapBudget::AttemptsPerEdge(50.0)
    }
}

/// Options for [`randomize`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RewireOptions {
    /// Attempt budget.
    pub budget: SwapBudget,
}

/// Outcome counters of a rewiring run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewireStats {
    /// Moves attempted.
    pub attempts: u64,
    /// Moves that passed validity (and preservation) checks and were
    /// applied.
    pub accepted: u64,
}

/// dK-randomizing rewiring in place, `d ∈ {0, 1, 2, 3}`.
///
/// # Panics
/// Panics if `d > 3` (the paper's and our implementations stop at 3).
pub fn randomize<R: Rng + ?Sized>(
    g: &mut Graph,
    d: u8,
    opts: &RewireOptions,
    rng: &mut R,
) -> RewireStats {
    randomize_with(g, d, opts, &NoConstraint, rng)
}

/// [`randomize`] with an external [`RewireConstraint`] (paper §6).
///
/// `d ∈ {1, 2, 3}` runs on the [`dk_mcmc`] double-edge-swap chain
/// (neutral temperature: every valid, constraint-allowed, preserving
/// move is accepted), so each attempt costs O(1) presence lookups plus
/// — for `d = 3` only — the tracked O(deg) census delta. The `d = 0`
/// move is an edge *relocation*, not a swap, and keeps its dedicated
/// loop.
pub fn randomize_with<R: Rng + ?Sized, C: RewireConstraint + ?Sized>(
    g: &mut Graph,
    d: u8,
    opts: &RewireOptions,
    constraint: &C,
    rng: &mut R,
) -> RewireStats {
    assert!(d <= 3, "dK-randomizing rewiring implemented for d ≤ 3");
    let attempts = resolve_budget(g, d, opts.budget);
    let mut stats = RewireStats::default();
    if g.edge_count() < 2 {
        return stats;
    }
    if d == 0 {
        for _ in 0..attempts {
            stats.attempts += 1;
            if try_move_0k(g, constraint, rng) {
                stats.accepted += 1;
            }
        }
        return stats;
    }
    let chain_opts = ChainOptions {
        proposal: if d == 1 {
            ProposalKind::Plain
        } else {
            ProposalKind::JddPreserving
        },
        ..Default::default()
    };
    let veto = |gr: &Graph, p: &MoveProposal| constraint.allows(gr, &p.remove, &p.add);
    let mut chain = McmcChain::from_rng(std::mem::take(g), rng, chain_opts);
    let run = if d == 3 {
        chain.run_filtered(
            &mut Preserve3K::default(),
            &RunBudget::steps(attempts),
            &veto,
        )
    } else {
        chain.run_filtered(&mut NullObjective, &RunBudget::steps(attempts), &veto)
    };
    *g = chain.into_graph();
    RewireStats {
        attempts: run.attempts,
        accepted: run.accepted,
    }
}

fn resolve_budget(g: &Graph, d: u8, budget: SwapBudget) -> u64 {
    match budget {
        SwapBudget::Attempts(n) => n,
        SwapBudget::AttemptsPerEdge(f) => (f * g.edge_count() as f64).ceil() as u64,
        SwapBudget::CensusTimes(f) => {
            let census = crate::census::count_initial_rewirings(g, d);
            (f * census.total as f64).ceil() as u64
        }
    }
}

/// 0K move: relocate one random edge to a random empty slot.
fn try_move_0k<R: Rng + ?Sized, C: RewireConstraint + ?Sized>(
    g: &mut Graph,
    constraint: &C,
    rng: &mut R,
) -> bool {
    let Ok((u, v)) = g.random_edge(rng) else {
        return false;
    };
    let n = g.node_count() as u32;
    let x = rng.gen_range(0..n);
    let y = rng.gen_range(0..n);
    // endpoints sampled from 0..n are valid by construction
    if x == y || g.has_edge_indexed(x, y) {
        return false;
    }
    if !constraint.allows(g, &[(u, v)], &[(x, y)]) {
        return false;
    }
    g.remove_edge(u, v).expect("sampled edge exists");
    g.add_edge(x, y).expect("checked empty slot");
    true
}

/// Draws two distinct random edges.
fn two_edges<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Option<((u32, u32), (u32, u32))> {
    let m = g.edge_count();
    if m < 2 {
        return None;
    }
    let i = rng.gen_range(0..m);
    let j = rng.gen_range(0..m - 1);
    let j = if j >= i { j + 1 } else { j };
    Some((g.edge_at(i), g.edge_at(j)))
}

/// Validity of replacing `{a,b},{c,d}` by `{a,d},{c,b}` in a simple graph.
///
/// Presence goes through the canonical edge index
/// ([`Graph::has_edge_indexed`]), one O(1) hash probe per query
/// regardless of degree — the same path the MCMC engine's own validator
/// uses.
#[inline]
fn swap_valid(g: &Graph, a: u32, b: u32, c: u32, d: u32) -> bool {
    a != d && c != b && !g.has_edge_indexed(a, d) && !g.has_edge_indexed(c, b)
}

/// JDD preservation test for the swap `{a,b},{c,d} → {a,d},{c,b}`:
/// edge classes are conserved iff `deg(b) = deg(d)` or `deg(a) = deg(c)`.
#[inline]
fn preserves_jdd(g: &Graph, a: u32, b: u32, c: u32, d: u32) -> bool {
    g.degree(b) == g.degree(d) || g.degree(a) == g.degree(c)
}

/// A candidate 2K swap: the two sampled edges plus the orientation of
/// the second one.
pub(crate) type SwapCandidate = ((u32, u32), (u32, u32), bool);

/// Selects two edges plus an orientation such that the swap is both
/// simple-graph-valid and JDD-preserving, trying the other orientation
/// as a fallback. Returns `None` if the sampled pair admits no such
/// orientation (the attempt just fails).
///
/// Used by the exploration walks ([`crate::explore`]), which want the
/// higher hit rate of the fallback scan. The rewiring/targeting chains
/// instead propose a *single* uniform orientation through
/// [`dk_mcmc::propose_swap`], whose proposal probabilities are exactly
/// symmetric — the fallback would bias the MH proposal density.
pub(crate) fn pick_2k_swap<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Option<SwapCandidate> {
    let (e1, e2) = two_edges(g, rng)?;
    let (a, b) = e1;
    let mut orientations = [true, false];
    if rng.gen_bool(0.5) {
        orientations.swap(0, 1);
    }
    for orient in orientations {
        let (c, d) = if orient { e2 } else { (e2.1, e2.0) };
        if swap_valid(g, a, b, c, d) && preserves_jdd(g, a, b, c, d) {
            return Some((e1, e2, orient));
        }
    }
    None
}

/// Stationarity probe (paper §4.1.4): rewires a *copy* further and
/// reports the drift of cheap scalar metrics. Small drift ⇒ the original
/// randomization had converged.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceProbe {
    /// |Δ mean clustering|.
    pub clustering_drift: f64,
    /// |Δ assortativity|.
    pub assortativity_drift: f64,
    /// |Δ likelihood S| / max(1, S).
    pub likelihood_rel_drift: f64,
}

impl ConvergenceProbe {
    /// `true` if all drifts fall under the given tolerance.
    pub fn converged(&self, tol: f64) -> bool {
        self.clustering_drift < tol
            && self.assortativity_drift < tol
            && self.likelihood_rel_drift < tol
    }
}

/// Runs the paper's "keep rewiring and check nothing moves" verification.
pub fn verify_randomization<R: Rng + ?Sized>(
    g: &Graph,
    d: u8,
    opts: &RewireOptions,
    rng: &mut R,
) -> ConvergenceProbe {
    let mut probe = g.clone();
    let before_c = dk_metrics::clustering::mean_clustering(&probe);
    let before_r = dk_metrics::jdd::assortativity(&probe);
    let before_s = probe.likelihood_s();
    randomize(&mut probe, d, opts, rng);
    ConvergenceProbe {
        clustering_drift: (dk_metrics::clustering::mean_clustering(&probe) - before_c).abs(),
        assortativity_drift: (dk_metrics::jdd::assortativity(&probe) - before_r).abs(),
        likelihood_rel_drift: (probe.likelihood_s() - before_s).abs() / before_s.max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist0K, Dist1K, Dist2K, Dist3K};
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts(attempts: u64) -> RewireOptions {
        RewireOptions {
            budget: SwapBudget::Attempts(attempts),
        }
    }

    #[test]
    fn d0_preserves_only_average_degree() {
        let mut g = builders::karate_club();
        let before = Dist0K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let stats = randomize(&mut g, 0, &opts(2000), &mut rng);
        assert!(stats.accepted > 500);
        g.check_invariants().unwrap();
        assert_eq!(Dist0K::from_graph(&g), before);
        // degrees should have been scrambled
        assert_ne!(
            Dist1K::from_graph(&g),
            Dist1K::from_graph(&builders::karate_club())
        );
    }

    #[test]
    fn d1_preserves_every_degree() {
        let mut g = builders::karate_club();
        let before_deg = g.degrees();
        let before_jdd = Dist2K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let stats = randomize(&mut g, 1, &opts(3000), &mut rng);
        assert!(stats.accepted > 500);
        g.check_invariants().unwrap();
        assert_eq!(g.degrees(), before_deg);
        // JDD generally changes under 1K randomization
        assert_ne!(Dist2K::from_graph(&g), before_jdd);
    }

    #[test]
    fn d2_preserves_jdd_exactly() {
        let mut g = builders::karate_club();
        let before = Dist2K::from_graph(&g);
        let before_3k = Dist3K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = randomize(&mut g, 2, &opts(5000), &mut rng);
        assert!(stats.accepted > 300, "accepted {}", stats.accepted);
        g.check_invariants().unwrap();
        assert_eq!(Dist2K::from_graph(&g), before);
        // 3K generally changes under 2K randomization
        assert_ne!(Dist3K::from_graph(&g), before_3k);
    }

    #[test]
    fn d3_preserves_wedges_and_triangles_exactly() {
        let mut g = builders::karate_club();
        let before2 = Dist2K::from_graph(&g);
        let before3 = Dist3K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let stats = randomize(&mut g, 3, &opts(4000), &mut rng);
        g.check_invariants().unwrap();
        assert_eq!(Dist2K::from_graph(&g), before2);
        assert_eq!(Dist3K::from_graph(&g), before3);
        // 3K moves are rare but must exist on a graph this size
        assert!(stats.accepted > 0, "no accepted 3K moves");
    }

    #[test]
    fn d1_randomization_destroys_clustering() {
        // 1K-random graphs of a clustered graph lose most clustering —
        // the qualitative point of the paper's skitter Figure 6(c).
        let g0 = builders::karate_club();
        let c0 = dk_metrics::clustering::mean_clustering(&g0);
        let mut g = g0.clone();
        let mut rng = StdRng::seed_from_u64(5);
        randomize(&mut g, 1, &opts(5000), &mut rng);
        let c1 = dk_metrics::clustering::mean_clustering(&g);
        assert!(c1 < c0 * 0.8, "clustering {c0} → {c1} should drop");
    }

    #[test]
    fn budget_resolution() {
        let g = builders::karate_club();
        assert_eq!(resolve_budget(&g, 1, SwapBudget::Attempts(7)), 7);
        assert_eq!(resolve_budget(&g, 1, SwapBudget::AttemptsPerEdge(2.0)), 156);
        let census = resolve_budget(&g, 1, SwapBudget::CensusTimes(1.0));
        assert!(census > 0);
    }

    #[test]
    fn constraint_blocks_moves() {
        use crate::constraints::PredicateConstraint;
        let mut g = builders::karate_club();
        let veto = PredicateConstraint(|_: &Graph, _: &[(u32, u32)], _: &[(u32, u32)]| false);
        let mut rng = StdRng::seed_from_u64(6);
        let stats = randomize_with(&mut g, 1, &opts(500), &veto, &mut rng);
        assert_eq!(stats.accepted, 0);
        assert_eq!(g, builders::karate_club());
    }

    #[test]
    fn tiny_graphs_no_panic() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in 0..=3u8 {
            let mut g = builders::path(2);
            let stats = randomize(&mut g, d, &opts(50), &mut rng);
            assert_eq!(stats.accepted, 0, "d = {d}");
        }
    }

    #[test]
    fn convergence_probe_on_randomized_graph() {
        // After heavy randomization, more rewiring barely moves metrics —
        // but karate has only 34 nodes, so a *single* probe is noisy: over
        // 48 chain-owned seeds the per-probe |drift| measures mean ≈ 0.057
        // with σ ≈ 0.049 (clustering, the widest of the three components).
        // Averaging K = 16 probes shrinks the sampling error to
        // σ/√K ≈ 0.012, so the tolerance is set at
        // mean + 4·σ/√K ≈ 0.057 + 0.049 ≈ 0.105 — a drift beyond that is
        // slow mixing, not small-graph noise.
        const K: u64 = 16;
        let (mut c, mut r, mut s) = (0.0, 0.0, 0.0);
        for seed in 0..K {
            let mut g = builders::karate_club();
            let mut rng = StdRng::seed_from_u64(8 + seed);
            randomize(&mut g, 1, &opts(20_000), &mut rng);
            let probe = verify_randomization(&g, 1, &opts(20_000), &mut rng);
            c += probe.clustering_drift;
            r += probe.assortativity_drift;
            s += probe.likelihood_rel_drift;
        }
        let avg = ConvergenceProbe {
            clustering_drift: c / K as f64,
            assortativity_drift: r / K as f64,
            likelihood_rel_drift: s / K as f64,
        };
        assert!(
            avg.converged(0.105),
            "drift too large: {avg:?} (randomization not converged)"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = builders::karate_club();
        let mut b = builders::karate_club();
        randomize(&mut a, 2, &opts(1000), &mut StdRng::seed_from_u64(9));
        randomize(&mut b, 2, &opts(1000), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

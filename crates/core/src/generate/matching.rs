//! Matching constructions (paper §4.1.3): stub pairing that *avoids*
//! loops and parallel edges during construction.
//!
//! Loop avoidance introduces deadlocks: the remaining stubs may admit no
//! legal pairing (e.g. all remaining stubs belong to one node, or to nodes
//! that are already fully interconnected). The paper reports devising
//! "several techniques to deal with these problems"; the technique used
//! here is the standard **edge rotation** repair: when stubs `u, v` cannot
//! be joined, pick a random already-placed edge `(x, y)` such that
//! `(u, x)` and `(v, y)` are both legal, delete it, and add those two
//! edges — consuming the stuck stubs while preserving all degrees (and,
//! in the 2K variant, the edge's degree-class, preserving the JDD).
//!
//! Every repair is bounded; exhausting the budget returns
//! [`GraphError::ConstructionFailed`] instead of spinning.

use crate::dist::{Degree, Dist1K, Dist2K};
use crate::generate::Generated;
use dk_graph::{Graph, GraphError};
use rand::seq::SliceRandom;
use rand::Rng;

/// Repair attempts per stuck stub pair before giving up.
const REPAIR_ATTEMPTS: usize = 200;
/// Random partner draws before declaring a stub pair stuck.
const PARTNER_ATTEMPTS: usize = 50;

/// 1K matching construction: realizes the degree sequence as a simple
/// graph (no loops, no parallel edges), with rotation repair on deadlock.
pub fn generate_1k<R: Rng + ?Sized>(d: &Dist1K, rng: &mut R) -> Result<Generated, GraphError> {
    let _ = d.edges()?;
    let n = d.nodes();
    let mut stubs: Vec<u32> = Vec::new();
    let mut node = 0u32;
    for (k, &c) in d.counts.iter().enumerate() {
        for _ in 0..c {
            stubs.extend(std::iter::repeat_n(node, k));
            node += 1;
        }
    }
    stubs.shuffle(rng);
    let mut g = Graph::with_nodes(n);
    while stubs.len() >= 2 {
        // draw two random stubs (swap-remove keeps draws O(1))
        let u = draw(&mut stubs, rng);
        let mut joined = false;
        for _ in 0..PARTNER_ATTEMPTS.min(stubs.len()) {
            let vi = rng.gen_range(0..stubs.len());
            let v = stubs[vi];
            if v != u && !g.has_edge(u, v) {
                stubs.swap_remove(vi);
                g.add_edge(u, v).expect("validated above");
                joined = true;
                break;
            }
        }
        if joined {
            continue;
        }
        // deadlock: all sampled partners illegal — rotate
        let v = draw(&mut stubs, rng);
        rotate_repair(&mut g, u, v, rng, |_g, _x, _y| true)?;
    }
    Ok(Generated::clean(g))
}

/// 2K matching construction: places `m(k1,k2)` edges between degree
/// classes while keeping the graph simple; rotation repair is restricted
/// to same-class edges so the JDD is preserved exactly.
pub fn generate_2k<R: Rng + ?Sized>(d: &Dist2K, rng: &mut R) -> Result<Generated, GraphError> {
    let d1 = d.to_1k()?;
    let n = d1.nodes();
    let mut g = Graph::with_nodes(n);

    // class → node ids (contiguous by ascending degree), remaining stubs
    let mut class_nodes: Vec<Vec<u32>> = vec![Vec::new(); d1.counts.len()];
    let mut stubs_left: Vec<u32> = vec![0; n];
    let mut node = 0u32;
    for (k, &c) in d1.counts.iter().enumerate() {
        for _ in 0..c {
            if k > 0 {
                class_nodes[k].push(node);
                stubs_left[node as usize] = k as u32;
            }
            node += 1;
        }
    }

    // shuffle edge-instance order across classes
    let mut work: Vec<(Degree, Degree)> = Vec::new();
    for (&(k1, k2), &m) in &d.counts {
        work.extend(std::iter::repeat_n((k1, k2), m as usize));
    }
    work.shuffle(rng);

    // target degree class of each node (constant through construction)
    let node_class: Vec<Degree> = {
        let mut v = vec![0; n];
        for (k, nodes) in class_nodes.iter().enumerate() {
            for &u in nodes {
                v[u as usize] = k as Degree;
            }
        }
        v
    };

    for (k1, k2) in work {
        let mut done = false;
        // fast path: joint random draws
        for _ in 0..PARTNER_ATTEMPTS {
            let u = pick_with_stubs(&class_nodes[k1 as usize], &stubs_left, rng);
            let v = pick_with_stubs(&class_nodes[k2 as usize], &stubs_left, rng);
            let (Some(u), Some(v)) = (u, v) else { break };
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v).expect("validated above");
                stubs_left[u as usize] -= 1;
                stubs_left[v as usize] -= 1;
                done = true;
                break;
            }
        }
        if done {
            continue;
        }
        // slow path 1: exhaustive scan over all stub-bearing pairs
        if let Some((u, v)) = exhaustive_pair(
            &g,
            &class_nodes[k1 as usize],
            &class_nodes[k2 as usize],
            &stubs_left,
        ) {
            g.add_edge(u, v).expect("scanned for legality");
            stubs_left[u as usize] -= 1;
            stubs_left[v as usize] -= 1;
            continue;
        }
        // slow path 2: rotation. The stuck stubs may even sit on a single
        // node (k1 == k2 with both remaining stubs on one node).
        let u = pick_with_stubs(&class_nodes[k1 as usize], &stubs_left, rng)
            .ok_or_else(|| class_exhausted(k1))?;
        let v =
            pick_with_stubs_excluding(&class_nodes[k2 as usize], &stubs_left, rng, u).unwrap_or(u);
        rotate_repair_2k(&mut g, u, v, &node_class, rng)?;
        stubs_left[u as usize] -= 1;
        stubs_left[v as usize] -= 1;
    }
    Ok(Generated::clean(g))
}

/// Exhaustive scan for a legal `(u, v)` pair with free stubs. O(|c1|·|c2|)
/// worst case, but only reached on deadlock, when few stubs remain.
fn exhaustive_pair(g: &Graph, c1: &[u32], c2: &[u32], stubs_left: &[u32]) -> Option<(u32, u32)> {
    for &u in c1.iter().filter(|&&u| stubs_left[u as usize] > 0) {
        for &v in c2.iter().filter(|&&v| stubs_left[v as usize] > 0) {
            if u != v && !g.has_edge(u, v) {
                return Some((u, v));
            }
        }
    }
    None
}

fn class_exhausted(k: Degree) -> GraphError {
    GraphError::ConstructionFailed(format!(
        "matching deadlock: degree class {k} has no free stubs left"
    ))
}

/// Removes and returns a uniformly random element.
fn draw<R: Rng + ?Sized>(stubs: &mut Vec<u32>, rng: &mut R) -> u32 {
    let i = rng.gen_range(0..stubs.len());
    stubs.swap_remove(i)
}

fn pick_with_stubs<R: Rng + ?Sized>(nodes: &[u32], stubs_left: &[u32], rng: &mut R) -> Option<u32> {
    pick_where(nodes, rng, |u| stubs_left[u as usize] > 0)
}

fn pick_with_stubs_excluding<R: Rng + ?Sized>(
    nodes: &[u32],
    stubs_left: &[u32],
    rng: &mut R,
    not: u32,
) -> Option<u32> {
    pick_where(nodes, rng, |u| u != not && stubs_left[u as usize] > 0)
}

/// Random member satisfying `pred`: random probes, then linear fallback
/// (so sparse survivor sets are still found).
fn pick_where<R: Rng + ?Sized>(
    nodes: &[u32],
    rng: &mut R,
    pred: impl Fn(u32) -> bool,
) -> Option<u32> {
    if nodes.is_empty() {
        return None;
    }
    for _ in 0..PARTNER_ATTEMPTS {
        let u = nodes[rng.gen_range(0..nodes.len())];
        if pred(u) {
            return Some(u);
        }
    }
    let start = rng.gen_range(0..nodes.len());
    nodes[start..]
        .iter()
        .chain(&nodes[..start])
        .copied()
        .find(|&u| pred(u))
}

/// 1K rotation repair: consume stuck stubs `u, v` by splitting a random
/// existing edge `(x, y)`: delete `(x, y)`, add `(u, x)` and `(v, y)`.
fn rotate_repair<R: Rng + ?Sized>(
    g: &mut Graph,
    u: u32,
    v: u32,
    rng: &mut R,
    extra_ok: impl Fn(&Graph, u32, u32) -> bool,
) -> Result<(), GraphError> {
    let attempt = |g: &mut Graph, x: u32, y: u32, extra_ok: &dyn Fn(&Graph, u32, u32) -> bool| {
        for (x, y) in [(x, y), (y, x)] {
            if u != x && v != y && !g.has_edge(u, x) && !g.has_edge(v, y) && extra_ok(g, x, y) {
                g.remove_edge(x, y).expect("edge sampled from graph");
                g.add_edge(u, x).expect("checked legal");
                g.add_edge(v, y).expect("checked legal");
                return true;
            }
        }
        false
    };
    for _ in 0..REPAIR_ATTEMPTS {
        let Ok((x, y)) = g.random_edge(rng) else {
            break;
        };
        if attempt(g, x, y, &extra_ok) {
            return Ok(());
        }
    }
    // deterministic fallback: scan every edge before giving up
    for i in 0..g.edge_count() {
        let (x, y) = g.edge_at(i);
        if attempt(g, x, y, &extra_ok) {
            return Ok(());
        }
    }
    Err(GraphError::ConstructionFailed(
        "matching deadlock unresolved after rotation attempts".into(),
    ))
}

/// 2K rotation repair: consume stuck stubs `u ∈ class k1`, `v ∈ class k2`
/// (possibly `u == v`) by splitting a placed edge `(x, y)` such that the
/// replacement pair `{(x, v), (u, y)}` has the same class multiset as
/// `{(x, y), stuck (k1, k2)}`. That holds whenever
/// `class(x) = class(u)` (then `(x, v)` realizes the stuck class and
/// `(u, y)` re-realizes the removed one) — or symmetrically
/// `class(y) = class(v)`.
///
/// Random probes first, then a deterministic full scan of the edge list.
fn rotate_repair_2k<R: Rng + ?Sized>(
    g: &mut Graph,
    u: u32,
    v: u32,
    node_class: &[Degree],
    rng: &mut R,
) -> Result<(), GraphError> {
    let try_edge = |g: &mut Graph, x: u32, y: u32| -> bool {
        for (x, y) in [(x, y), (y, x)] {
            let class_match = node_class[x as usize] == node_class[u as usize]
                || node_class[y as usize] == node_class[v as usize];
            if !class_match {
                continue;
            }
            if u == y || x == v || g.has_edge(u, y) || g.has_edge(x, v) {
                continue;
            }
            g.remove_edge(x, y).expect("edge from graph");
            g.add_edge(u, y).expect("checked legal");
            g.add_edge(x, v).expect("checked legal");
            return true;
        }
        false
    };
    for _ in 0..REPAIR_ATTEMPTS {
        let Ok((x, y)) = g.random_edge(rng) else {
            break;
        };
        if try_edge(g, x, y) {
            return Ok(());
        }
    }
    // deterministic fallback: full scan
    for i in 0..g.edge_count() {
        let (x, y) = g.edge_at(i);
        if try_edge(g, x, y) {
            return Ok(());
        }
    }
    Err(GraphError::ConstructionFailed(
        "2K matching deadlock unresolved after rotation attempts".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matching_1k_exact_simple_graph() {
        let d = Dist1K::from_graph(&builders::karate_club());
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generate_1k(&d, &mut rng).unwrap().graph;
            g.check_invariants().unwrap();
            assert_eq!(Dist1K::from_graph(&g), d, "seed {seed}");
        }
    }

    #[test]
    fn matching_1k_adversarial_sequences() {
        // near-complete core forces deadlocks: 5 nodes of degree 4 (K5) +
        // star hub — rotation repair must still realize it.
        for seq in [
            vec![4usize, 4, 4, 4, 4],        // K5 exactly
            vec![5, 5, 4, 4, 4, 4],          // dense, tight
            vec![7, 1, 1, 1, 1, 1, 1, 1],    // star
            vec![3, 3, 3, 3, 2, 2, 2, 1, 1], // mixed
        ] {
            let d = Dist1K::from_degree_sequence(&seq);
            assert!(d.is_graphical(), "{seq:?} must be graphical");
            let mut rng = StdRng::seed_from_u64(42);
            let g = generate_1k(&d, &mut rng).unwrap().graph;
            let mut got = g.degrees();
            got.sort_unstable();
            let mut want = seq.clone();
            want.sort_unstable();
            assert_eq!(got, want, "{seq:?}");
        }
    }

    #[test]
    fn matching_2k_exact_jdd() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generate_2k(&target, &mut rng).unwrap().graph;
            g.check_invariants().unwrap();
            assert_eq!(
                Dist2K::from_graph(&g),
                target,
                "JDD must match exactly (seed {seed})"
            );
            assert_eq!(g.edge_count(), 78);
        }
    }

    #[test]
    fn matching_2k_on_regular_class() {
        let mut d = Dist2K::default();
        d.counts.insert((2, 2), 30);
        let mut rng = StdRng::seed_from_u64(3);
        let g = generate_2k(&d, &mut rng).unwrap().graph;
        assert_eq!(g.node_count(), 30);
        assert!(g.degrees().iter().all(|&x| x == 2));
    }

    #[test]
    fn matching_2k_hub_leaf_structure() {
        // one degree-4 hub class and 4 leaves: star forced exactly
        let g = builders::star(4);
        let target = Dist2K::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let out = generate_2k(&target, &mut rng).unwrap().graph;
        assert_eq!(Dist2K::from_graph(&out), target);
        assert_eq!(out.max_degree(), 4);
    }

    #[test]
    fn odd_sum_rejected() {
        let d = Dist1K::from_degree_sequence(&[1]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(generate_1k(&d, &mut rng).is_err());
    }

    #[test]
    fn impossible_sequence_fails_cleanly() {
        // degree n on n nodes is not realizable simple; matching must
        // error out, not loop forever. [5,5,1,1,1,1] is graphical?
        // Erdős–Gallai: k=2: 10 ≤ 2 + min... 5+5=10 > 1·2 + Σ min(d,2)=
        // 2 + 4·1? rhs = 2 + 4 = 6 < 10 → NOT graphical.
        let d = Dist1K::from_degree_sequence(&[5, 5, 1, 1, 1, 1]);
        assert!(!d.is_graphical());
        let mut rng = StdRng::seed_from_u64(6);
        // even sum → passes the cheap check, must fail in construction
        assert!(generate_1k(&d, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Dist2K::from_graph(&builders::karate_club());
        let a = generate_2k(&d, &mut StdRng::seed_from_u64(8)).unwrap();
        let b = generate_2k(&d, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(a.graph, b.graph);
    }
}

//! Pseudograph ("configuration") constructions (paper §4.1.2).
//!
//! * **1K** — the classic stub-matching model (PLRG / Molloy–Reed): lay
//!   out `k` stubs per degree-`k` node, shuffle, pair sequentially.
//! * **2K** — the paper's novel extension: prepare `m(k1,k2)` disconnected
//!   edges with degree-labeled ends; for each degree `k`, collect all
//!   `k`-labeled edge-ends and randomly group them into `n(k)` nodes of
//!   `k` ends each.
//!
//! Both may produce self-loops and parallel edges ("badnesses"); the
//! returned [`Generated`] carries the simplified graph plus the badness
//! census so the harness can reproduce the paper's §5.1 PLRG comparison.
//! Pre-cleanup, the constructions match the target distributions
//! **exactly** — the tests verify this on the [`dk_graph::MultiGraph`].

use crate::dist::{Dist1K, Dist2K};
use crate::generate::Generated;
use dk_graph::{GraphError, MultiGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// Raw (pre-cleanup) output of a pseudograph construction.
#[derive(Clone, Debug)]
pub struct PseudographResult {
    /// The multigraph with loops/parallels intact.
    pub multigraph: MultiGraph,
}

impl PseudographResult {
    /// Simplifies into the standard [`Generated`] form.
    pub fn simplify(&self) -> Generated {
        let (graph, badness) = self.multigraph.simplify();
        Generated { graph, badness }
    }
}

/// 1K pseudograph construction, returning the raw multigraph.
///
/// # Errors
/// [`GraphError::NotGraphical`] if the degree sum is odd.
pub fn generate_1k_multigraph<R: Rng + ?Sized>(
    d: &Dist1K,
    rng: &mut R,
) -> Result<PseudographResult, GraphError> {
    let _ = d.edges()?; // validates even degree sum
    let n = d.nodes();
    let mut stubs: Vec<u32> = Vec::new();
    let mut node = 0u32;
    for (k, &c) in d.counts.iter().enumerate() {
        for _ in 0..c {
            stubs.extend(std::iter::repeat_n(node, k));
            node += 1;
        }
    }
    stubs.shuffle(rng);
    let mut mg = MultiGraph::with_nodes(n);
    for pair in stubs.chunks(2) {
        if let [u, v] = pair {
            mg.add_edge(*u, *v);
        }
    }
    Ok(PseudographResult { multigraph: mg })
}

/// 1K pseudograph construction with cleanup (paper's full §4.1.2 recipe,
/// minus GCC extraction which is the caller's measurement step).
pub fn generate_1k<R: Rng + ?Sized>(d: &Dist1K, rng: &mut R) -> Result<Generated, GraphError> {
    Ok(generate_1k_multigraph(d, rng)?.simplify())
}

/// 2K pseudograph construction, returning the raw multigraph.
///
/// Implementation of the paper's algorithm, literally:
/// 1. prepare `m(k1,k2)` disconnected edges, both ends degree-labeled;
/// 2. for each degree `k`, list all `k`-labeled edge-ends;
/// 3. randomly partition that list into groups of `k` — the `k`-degree
///    nodes of the final graph.
///
/// # Errors
/// [`GraphError::NotGraphical`] if the distribution is inconsistent (some
/// degree class's end count is not divisible by the degree).
pub fn generate_2k_multigraph<R: Rng + ?Sized>(
    d: &Dist2K,
    rng: &mut R,
) -> Result<PseudographResult, GraphError> {
    let d1 = d.to_1k()?; // validates divisibility
    let n = d1.nodes();

    // Edge-end table: ends[i] = (edge index, side); label implied by list.
    // Step 1+2 fused: per-degree lists of (edge, side).
    let kmax = d1.counts.len();
    let mut ends_of: Vec<Vec<(u64, u8)>> = vec![Vec::new(); kmax];
    let mut edge_count = 0u64;
    for (&(k1, k2), &m) in &d.counts {
        for _ in 0..m {
            ends_of[k1 as usize].push((edge_count, 0));
            ends_of[k2 as usize].push((edge_count, 1));
            edge_count += 1;
        }
    }

    // Step 3: group ends into nodes.
    // endpoint_node[edge][side] = node id
    let mut endpoint: Vec<[u32; 2]> = vec![[u32::MAX; 2]; edge_count as usize];
    let mut node = 0u32;
    for (k, list) in ends_of.iter_mut().enumerate() {
        if k == 0 || list.is_empty() {
            continue;
        }
        list.shuffle(rng);
        for group in list.chunks(k) {
            debug_assert_eq!(group.len(), k, "divisibility validated above");
            for &(e, side) in group {
                endpoint[e as usize][side as usize] = node;
            }
            node += 1;
        }
    }
    debug_assert_eq!(node as usize, n);

    let mut mg = MultiGraph::with_nodes(n);
    for ep in &endpoint {
        mg.add_edge(ep[0], ep[1]);
    }
    Ok(PseudographResult { multigraph: mg })
}

/// 2K pseudograph construction with cleanup.
pub fn generate_2k<R: Rng + ?Sized>(d: &Dist2K, rng: &mut R) -> Result<Generated, GraphError> {
    Ok(generate_2k_multigraph(d, rng)?.simplify())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Degree histogram of a multigraph (loops count 2).
    fn mg_histogram(mg: &MultiGraph) -> Vec<usize> {
        let mut h = vec![0usize; 64];
        for u in 0..mg.node_count() as u32 {
            let d = mg.degree(u);
            if h.len() <= d {
                h.resize(d + 1, 0);
            }
            h[d] += 1;
        }
        while h.last() == Some(&0) {
            h.pop();
        }
        h
    }

    #[test]
    fn pseudograph_1k_exact_before_cleanup() {
        let d = Dist1K::from_graph(&builders::karate_club());
        let mut rng = StdRng::seed_from_u64(1);
        let res = generate_1k_multigraph(&d, &mut rng).unwrap();
        let mut h = mg_histogram(&res.multigraph);
        h.resize(d.counts.len().max(h.len()), 0);
        let mut want = d.counts.clone();
        want.resize(h.len(), 0);
        assert_eq!(h, want);
    }

    #[test]
    fn pseudograph_1k_rejects_odd_sum() {
        let d = Dist1K::from_degree_sequence(&[3, 1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(generate_1k(&d, &mut rng).is_err());
    }

    #[test]
    fn pseudograph_2k_exact_jdd_before_cleanup() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(3);
        let res = generate_2k_multigraph(&target, &mut rng).unwrap();
        let mg = &res.multigraph;
        // JDD of the multigraph must match exactly: recompute from edge
        // instances using multigraph degrees.
        let mut counts: std::collections::BTreeMap<(u32, u32), u64> = Default::default();
        for &(u, v) in mg.edges() {
            let (a, b) = (mg.degree(u) as u32, mg.degree(v) as u32);
            *counts.entry(crate::dist::canon_pair(a, b)).or_insert(0) += 1;
        }
        let want: std::collections::BTreeMap<(u32, u32), u64> =
            target.sorted_entries().into_iter().collect();
        assert_eq!(counts, want);
    }

    #[test]
    fn pseudograph_2k_cleanup_reports_badness() {
        // Ensemble: badness occurs but stays small relative to m (the
        // paper's observation that 2K constrains better than PLRG).
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total_bad = 0usize;
        for _ in 0..20 {
            let gen = generate_2k(&target, &mut rng).unwrap();
            total_bad += gen.badness.total();
            assert_eq!(gen.graph.node_count(), 34);
            gen.graph.check_invariants().unwrap();
        }
        assert!(
            total_bad < 20 * 20,
            "average badness should be ≪ m; got {total_bad}/20 graphs"
        );
    }

    #[test]
    fn pseudograph_2k_single_class() {
        // all-degree-2: a disjoint union of cycles; JDD preserved exactly
        let mut d = Dist2K::default();
        d.counts.insert((2, 2), 12);
        let mut rng = StdRng::seed_from_u64(5);
        let res = generate_2k_multigraph(&d, &mut rng).unwrap();
        assert_eq!(res.multigraph.node_count(), 12);
        assert_eq!(res.multigraph.edge_count(), 12);
        for u in 0..12u32 {
            assert_eq!(res.multigraph.degree(u), 2);
        }
    }

    #[test]
    fn pseudograph_2k_inconsistent_rejected() {
        let mut d = Dist2K::default();
        d.counts.insert((2, 3), 1);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(generate_2k(&d, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Dist2K::from_graph(&builders::karate_club());
        let a = generate_2k(&d, &mut StdRng::seed_from_u64(11)).unwrap();
        let b = generate_2k(&d, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.badness, b.badness);
    }

    #[test]
    fn empty_distributions() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generate_1k(&Dist1K::default(), &mut rng).unwrap();
        assert_eq!(g.graph.node_count(), 0);
        let g = generate_2k(&Dist2K::default(), &mut rng).unwrap();
        assert_eq!(g.graph.node_count(), 0);
    }
}

//! Construction algorithms for dK-graphs (paper §4.1), behind one
//! capability-checked facade.
//!
//! ## The construction families and their capability matrix
//!
//! Five families, mirroring the paper's taxonomy. [`Method::supports`]
//! encodes this table machine-checkably; [`Generator::build`] consults it
//! and turns impossible combinations into typed [`GenError`]s instead of
//! scattered per-call-site matches:
//!
//! | [`Method`] | module | d = 0 | d = 1 | d = 2 | d = 3 | character |
//! |------------|--------|:-----:|:-----:|:-----:|:-----:|-----------|
//! | `Stochastic` | [`stochastic`] | ✓ | ✓ | ✓ | — | expected-value match, high variance |
//! | `Pseudograph` | [`pseudograph`] | — | ✓ | ✓ | — | exact match pre-cleanup, loops/parallels |
//! | `Matching` | [`matching`] | — | ✓ | ✓ | — | exact simple-graph match, deadlock-prone |
//! | `Targeting` | [`target`] | — | — | ✓ | ✓ | bootstrap + dK-targeting rewiring chain |
//! | `Rewiring` | [`rewire`] | ✓ | ✓ | ✓ | ✓ | needs a reference graph |
//!
//! The paper could not generalize pseudograph/matching beyond `d = 2`
//! (subgraphs overlap over edges from `d = 3` on); neither do we — the
//! rewiring and targeting families cover `d = 3`, exactly as in the
//! paper. Targeting at `d ≤ 1` is pointless because pseudograph/matching
//! are already exact there.
//!
//! ## The facade
//!
//! ```
//! use dk_core::dist::AnyDist;
//! use dk_core::generate::{Generator, Method};
//! use dk_graph::builders;
//!
//! let observed = builders::karate_club();
//! let jdd = AnyDist::from_graph(2, &observed).unwrap();
//! let random2k = Generator::new(Method::Pseudograph)
//!     .seed(7)
//!     .build(&jdd)
//!     .unwrap();
//! assert_eq!(random2k.graph.node_count(), observed.node_count());
//! ```
//!
//! The per-family free functions (`pseudograph::generate_2k`, …) remain
//! available as the low-level layer — the facade dispatches to them, and
//! its output is byte-identical to calling them directly with
//! `StdRng::seed_from_u64(seed)` (the facade-equivalence tests assert
//! this cell by cell). New code should prefer the facade; the free
//! functions are kept for compatibility and for callers that thread
//! their own RNG.

pub mod delta;
pub mod matching;
pub mod objective;
pub mod pseudograph;
pub mod rewire;
pub mod stochastic;
pub mod target;

use crate::constraints::{NoConstraint, RewireConstraint};
use crate::dist::AnyDist;
use dk_graph::multigraph::Badness;
use dk_graph::{Graph, GraphError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

pub use target::Bootstrap;

/// Output of a construction: the simple graph plus whatever non-simple
/// artifacts ("badnesses", §5.1) were removed during cleanup.
///
/// Loop-free constructions report a zero [`Badness`]. GCC extraction is
/// deliberately *not* performed here — the paper treats it as part of
/// measurement, not construction, and the reproduction harness wants to
/// report GCC fractions.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The constructed simple graph (possibly disconnected).
    pub graph: Graph,
    /// Self-loops / parallel edges removed during simplification.
    pub badness: Badness,
}

impl Generated {
    /// Wraps a graph produced without any cleanup.
    pub fn clean(graph: Graph) -> Self {
        Generated {
            graph,
            badness: Badness::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Capability matrix
// ---------------------------------------------------------------------

/// A construction algorithm family (paper §4.1).
///
/// Parsing and display use one canonical name set — shared by the CLI's
/// `--algo` flag, the bench harness, and tests:
/// `stochastic`, `pseudograph`, `matching`, `targeting`, `rewiring`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// §4.1.1 stochastic: per-pair probabilities (0K/1K/2K).
    Stochastic,
    /// §4.1.2 pseudograph (configuration) with cleanup (1K/2K).
    Pseudograph,
    /// §4.1.3 matching: loop-avoiding exact construction (1K/2K).
    Matching,
    /// §4.1.4 dK-targeting d'K-preserving rewiring chain (2K/3K).
    Targeting,
    /// §4.1.4 dK-randomizing rewiring of a reference graph (0K..3K).
    Rewiring,
}

impl Method {
    /// All five families, in the paper's presentation order.
    pub const ALL: [Method; 5] = [
        Method::Stochastic,
        Method::Pseudograph,
        Method::Matching,
        Method::Targeting,
        Method::Rewiring,
    ];

    /// The Table-2-style capability matrix: can this family construct a
    /// dK-graph of order `d`?
    pub const fn supports(self, d: u8) -> bool {
        match self {
            Method::Stochastic => d <= 2,
            Method::Pseudograph | Method::Matching => d == 1 || d == 2,
            Method::Targeting => d == 2 || d == 3,
            Method::Rewiring => d <= 3,
        }
    }

    /// The orders this family supports, ascending.
    pub fn supported_orders(self) -> Vec<u8> {
        (0..=3).filter(|&d| self.supports(d)).collect()
    }

    /// Canonical lowercase name (the [`FromStr`] inverse).
    pub const fn name(self) -> &'static str {
        match self {
            Method::Stochastic => "stochastic",
            Method::Pseudograph => "pseudograph",
            Method::Matching => "matching",
            Method::Targeting => "targeting",
            Method::Rewiring => "rewiring",
        }
    }

    /// Whether the family constructs from a distribution alone
    /// (`false` for [`Method::Rewiring`], which needs a reference graph).
    pub const fn needs_reference(self) -> bool {
        matches!(self, Method::Rewiring)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "stochastic" => Ok(Method::Stochastic),
            "pseudograph" => Ok(Method::Pseudograph),
            "matching" => Ok(Method::Matching),
            "targeting" => Ok(Method::Targeting),
            "rewiring" => Ok(Method::Rewiring),
            other => Err(format!(
                "unknown algorithm {other:?} (stochastic|pseudograph|matching|targeting|rewiring)"
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed failure of a [`Generator`] build.
#[derive(Debug)]
pub enum GenError {
    /// The `(method, d)` cell is empty in the capability matrix.
    Unsupported {
        /// The requested family.
        method: Method,
        /// The requested order.
        d: u8,
    },
    /// [`Method::Rewiring`] was asked to build without a reference graph.
    NeedsReference,
    /// [`Generator::build_randomized`] was called on a family that
    /// constructs from a distribution, not from a reference graph.
    DistributionRequired(Method),
    /// A [`crate::constraints::RewireConstraint`] was attached to a
    /// family that cannot honor constraints.
    ConstraintUnsupported(Method),
    /// The underlying construction failed (inconsistent distribution,
    /// matching deadlock, …).
    Graph(GraphError),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Unsupported { method, d } => {
                let supported: Vec<String> = method
                    .supported_orders()
                    .iter()
                    .map(|x| x.to_string())
                    .collect();
                write!(
                    f,
                    "method `{method}` does not support d = {d} (supports d ∈ {{{}}})",
                    supported.join(", ")
                )?;
                if *d == 3 {
                    write!(
                        f,
                        "; d = 3 construction requires targeting or rewiring \
                         (pseudograph/matching do not generalize past d = 2, paper §4.1.2)"
                    )?;
                }
                Ok(())
            }
            GenError::NeedsReference => write!(
                f,
                "dK-randomizing rewiring constructs from a reference graph; \
                 attach one with Generator::reference(..)"
            ),
            GenError::DistributionRequired(method) => write!(
                f,
                "method `{method}` constructs from a dK-distribution; \
                 distribution-free construction is the rewiring family's"
            ),
            GenError::ConstraintUnsupported(method) => write!(
                f,
                "external rewiring constraints are honored by the rewiring family, \
                 not by `{method}`"
            ),
            GenError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for GenError {
    fn from(e: GraphError) -> Self {
        GenError::Graph(e)
    }
}

impl From<GenError> for GraphError {
    /// Flattens into the workspace-wide error type (used by the CLI,
    /// whose commands return [`GraphError`]).
    fn from(e: GenError) -> Self {
        match e {
            GenError::Graph(inner) => inner,
            other => GraphError::ConstructionFailed(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// The Generator facade
// ---------------------------------------------------------------------

/// Builder facade over every construction family.
///
/// One entry point for "construct a dK-graph of runtime-chosen `d` with
/// runtime-chosen algorithm": configure once, [`Generator::build`] from
/// any [`AnyDist`], or fan out whole ensembles with
/// [`Generator::sample_iter`] / [`Generator::sample_ensemble`].
///
/// See the [module docs](self) for the capability matrix and an example.
pub struct Generator {
    method: Method,
    seed: u64,
    bootstrap: Bootstrap,
    target_opts: target::TargetOptions,
    rewire_opts: rewire::RewireOptions,
    reference: Option<Graph>,
    constraint: Option<Box<dyn RewireConstraint + Send + Sync>>,
}

impl fmt::Debug for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Generator")
            .field("method", &self.method)
            .field("seed", &self.seed)
            .field("bootstrap", &self.bootstrap)
            .field(
                "reference",
                &self.reference.as_ref().map(|g| g.node_count()),
            )
            .field("constrained", &self.constraint.is_some())
            .finish()
    }
}

impl Generator {
    /// Starts a builder for the given family (seed 1, matching
    /// bootstrap, default options, no reference, no constraints).
    pub fn new(method: Method) -> Self {
        Generator {
            method,
            seed: 1,
            bootstrap: Bootstrap::Matching,
            target_opts: target::TargetOptions::default(),
            rewire_opts: rewire::RewireOptions::default(),
            reference: None,
            constraint: None,
        }
    }

    /// The configured family.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Sets the RNG seed (each [`Generator::build`] call re-seeds, so
    /// repeated builds are identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the 1K bootstrap of the targeting chain (paper §5.1).
    pub fn bootstrap(mut self, bootstrap: Bootstrap) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Overrides the targeting-rewiring options.
    pub fn target_options(mut self, opts: target::TargetOptions) -> Self {
        self.target_opts = opts;
        self
    }

    /// Overrides the randomizing-rewiring options.
    pub fn rewire_options(mut self, opts: rewire::RewireOptions) -> Self {
        self.rewire_opts = opts;
        self
    }

    /// Attaches the reference graph required by [`Method::Rewiring`]
    /// (the construction clones and dK-randomizes it, preserving its own
    /// order-`d` distribution).
    pub fn reference(mut self, g: &Graph) -> Self {
        self.reference = Some(g.clone());
        self
    }

    /// Attaches an external rewiring constraint (paper §6). Honored by
    /// [`Method::Rewiring`]; other families return
    /// [`GenError::ConstraintUnsupported`] at build time.
    pub fn constraints<C>(mut self, constraint: C) -> Self
    where
        C: RewireConstraint + Send + Sync + 'static,
    {
        self.constraint = Some(Box::new(constraint));
        self
    }

    /// Constructs one graph from `dist`, seeding a fresh RNG from the
    /// configured seed. Deterministic: same configuration, same output.
    ///
    /// For [`Method::Rewiring`] the *reference graph* defines the
    /// distribution being preserved; `dist` only selects the order `d`
    /// and its contents are not consulted (checking them would cost a
    /// full order-`d` census per build). Pass a dist extracted from the
    /// reference itself, or use [`Generator::build_randomized`], which
    /// makes the distribution-free contract explicit.
    pub fn build(&self, dist: &AnyDist) -> Result<Generated, GenError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build_with_rng(dist, &mut rng)
    }

    /// Constructs one graph, drawing randomness from a caller-supplied
    /// RNG (for callers that thread one RNG through a larger protocol).
    ///
    /// This is the single dispatch point over `(method, d)` in the
    /// workspace; every impossible cell returns a typed error.
    pub fn build_with_rng<R: Rng + ?Sized>(
        &self,
        dist: &AnyDist,
        rng: &mut R,
    ) -> Result<Generated, GenError> {
        let d = dist.order();
        if !self.method.supports(d) {
            return Err(GenError::Unsupported {
                method: self.method,
                d,
            });
        }
        if self.constraint.is_some() && self.method != Method::Rewiring {
            return Err(GenError::ConstraintUnsupported(self.method));
        }
        match (self.method, dist) {
            (Method::Stochastic, AnyDist::D0(d0)) => Ok(stochastic::generate_0k(d0, rng)),
            (Method::Stochastic, AnyDist::D1(d1)) => Ok(stochastic::generate_1k(d1, rng)?),
            (Method::Stochastic, AnyDist::D2(d2)) => Ok(stochastic::generate_2k(d2, rng)?),

            (Method::Pseudograph, AnyDist::D1(d1)) => Ok(pseudograph::generate_1k(d1, rng)?),
            (Method::Pseudograph, AnyDist::D2(d2)) => Ok(pseudograph::generate_2k(d2, rng)?),

            (Method::Matching, AnyDist::D1(d1)) => Ok(matching::generate_1k(d1, rng)?),
            (Method::Matching, AnyDist::D2(d2)) => Ok(matching::generate_2k(d2, rng)?),

            (Method::Targeting, AnyDist::D2(d2)) => {
                let (graph, _stats) =
                    target::generate_2k_random(d2, self.bootstrap, &self.target_opts, rng)?;
                Ok(Generated::clean(graph))
            }
            (Method::Targeting, AnyDist::D3(d3)) => {
                let (graph, _stats) =
                    target::generate_3k_random(d3, self.bootstrap, &self.target_opts, rng)?;
                Ok(Generated::clean(graph))
            }

            (Method::Rewiring, _) => self.rewire_reference(d, rng),

            // every remaining cell is rejected by the supports() gate
            _ => unreachable!("capability matrix covers all reachable cells"),
        }
    }

    /// Distribution-free entry for the rewiring family: the reference
    /// graph *is* the order-`d` distribution, so callers that only need
    /// "a dK-random counterpart of this graph" skip the (potentially
    /// expensive, immediately discarded) census extraction that
    /// `build(&AnyDist::from_graph(d, g))` would imply.
    ///
    /// # Errors
    /// [`GenError::DistributionRequired`] for every family other than
    /// [`Method::Rewiring`]; otherwise as [`Generator::build`].
    pub fn build_randomized(&self, d: u8) -> Result<Generated, GenError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build_randomized_with_rng(d, &mut rng)
    }

    /// [`Generator::build_randomized`] with a caller-supplied RNG.
    pub fn build_randomized_with_rng<R: Rng + ?Sized>(
        &self,
        d: u8,
        rng: &mut R,
    ) -> Result<Generated, GenError> {
        if self.method != Method::Rewiring {
            return Err(GenError::DistributionRequired(self.method));
        }
        if !self.method.supports(d) {
            return Err(GenError::Unsupported {
                method: self.method,
                d,
            });
        }
        self.rewire_reference(d, rng)
    }

    /// The rewiring family's construction: clone the reference and
    /// dK-randomize it at order `d` under the configured constraint.
    fn rewire_reference<R: Rng + ?Sized>(&self, d: u8, rng: &mut R) -> Result<Generated, GenError> {
        let Some(reference) = &self.reference else {
            return Err(GenError::NeedsReference);
        };
        let mut graph = reference.clone();
        match &self.constraint {
            Some(c) => rewire::randomize_with(&mut graph, d, &self.rewire_opts, c.as_ref(), rng),
            None => rewire::randomize_with(&mut graph, d, &self.rewire_opts, &NoConstraint, rng),
        };
        Ok(Generated::clean(graph))
    }

    /// Lazy ensemble: replica `i` is built with the derived seed
    /// [`crate::ensemble::derive_seed`]`(seed, i)`, so any subset of
    /// replicas can be regenerated independently — and the parallel
    /// runner ([`Generator::sample_ensemble`]) produces *identical*
    /// graphs in any thread configuration.
    pub fn sample_iter<'a>(
        &'a self,
        dist: &'a AnyDist,
        replicas: u64,
    ) -> impl Iterator<Item = Result<Generated, GenError>> + 'a {
        (0..replicas).map(move |i| {
            let mut rng = StdRng::seed_from_u64(crate::ensemble::derive_seed(self.seed, i));
            self.build_with_rng(dist, &mut rng)
        })
    }

    /// Parallel ensemble: `replicas` independent builds fanned out over
    /// `threads` worker threads (`0` = all available cores). Per-replica
    /// seeds are derived exactly as in [`Generator::sample_iter`], so the
    /// result is byte-identical to the serial iterator, in order.
    pub fn sample_ensemble(
        &self,
        dist: &AnyDist,
        replicas: u64,
        threads: usize,
    ) -> Vec<Result<Generated, GenError>> {
        crate::ensemble::run(replicas, self.seed, threads, |_i, rng| {
            self.build_with_rng(dist, rng)
        })
    }
}

#[cfg(test)]
mod facade_tests {
    use super::*;
    use crate::dist::{Dist2K, DkDistribution};
    use dk_graph::builders;

    #[test]
    fn capability_matrix_shape() {
        // spot-check the documented table
        assert!(Method::Stochastic.supports(0));
        assert!(!Method::Stochastic.supports(3));
        assert!(Method::Pseudograph.supports(2));
        assert!(!Method::Pseudograph.supports(0));
        assert!(!Method::Matching.supports(3));
        assert!(Method::Targeting.supports(3));
        assert!(!Method::Targeting.supports(1));
        assert!(Method::Rewiring.supports(0) && Method::Rewiring.supports(3));
        // every family supports at least one order; d > 3 never supported
        for m in Method::ALL {
            assert!(!m.supported_orders().is_empty(), "{m}");
            assert!(!m.supports(4), "{m}");
        }
    }

    #[test]
    fn method_name_roundtrip() {
        for m in Method::ALL {
            assert_eq!(m.to_string().parse::<Method>().unwrap(), m);
        }
        assert!("bogus".parse::<Method>().is_err());
    }

    #[test]
    fn build_dispatches_and_reports_badness() {
        let g = builders::karate_club();
        let dist = AnyDist::from_graph(2, &g).unwrap();
        let out = Generator::new(Method::Matching)
            .seed(3)
            .build(&dist)
            .unwrap();
        assert_eq!(
            Dist2K::from_graph(&out.graph),
            Dist2K::from_graph(&g),
            "matching is exact"
        );
        assert_eq!(out.badness.total(), 0, "matching never cleans up");
        // repeated builds are identical (the seed re-seeds per build)
        let again = Generator::new(Method::Matching)
            .seed(3)
            .build(&dist)
            .unwrap();
        assert_eq!(out.graph, again.graph);
    }

    #[test]
    fn rewiring_needs_reference() {
        let g = builders::karate_club();
        let dist = AnyDist::from_graph(2, &g).unwrap();
        let err = Generator::new(Method::Rewiring).build(&dist).unwrap_err();
        assert!(matches!(err, GenError::NeedsReference), "{err}");
        let ok = Generator::new(Method::Rewiring)
            .reference(&g)
            .seed(5)
            .build(&dist)
            .unwrap();
        assert_eq!(Dist2K::from_graph(&ok.graph), Dist2K::from_graph(&g));
    }

    #[test]
    fn constraints_accepted_by_rewiring_only() {
        use crate::constraints::DegreeProductCap;
        let g = builders::karate_club();
        let dist = AnyDist::from_graph(1, &g).unwrap();
        let err = Generator::new(Method::Matching)
            .constraints(DegreeProductCap { cap: 50 })
            .build(&dist)
            .unwrap_err();
        assert!(
            matches!(err, GenError::ConstraintUnsupported(Method::Matching)),
            "{err}"
        );
        let ok = Generator::new(Method::Rewiring)
            .reference(&g)
            .constraints(DegreeProductCap { cap: 10_000 })
            .build(&dist);
        assert!(ok.is_ok());
    }

    #[test]
    fn unsupported_cells_are_typed_errors() {
        let g = builders::karate_club();
        let d3 = AnyDist::from_graph(3, &g).unwrap();
        let err = Generator::new(Method::Matching).build(&d3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("targeting"), "d = 3 hint missing: {msg}");
        assert!(matches!(
            err,
            GenError::Unsupported {
                method: Method::Matching,
                d: 3
            }
        ));
    }

    #[test]
    fn build_randomized_equals_dist_driven_rewiring() {
        let g = builders::karate_club();
        for d in 0..=3u8 {
            let gen = Generator::new(Method::Rewiring).reference(&g).seed(13);
            let via_dist = gen.build(&AnyDist::from_graph(d, &g).unwrap()).unwrap();
            let direct = gen.build_randomized(d).unwrap();
            assert_eq!(via_dist.graph, direct.graph, "d = {d}");
        }
        // non-rewiring families have no distribution-free entry
        let err = Generator::new(Method::Matching)
            .build_randomized(2)
            .unwrap_err();
        assert!(
            matches!(err, GenError::DistributionRequired(Method::Matching)),
            "{err}"
        );
        // unsupported order still checked
        let err = Generator::new(Method::Rewiring)
            .reference(&g)
            .build_randomized(4)
            .unwrap_err();
        assert!(matches!(err, GenError::Unsupported { d: 4, .. }), "{err}");
        // and the reference is still required
        let err = Generator::new(Method::Rewiring)
            .build_randomized(2)
            .unwrap_err();
        assert!(matches!(err, GenError::NeedsReference), "{err}");
    }

    #[test]
    fn sample_iter_matches_parallel_ensemble() {
        let g = builders::karate_club();
        let dist = AnyDist::from_graph(2, &g).unwrap();
        let gen = Generator::new(Method::Pseudograph).seed(11);
        let serial: Vec<Graph> = gen
            .sample_iter(&dist, 6)
            .map(|r| r.unwrap().graph)
            .collect();
        let parallel: Vec<Graph> = gen
            .sample_ensemble(&dist, 6, 3)
            .into_iter()
            .map(|r| r.unwrap().graph)
            .collect();
        assert_eq!(serial, parallel);
        // replicas are genuinely independent draws
        assert!(serial.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn error_conversion_flattens_for_the_cli() {
        let e: GraphError = GenError::Unsupported {
            method: Method::Pseudograph,
            d: 3,
        }
        .into();
        assert!(matches!(e, GraphError::ConstructionFailed(_)));
        let inner = GraphError::NotGraphical("x".into());
        let e: GraphError = GenError::Graph(inner.clone()).into();
        assert_eq!(e, inner);
    }

    #[test]
    fn generator_order_agnostic_over_trait_orders() {
        // one facade covers d = 0..=3 without caller-side matching
        let g = builders::karate_club();
        for d in 0..=3u8 {
            let dist = AnyDist::from_graph(d, &g).unwrap();
            assert_eq!(dist.order(), d);
            let gen = Generator::new(Method::Rewiring).reference(&g).seed(2);
            let out = gen.build(&dist).unwrap();
            out.graph.check_invariants().unwrap();
        }
        // DkDistribution::ORDER agrees with AnyDist::order
        assert_eq!(crate::dist::Dist2K::ORDER, 2);
    }
}

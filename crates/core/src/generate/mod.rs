//! Construction algorithms for dK-graphs (paper §4.1).
//!
//! Five families, mirroring the paper's taxonomy:
//!
//! | family | module | d supported | character |
//! |--------|--------|-------------|-----------|
//! | stochastic | [`stochastic`] | 0, 1, 2 | expected-value match, high variance |
//! | pseudograph (configuration) | [`pseudograph`] | 1, 2 | exact match pre-cleanup, loops/parallels |
//! | matching | [`matching`] | 1, 2 | exact simple-graph match, deadlock-prone |
//! | dK-randomizing rewiring | [`rewire`] | 0, 1, 2, 3 | needs an original graph |
//! | dK-targeting d'K-preserving rewiring | [`target`] | 1→2, 2→3 (+0→1) | needs only the target distribution |
//!
//! The paper could not generalize pseudograph/matching beyond `d = 2`
//! (subgraphs overlap over edges from `d = 3` on); neither do we — the
//! rewiring family covers `d = 3`, exactly as in the paper.

pub mod delta;
pub mod matching;
pub mod pseudograph;
pub mod rewire;
pub mod stochastic;
pub mod target;

use dk_graph::multigraph::Badness;
use dk_graph::Graph;

/// Output of a construction: the simple graph plus whatever non-simple
/// artifacts ("badnesses", §5.1) were removed during cleanup.
///
/// Loop-free constructions report a zero [`Badness`]. GCC extraction is
/// deliberately *not* performed here — the paper treats it as part of
/// measurement, not construction, and the reproduction harness wants to
/// report GCC fractions.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The constructed simple graph (possibly disconnected).
    pub graph: Graph,
    /// Self-loops / parallel edges removed during simplification.
    pub badness: Badness,
}

impl Generated {
    /// Wraps a graph produced without any cleanup.
    pub fn clean(graph: Graph) -> Self {
        Generated {
            graph,
            badness: Badness::default(),
        }
    }
}

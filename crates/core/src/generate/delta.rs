//! Incremental census bookkeeping for rewiring.
//!
//! A degree-preserving edge swap changes the JDD in exactly four entries
//! ([`Delta2K`], O(1) per move) and the wedge/triangle census only in
//! the neighborhoods of the four endpoints ([`Delta3K`],
//! O(deg(x) + deg(y)) per operation) — the difference between an
//! O(1)-amortized rewiring step and re-extracting an O(Σ deg²)
//! distribution per step. The MCMC chain's objectives
//! ([`super::objective`]) accumulate these deltas per proposed move and
//! fold them in only on acceptance.
//!
//! Degrees are read from a *frozen* degree vector captured before the
//! swap: all moves used with this module preserve every node's degree, so
//! the frozen degrees equal both the pre- and post-swap degrees, and the
//! histogram keys stay consistent even mid-swap (when an endpoint's
//! transient degree is off by one).

use crate::dist::{canon_pair, canon_triangle, canon_wedge, Degree, Dist2K, Dist3K};
use dk_graph::hashers::DetHashMap;
use dk_graph::Graph;

/// Signed change to the JDD (2K) histogram, keyed on canonical degree
/// pairs.
///
/// A double-edge swap `{a,b},{c,d} → {a,d},{c,b}` touches exactly four
/// entries — `−1` on each removed edge's degree class, `+1` on each
/// added edge's — all keyed on **frozen** endpoint degrees (the swap
/// preserves every degree, so frozen keys stay exact mid-swap). Tracking
/// a move is therefore O(1), independent of graph size and degree.
#[derive(Clone, Debug, Default)]
pub struct Delta2K {
    /// JDD count changes by canonical degree pair.
    pub counts: DetHashMap<(Degree, Degree), i64>,
}

impl Delta2K {
    /// `true` if every accumulated change cancels out (the move was
    /// JDD-preserving).
    pub fn is_zero(&self) -> bool {
        self.counts.values().all(|&v| v == 0)
    }

    /// Resets the delta for reuse.
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Adjusts the count of one canonical degree class.
    pub fn bump(&mut self, key: (Degree, Degree), dv: i64) {
        *self.counts.entry(key).or_insert(0) += dv;
    }

    /// Accumulates the JDD change of a swap removing `remove` and adding
    /// `add`, under frozen degrees `deg`.
    pub fn track_swap(&mut self, deg: &[Degree], remove: &[(u32, u32)], add: &[(u32, u32)]) {
        let kd = |u: u32| deg[u as usize];
        for &(u, v) in remove {
            self.bump(canon_pair(kd(u), kd(v)), -1);
        }
        for &(u, v) in add {
            self.bump(canon_pair(kd(u), kd(v)), 1);
        }
    }

    /// Applies the delta to a [`Dist2K`].
    ///
    /// # Panics
    /// Panics if a count would go negative — a bookkeeping bug, not a
    /// data condition.
    pub fn apply_to(&self, dist: &mut Dist2K) {
        for (&key, &dv) in &self.counts {
            if dv == 0 {
                continue;
            }
            let e = dist.counts.entry(key).or_insert(0);
            let nv = (*e as i64) + dv;
            assert!(nv >= 0, "JDD count underflow at {key:?}");
            if nv == 0 {
                dist.counts.remove(&key);
            } else {
                *e = nv as u64;
            }
        }
    }
}

/// Signed change to the wedge/triangle histograms.
#[derive(Clone, Debug, Default)]
pub struct Delta3K {
    /// Wedge count changes by canonical triple.
    pub wedges: DetHashMap<(Degree, Degree, Degree), i64>,
    /// Triangle count changes by canonical triple.
    pub triangles: DetHashMap<(Degree, Degree, Degree), i64>,
}

impl Delta3K {
    /// `true` if every accumulated change cancels out (the swap was
    /// 3K-preserving).
    pub fn is_zero(&self) -> bool {
        self.wedges.values().all(|&v| v == 0) && self.triangles.values().all(|&v| v == 0)
    }

    /// Resets the delta for reuse.
    pub fn clear(&mut self) {
        self.wedges.clear();
        self.triangles.clear();
    }

    /// Applies the delta to a [`Dist3K`] (used by targeting rewiring to
    /// keep its "current" histograms in sync after accepting a move).
    ///
    /// # Panics
    /// Panics if a count would go negative — that is a bookkeeping bug,
    /// not a data condition.
    pub fn apply_to(&self, dist: &mut Dist3K) {
        for (&key, &dv) in &self.wedges {
            if dv == 0 {
                continue;
            }
            let e = dist.wedges.entry(key).or_insert(0);
            let nv = (*e as i64) + dv;
            assert!(nv >= 0, "wedge count underflow at {key:?}");
            if nv == 0 {
                dist.wedges.remove(&key);
            } else {
                *e = nv as u64;
            }
        }
        for (&key, &dv) in &self.triangles {
            if dv == 0 {
                continue;
            }
            let e = dist.triangles.entry(key).or_insert(0);
            let nv = (*e as i64) + dv;
            assert!(nv >= 0, "triangle count underflow at {key:?}");
            if nv == 0 {
                dist.triangles.remove(&key);
            } else {
                *e = nv as u64;
            }
        }
    }

    fn bump_wedge(&mut self, key: (Degree, Degree, Degree), dv: i64) {
        *self.wedges.entry(key).or_insert(0) += dv;
    }

    fn bump_tri(&mut self, key: (Degree, Degree, Degree), dv: i64) {
        *self.triangles.entry(key).or_insert(0) += dv;
    }
}

/// Removes edge `(x, y)`, accumulating the 3K change.
///
/// # Panics
/// Panics if the edge is absent (caller bug — swaps pick existing edges).
pub fn remove_edge_tracked(g: &mut Graph, x: u32, y: u32, deg: &[Degree], delta: &mut Delta3K) {
    // Enumerate with the edge still present.
    for &z in g.neighbors(x) {
        if z == y {
            continue;
        }
        if g.has_edge(z, y) {
            // triangle {x,y,z} dies; an induced wedge centered at z is born
            delta.bump_tri(
                canon_triangle(deg[x as usize], deg[y as usize], deg[z as usize]),
                -1,
            );
            delta.bump_wedge(
                canon_wedge(deg[x as usize], deg[z as usize], deg[y as usize]),
                1,
            );
        } else {
            // wedge y−x−z (centered at x) dies
            delta.bump_wedge(
                canon_wedge(deg[y as usize], deg[x as usize], deg[z as usize]),
                -1,
            );
        }
    }
    for &z in g.neighbors(y) {
        if z == x || g.has_edge(z, x) {
            continue; // triangles handled from the x side
        }
        // wedge x−y−z (centered at y) dies
        delta.bump_wedge(
            canon_wedge(deg[x as usize], deg[y as usize], deg[z as usize]),
            -1,
        );
    }
    g.remove_edge(x, y).expect("swap removes an existing edge");
}

/// Adds edge `(x, y)`, accumulating the 3K change.
///
/// # Panics
/// Panics if the edge already exists or `x == y` (caller bug — swap
/// validity is checked before application).
pub fn add_edge_tracked(g: &mut Graph, x: u32, y: u32, deg: &[Degree], delta: &mut Delta3K) {
    // Enumerate with the edge still absent.
    for &z in g.neighbors(x) {
        if z == y {
            continue;
        }
        if g.has_edge(z, y) {
            // wedge x−z−y closes into a triangle
            delta.bump_wedge(
                canon_wedge(deg[x as usize], deg[z as usize], deg[y as usize]),
                -1,
            );
            delta.bump_tri(
                canon_triangle(deg[x as usize], deg[y as usize], deg[z as usize]),
                1,
            );
        } else {
            // new wedge y−x−z centered at x
            delta.bump_wedge(
                canon_wedge(deg[y as usize], deg[x as usize], deg[z as usize]),
                1,
            );
        }
    }
    for &z in g.neighbors(y) {
        if z == x || g.has_edge(z, x) {
            continue;
        }
        delta.bump_wedge(
            canon_wedge(deg[x as usize], deg[y as usize], deg[z as usize]),
            1,
        );
    }
    g.add_edge(x, y).expect("swap adds a checked-legal edge");
}

/// Captures the degree vector used as frozen keys during a swap.
pub fn frozen_degrees(g: &Graph) -> Vec<Degree> {
    g.degrees().iter().map(|&d| d as Degree).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Oracle: delta computed by full re-extraction.
    fn oracle_delta(before: &Dist3K, after: &Dist3K) -> Delta3K {
        let mut d = Delta3K::default();
        let keys: std::collections::BTreeSet<_> = before
            .wedges
            .keys()
            .chain(after.wedges.keys())
            .copied()
            .collect();
        for k in keys {
            let dv = after.wedges.get(&k).copied().unwrap_or(0) as i64
                - before.wedges.get(&k).copied().unwrap_or(0) as i64;
            if dv != 0 {
                d.wedges.insert(k, dv);
            }
        }
        let keys: std::collections::BTreeSet<_> = before
            .triangles
            .keys()
            .chain(after.triangles.keys())
            .copied()
            .collect();
        for k in keys {
            let dv = after.triangles.get(&k).copied().unwrap_or(0) as i64
                - before.triangles.get(&k).copied().unwrap_or(0) as i64;
            if dv != 0 {
                d.triangles.insert(k, dv);
            }
        }
        d
    }

    type SortedDelta = Vec<((u32, u32, u32), i64)>;

    fn normalize(d: &Delta3K) -> (SortedDelta, SortedDelta) {
        let mut w: Vec<_> = d
            .wedges
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(&k, &v)| (k, v))
            .collect();
        let mut t: Vec<_> = d
            .triangles
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(&k, &v)| (k, v))
            .collect();
        w.sort_unstable();
        t.sort_unstable();
        (w, t)
    }

    #[test]
    fn tracked_removal_matches_oracle_on_karate() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut g = builders::karate_club();
            let before = Dist3K::from_graph(&g);
            let deg = frozen_degrees(&g);
            let (x, y) = g.random_edge(&mut rng).unwrap();
            let mut delta = Delta3K::default();
            remove_edge_tracked(&mut g, x, y, &deg, &mut delta);
            // NOTE: removal changes deg(x), deg(y) in reality; the frozen
            // keys describe the pre-removal degrees, so compare against an
            // oracle extraction that also uses frozen degrees — i.e. undo
            // the degree shift by re-adding a *phantom* via direct count.
            // Simplest honest oracle: re-add the edge, extract, remove
            // with tracking again, then extract the post state with the
            // true degrees of a *degree-preserving* double-op (remove+add
            // elsewhere is what production does). Here instead verify the
            // round-trip property: add it back tracked, total delta = 0.
            let mut delta2 = Delta3K::default();
            add_edge_tracked(&mut g, x, y, &deg, &mut delta2);
            let after = Dist3K::from_graph(&g);
            assert_eq!(before, after);
            // deltas must cancel exactly
            for (k, v) in &delta.wedges {
                assert_eq!(delta2.wedges.get(k).copied().unwrap_or(0), -v);
            }
            for (k, v) in &delta.triangles {
                assert_eq!(delta2.triangles.get(k).copied().unwrap_or(0), -v);
            }
        }
    }

    #[test]
    fn full_swap_delta_matches_oracle() {
        // A full degree-preserving swap keeps endpoint degrees intact, so
        // frozen-degree tracked deltas must equal re-extraction deltas.
        let mut rng = StdRng::seed_from_u64(2);
        let mut done = 0;
        while done < 30 {
            let mut g = builders::karate_club();
            let before = Dist3K::from_graph(&g);
            let deg = frozen_degrees(&g);
            let e1 = g.random_edge(&mut rng).unwrap();
            let e2 = g.random_edge(&mut rng).unwrap();
            let (a, b) = e1;
            let (c, d) = if rng.gen_bool(0.5) { e2 } else { (e2.1, e2.0) };
            // swap {a,b},{c,d} → {a,d},{c,b}
            if a == d || c == b || g.has_edge(a, d) || g.has_edge(c, b) {
                continue;
            }
            let mut delta = Delta3K::default();
            remove_edge_tracked(&mut g, a, b, &deg, &mut delta);
            remove_edge_tracked(&mut g, c, d, &deg, &mut delta);
            add_edge_tracked(&mut g, a, d, &deg, &mut delta);
            add_edge_tracked(&mut g, c, b, &deg, &mut delta);
            let after = Dist3K::from_graph(&g);
            let want = oracle_delta(&before, &after);
            assert_eq!(normalize(&delta), normalize(&want));
            // and applying the delta to `before` gives `after`
            let mut patched = before.clone();
            delta.apply_to(&mut patched);
            assert_eq!(patched, after);
            done += 1;
        }
    }

    #[test]
    fn delta2k_tracks_a_swap_exactly() {
        use crate::dist::Dist2K;
        let mut rng = StdRng::seed_from_u64(3);
        let mut done = 0;
        while done < 30 {
            let mut g = builders::karate_club();
            let before = Dist2K::from_graph(&g);
            let deg = frozen_degrees(&g);
            let (a, b) = g.random_edge(&mut rng).unwrap();
            let e2 = g.random_edge(&mut rng).unwrap();
            let (c, d) = if rng.gen_bool(0.5) { e2 } else { (e2.1, e2.0) };
            if a == d || c == b || g.has_edge(a, d) || g.has_edge(c, b) {
                continue;
            }
            let mut delta = Delta2K::default();
            delta.track_swap(&deg, &[(a, b), (c, d)], &[(a, d), (c, b)]);
            g.remove_edge(a, b).unwrap();
            g.remove_edge(c, d).unwrap();
            g.add_edge(a, d).unwrap();
            g.add_edge(c, b).unwrap();
            let mut patched = before.clone();
            delta.apply_to(&mut patched);
            assert_eq!(patched, Dist2K::from_graph(&g));
            done += 1;
        }
    }

    #[test]
    fn delta2k_zero_on_class_preserving_swap() {
        // swapping two edges whose endpoints share degrees leaves the
        // JDD untouched, and the delta must cancel to zero
        let g = builders::cycle(8); // all degrees 2
        let deg = frozen_degrees(&g);
        let mut delta = Delta2K::default();
        delta.track_swap(&deg, &[(0, 1), (4, 5)], &[(0, 5), (4, 1)]);
        assert!(delta.is_zero());
        delta.clear();
        assert!(delta.counts.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn delta2k_apply_catches_underflow() {
        use crate::dist::Dist2K;
        let mut d = Delta2K::default();
        d.bump((2, 3), -1);
        let mut dist = Dist2K::default();
        d.apply_to(&mut dist);
    }

    #[test]
    fn zero_delta_detection() {
        let mut d = Delta3K::default();
        assert!(d.is_zero());
        d.bump_wedge((1, 2, 3), 1);
        assert!(!d.is_zero());
        d.bump_wedge((1, 2, 3), -1);
        assert!(d.is_zero()); // cancelled entries count as zero
        d.clear();
        assert!(d.is_zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn apply_to_catches_underflow() {
        let mut d = Delta3K::default();
        d.bump_tri((2, 2, 2), -1);
        let mut dist = Dist3K::default();
        d.apply_to(&mut dist);
    }
}

//! Census objectives driving the [`dk_mcmc`] chain.
//!
//! The engine (`dk-mcmc`) knows moves, validation, and acceptance; it
//! knows nothing about dK-distributions. These objectives supply the
//! census side of the contract: per validated proposal they report the
//! distance change `ΔD_d` to a target distribution — via the O(1)
//! [`Delta2K`] for JDD targets, or the tracked tentative-apply
//! [`Delta3K`] for wedge/triangle targets — and fold the pending delta
//! into their running histograms only when the chain commits the move.

use crate::dist::{Degree, Dist2K, Dist3K};
use crate::generate::delta::{add_edge_tracked, remove_edge_tracked, Delta2K, Delta3K};
use dk_graph::hashers::{det_hash_map, DetHashMap};
use dk_graph::Graph;
use dk_mcmc::{Evaluation, MoveProposal, SwapObjective};

/// 2K-targeting objective: minimizes
/// `D_2 = Σ (m_cur(k1,k2) − m_tgt(k1,k2))²` (the paper's §4.1.4 metric)
/// with four O(1) histogram bumps per proposal.
#[derive(Clone, Debug)]
pub struct Objective2K {
    cur: DetHashMap<(Degree, Degree), i64>,
    tgt: DetHashMap<(Degree, Degree), i64>,
    d_cur: f64,
    pending: Delta2K,
    pending_dd: f64,
}

impl Objective2K {
    /// Extracts the current JDD of `g` once; every subsequent update is
    /// incremental.
    pub fn new(g: &Graph, target: &Dist2K) -> Self {
        let mut cur: DetHashMap<(Degree, Degree), i64> = det_hash_map();
        for (&k, &v) in &Dist2K::from_graph(g).counts {
            cur.insert(k, v as i64);
        }
        let tgt: DetHashMap<(Degree, Degree), i64> =
            target.counts.iter().map(|(&k, &v)| (k, v as i64)).collect();
        let mut d_cur = 0.0;
        for (k, &a) in &cur {
            let b = tgt.get(k).copied().unwrap_or(0);
            d_cur += ((a - b) as f64).powi(2);
        }
        for (k, &b) in &tgt {
            if !cur.contains_key(k) {
                d_cur += (b as f64).powi(2);
            }
        }
        Objective2K {
            cur,
            tgt,
            d_cur,
            pending: Delta2K::default(),
            pending_dd: 0.0,
        }
    }

    /// The incrementally maintained `D_2`.
    pub fn current_distance(&self) -> f64 {
        self.d_cur
    }

    /// The incrementally maintained JDD (for equivalence harnesses).
    pub fn current_jdd(&self) -> Dist2K {
        let mut out = Dist2K::default();
        for (&k, &v) in &self.cur {
            if v > 0 {
                out.counts.insert(k, v as u64);
            }
        }
        out
    }
}

impl SwapObjective for Objective2K {
    fn evaluate(&mut self, _g: &mut Graph, deg: &[u32], p: &MoveProposal) -> Evaluation {
        self.pending.clear();
        self.pending.track_swap(deg, &p.remove, &p.add);
        let mut dd = 0.0;
        for (key, &dv) in &self.pending.counts {
            if dv == 0 {
                continue;
            }
            let c0 = self.cur.get(key).copied().unwrap_or(0);
            let t0 = self.tgt.get(key).copied().unwrap_or(0);
            let before = (c0 - t0) as f64;
            let after = (c0 + dv - t0) as f64;
            dd += after * after - before * before;
        }
        self.pending_dd = dd;
        Evaluation {
            delta_d: dd,
            applied: false,
        }
    }

    fn commit(&mut self) {
        for (key, &dv) in &self.pending.counts {
            if dv != 0 {
                *self.cur.entry(*key).or_insert(0) += dv;
            }
        }
        self.d_cur += self.pending_dd;
    }

    fn discard(&mut self) {}

    fn distance(&self) -> Option<f64> {
        Some(self.d_cur)
    }
}

/// 3K-targeting objective: minimizes `D_3` (wedge + triangle squared
/// differences). `ΔD_3` can only be measured on the mutated
/// neighborhoods, so evaluation applies the move tentatively with
/// tracking ([`Evaluation::applied`]); the chain reverts on rejection.
#[derive(Clone, Debug)]
pub struct Objective3K {
    cur: Dist3K,
    tgt: Dist3K,
    d_cur: f64,
    pending: Delta3K,
    pending_dd: f64,
}

impl Objective3K {
    /// Extracts the current 3K census of `g` once; every subsequent
    /// update is incremental.
    pub fn new(g: &Graph, target: &Dist3K) -> Self {
        let cur = Dist3K::from_graph(g);
        let d_cur = cur.distance_sq(target);
        Objective3K {
            cur,
            tgt: target.clone(),
            d_cur,
            pending: Delta3K::default(),
            pending_dd: 0.0,
        }
    }

    /// The incrementally maintained `D_3`.
    pub fn current_distance(&self) -> f64 {
        self.d_cur
    }

    /// The incrementally maintained 3K census (for equivalence
    /// harnesses).
    pub fn current_census(&self) -> &Dist3K {
        &self.cur
    }
}

impl SwapObjective for Objective3K {
    fn evaluate(&mut self, g: &mut Graph, deg: &[u32], p: &MoveProposal) -> Evaluation {
        self.pending.clear();
        let [(a, b), (c, d)] = p.remove;
        let [(x, y), (z, w)] = p.add;
        remove_edge_tracked(g, a, b, deg, &mut self.pending);
        remove_edge_tracked(g, c, d, deg, &mut self.pending);
        add_edge_tracked(g, x, y, deg, &mut self.pending);
        add_edge_tracked(g, z, w, deg, &mut self.pending);
        let mut dd = 0.0;
        for (key, &dv) in &self.pending.wedges {
            if dv == 0 {
                continue;
            }
            let c0 = self.cur.wedges.get(key).copied().unwrap_or(0) as i64;
            let t0 = self.tgt.wedges.get(key).copied().unwrap_or(0) as i64;
            let before = (c0 - t0) as f64;
            let after = (c0 + dv - t0) as f64;
            dd += after * after - before * before;
        }
        for (key, &dv) in &self.pending.triangles {
            if dv == 0 {
                continue;
            }
            let c0 = self.cur.triangles.get(key).copied().unwrap_or(0) as i64;
            let t0 = self.tgt.triangles.get(key).copied().unwrap_or(0) as i64;
            let before = (c0 - t0) as f64;
            let after = (c0 + dv - t0) as f64;
            dd += after * after - before * before;
        }
        self.pending_dd = dd;
        Evaluation {
            delta_d: dd,
            applied: true,
        }
    }

    fn commit(&mut self) {
        self.pending.apply_to(&mut self.cur);
        self.d_cur += self.pending_dd;
    }

    fn discard(&mut self) {}

    fn distance(&self) -> Option<f64> {
        Some(self.d_cur)
    }
}

/// 3K-*preserving* objective for `d = 3` randomizing runs: evaluates the
/// tracked delta of each (already 2K-preserving) proposal and reports
/// `ΔD = 0` when the wedge/triangle histograms are untouched, `+∞`
/// otherwise — so a zero-temperature chain accepts exactly the
/// 3K-preserving moves and reverts the rest.
#[derive(Clone, Debug, Default)]
pub struct Preserve3K {
    pending: Delta3K,
}

impl SwapObjective for Preserve3K {
    fn evaluate(&mut self, g: &mut Graph, deg: &[u32], p: &MoveProposal) -> Evaluation {
        self.pending.clear();
        let [(a, b), (c, d)] = p.remove;
        let [(x, y), (z, w)] = p.add;
        remove_edge_tracked(g, a, b, deg, &mut self.pending);
        remove_edge_tracked(g, c, d, deg, &mut self.pending);
        add_edge_tracked(g, x, y, deg, &mut self.pending);
        add_edge_tracked(g, z, w, deg, &mut self.pending);
        Evaluation {
            delta_d: if self.pending.is_zero() {
                0.0
            } else {
                f64::INFINITY
            },
            applied: true,
        }
    }

    fn commit(&mut self) {}

    fn discard(&mut self) {}

    fn distance(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::delta::frozen_degrees;
    use dk_graph::builders;
    use dk_mcmc::{ChainOptions, McmcChain, ProposalKind, RunBudget};

    #[test]
    fn objective2k_distance_matches_full_extraction() {
        let g = builders::karate_club();
        let target = Dist2K::from_graph(&builders::petersen());
        let obj = Objective2K::new(&g, &target);
        assert_eq!(
            obj.current_distance(),
            Dist2K::from_graph(&g).distance_sq(&target)
        );
        assert_eq!(obj.current_jdd(), Dist2K::from_graph(&g));
    }

    #[test]
    fn objective2k_tracks_chain_moves() {
        let g0 = builders::karate_club();
        let target = Dist2K::from_graph(&g0);
        // start from a degree-preserving scramble so D2 > 0
        let mut chain = McmcChain::seeded(g0, 9, ChainOptions::default());
        chain.run(&mut dk_mcmc::NullObjective, &RunBudget::steps(5000));
        let scrambled = chain.into_graph();

        let mut obj = Objective2K::new(&scrambled, &target);
        let mut chain = McmcChain::seeded(scrambled, 10, ChainOptions::default());
        chain.run(&mut obj, &RunBudget::steps(20_000));
        let g = chain.into_graph();
        assert_eq!(obj.current_jdd(), Dist2K::from_graph(&g));
        let exact = Dist2K::from_graph(&g).distance_sq(&target);
        assert!(
            (obj.current_distance() - exact).abs() < 1e-6,
            "incremental D2 drifted: {} vs {exact}",
            obj.current_distance()
        );
    }

    #[test]
    fn objective3k_tracks_chain_moves() {
        let g0 = builders::karate_club();
        let target = Dist3K::from_graph(&builders::petersen());
        let mut obj = Objective3K::new(&g0, &target);
        let opts = ChainOptions {
            proposal: ProposalKind::JddPreserving,
            ..Default::default()
        };
        let mut chain = McmcChain::seeded(g0, 11, opts);
        let run = chain.run(&mut obj, &RunBudget::steps(5000));
        assert!(run.accepted > 0);
        let g = chain.into_graph();
        assert_eq!(obj.current_census(), &Dist3K::from_graph(&g));
        let exact = Dist3K::from_graph(&g).distance_sq(&target);
        assert!(
            (obj.current_distance() - exact).abs() < 1e-6,
            "incremental D3 drifted: {} vs {exact}",
            obj.current_distance()
        );
    }

    #[test]
    fn preserve3k_keeps_census_byte_identical() {
        let g0 = builders::karate_club();
        let before = Dist3K::from_graph(&g0);
        let opts = ChainOptions {
            proposal: ProposalKind::JddPreserving,
            ..Default::default()
        };
        let mut chain = McmcChain::seeded(g0, 12, opts);
        let run = chain.run(&mut Preserve3K::default(), &RunBudget::steps(4000));
        assert!(run.accepted > 0, "no accepted 3K-preserving moves");
        assert!(run.rejected_metropolis > 0, "every move preserved 3K?");
        let g = chain.into_graph();
        assert_eq!(Dist3K::from_graph(&g), before);
    }

    #[test]
    fn frozen_degrees_match_chain_assumption() {
        let g = builders::karate_club();
        let deg = frozen_degrees(&g);
        assert_eq!(deg.len(), g.node_count());
    }
}

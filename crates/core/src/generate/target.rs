//! dK-targeting d'K-preserving rewiring — "Metropolis dynamics"
//! (paper §4.1.4).
//!
//! Starting from any d'K-graph, rewire with d'K-preserving moves and
//! accept each move based on the change `ΔD_d` of the squared distance to
//! a *target* dK-distribution:
//!
//! * `ΔD < 0` — accept (closer to the target);
//! * `ΔD > 0` — accept with probability `e^(−ΔD/T)`; the temperature `T`
//!   interpolates between strict targeting (`T → 0`) and plain
//!   d'K-randomizing (`T → ∞`), the paper's simulated-annealing ergodicity
//!   device;
//! * `ΔD = 0` — accepted by default (plateau moves aid mixing; disable
//!   with [`TargetOptions::accept_neutral`] for the paper-literal strict
//!   descent).
//!
//! Three instances are provided, matching the paper's §5.1 pipeline:
//! 1K ← 0K moves, 2K ← 1K moves, 3K ← 2K moves; plus the bootstrap
//! helpers [`generate_2k_random`] / [`generate_3k_random`] ("construct
//! 1K-random graphs with the pseudograph algorithm, then apply
//! 2K-targeting 1K-preserving rewiring…, then 3K-targeting 2K-preserving
//! rewiring").

use crate::dist::{Dist1K, Dist2K, Dist3K};
use crate::generate::objective::{Objective2K, Objective3K};
use crate::generate::{matching, pseudograph};
use dk_graph::hashers::{det_hash_map, DetHashMap};
use dk_graph::{Graph, GraphError};
use dk_mcmc::{ChainOptions, McmcChain, ProposalKind, RunBudget, SwapObjective};
use rand::Rng;

/// Options for targeting rewiring.
#[derive(Clone, Copy, Debug)]
pub struct TargetOptions {
    /// Maximum attempted moves.
    pub max_attempts: u64,
    /// Metropolis temperature; `0.0` = strict descent (paper default).
    pub temperature: f64,
    /// Accept moves with `ΔD = 0` (plateau walks). Default `true`.
    pub accept_neutral: bool,
    /// Stop as soon as `D = 0` (exact target reached). Default `true`.
    pub stop_at_zero: bool,
    /// Give up after this many attempts without an accepted improving
    /// move (`None` = never).
    pub patience: Option<u64>,
}

impl Default for TargetOptions {
    fn default() -> Self {
        TargetOptions {
            max_attempts: 2_000_000,
            temperature: 0.0,
            accept_neutral: true,
            stop_at_zero: true,
            patience: Some(200_000),
        }
    }
}

/// Outcome of a targeting run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetStats {
    /// Moves attempted.
    pub attempts: u64,
    /// Moves accepted.
    pub accepted: u64,
    /// `D_d` before the run.
    pub initial_distance: f64,
    /// `D_d` after the run (0.0 = target reached exactly).
    pub final_distance: f64,
}

/// Metropolis acceptance on a distance change.
fn accept<R: Rng + ?Sized>(delta: f64, opts: &TargetOptions, rng: &mut R) -> bool {
    if delta < 0.0 {
        true
    } else if delta == 0.0 {
        opts.accept_neutral
    } else if opts.temperature > 0.0 {
        rng.gen_bool((-delta / opts.temperature).exp().clamp(0.0, 1.0))
    } else {
        false
    }
}

// ---------------------------------------------------------------------
// 1K-targeting 0K-preserving rewiring
// ---------------------------------------------------------------------

/// Rewires `g` with 0K-preserving moves toward a target degree
/// distribution, minimizing `D_1 = Σ_k (n_cur(k) − n_tgt(k))²`.
pub fn target_1k_from_0k<R: Rng + ?Sized>(
    g: &mut Graph,
    target: &Dist1K,
    opts: &TargetOptions,
    rng: &mut R,
) -> TargetStats {
    // current degree histogram, padded
    let kmax_t = target.counts.len();
    let mut cur: Vec<i64> = dk_graph::degree::degree_histogram(g)
        .into_iter()
        .map(|c| c as i64)
        .collect();
    let tgt: Vec<i64> = target.counts.iter().map(|&c| c as i64).collect();
    let pad = cur.len().max(tgt.len()).max(kmax_t) + 2;
    cur.resize(pad, 0);
    let mut tgt_padded = tgt;
    tgt_padded.resize(pad, 0);
    let dist = |cur: &[i64]| -> f64 {
        cur.iter()
            .zip(&tgt_padded)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum()
    };
    let mut d_cur = dist(&cur);
    let mut stats = TargetStats {
        attempts: 0,
        accepted: 0,
        initial_distance: d_cur,
        final_distance: d_cur,
    };
    let n = g.node_count() as u32;
    if n < 2 || g.edge_count() == 0 {
        return stats;
    }
    let mut since_improve = 0u64;
    for _ in 0..opts.max_attempts {
        if opts.stop_at_zero && d_cur == 0.0 {
            break;
        }
        if let Some(p) = opts.patience {
            if since_improve >= p {
                break;
            }
        }
        stats.attempts += 1;
        since_improve += 1;
        // 0K move: move edge (u,v) to empty slot (x,y)
        let Ok((u, v)) = g.random_edge(rng) else {
            break;
        };
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y || g.has_edge(x, y) {
            continue;
        }
        // degree changes: u,v lose one; x,y gain one — compute ΔD1.
        // (u,v,x,y may overlap; fold increments.)
        let mut bump: DetHashMap<u32, i64> = det_hash_map();
        *bump.entry(u).or_insert(0) -= 1;
        *bump.entry(v).or_insert(0) -= 1;
        *bump.entry(x).or_insert(0) += 1;
        *bump.entry(y).or_insert(0) += 1;
        // histogram deltas: node w moving from degree k to k+δ shifts
        // hist[k] -= 1, hist[k+δ] += 1
        let mut hist_delta: DetHashMap<usize, i64> = det_hash_map();
        let mut ok = true;
        for (&w, &dv) in &bump {
            if dv == 0 {
                continue;
            }
            let k = g.degree(w) as i64;
            let k2 = k + dv;
            if k2 < 0 || (k2 as usize) >= pad {
                ok = false;
                break;
            }
            *hist_delta.entry(k as usize).or_insert(0) -= 1;
            *hist_delta.entry(k2 as usize).or_insert(0) += 1;
        }
        if !ok {
            continue;
        }
        let mut dd = 0.0;
        for (&k, &dv) in &hist_delta {
            if dv == 0 {
                continue;
            }
            let before = (cur[k] - tgt_padded[k]) as f64;
            let after = (cur[k] + dv - tgt_padded[k]) as f64;
            dd += after * after - before * before;
        }
        if !accept(dd, opts, rng) {
            continue;
        }
        g.remove_edge(u, v).expect("sampled edge");
        g.add_edge(x, y).expect("checked slot");
        for (&k, &dv) in &hist_delta {
            cur[k] += dv;
        }
        d_cur += dd;
        stats.accepted += 1;
        if dd < 0.0 {
            since_improve = 0;
        }
    }
    stats.final_distance = Dist1K::from_graph(g).distance_sq(target);
    debug_assert!((stats.final_distance - d_cur).abs() < 1e-6);
    stats
}

// ---------------------------------------------------------------------
// 2K-targeting 1K-preserving rewiring
// ---------------------------------------------------------------------

/// Maps [`TargetOptions`] onto the chain's acceptance knobs and budget.
fn chain_config(opts: &TargetOptions, proposal: ProposalKind) -> (ChainOptions, RunBudget) {
    (
        ChainOptions {
            temperature: opts.temperature,
            accept_neutral: opts.accept_neutral,
            proposal,
        },
        RunBudget {
            max_steps: opts.max_attempts,
            patience: opts.patience,
            stop_at_zero: opts.stop_at_zero,
        },
    )
}

/// Runs one targeting pass on the [`dk_mcmc`] chain: take ownership of
/// the graph, drive the objective to budget exhaustion (or target), put
/// the graph back, and report [`TargetStats`].
fn run_targeting_chain<R: Rng + ?Sized, O: SwapObjective>(
    g: &mut Graph,
    obj: &mut O,
    opts: &TargetOptions,
    proposal: ProposalKind,
    rng: &mut R,
) -> TargetStats {
    let initial = obj.distance().unwrap_or(0.0);
    let mut stats = TargetStats {
        attempts: 0,
        accepted: 0,
        initial_distance: initial,
        final_distance: initial,
    };
    if g.edge_count() < 2 {
        return stats;
    }
    let (chain_opts, budget) = chain_config(opts, proposal);
    let mut chain = McmcChain::from_rng(std::mem::take(g), rng, chain_opts);
    let run = chain.run(obj, &budget);
    *g = chain.into_graph();
    stats.attempts = run.attempts;
    stats.accepted = run.accepted;
    stats.final_distance = obj.distance().unwrap_or(0.0);
    stats
}

/// Rewires `g` with 1K-preserving swaps toward a target JDD, minimizing
/// `D_2 = Σ (m_cur(k1,k2) − m_tgt(k1,k2))²` (the paper's §4.1.4 metric).
///
/// Runs on the [`dk_mcmc`] chain with the O(1)-per-move [`Objective2K`]
/// census delta — four frozen-degree histogram bumps per proposal, no
/// re-extraction.
pub fn target_2k_from_1k<R: Rng + ?Sized>(
    g: &mut Graph,
    target: &Dist2K,
    opts: &TargetOptions,
    rng: &mut R,
) -> TargetStats {
    let mut obj = Objective2K::new(g, target);
    let mut stats = run_targeting_chain(g, &mut obj, opts, ProposalKind::Plain, rng);
    stats.final_distance = Dist2K::from_graph(g).distance_sq(target);
    debug_assert!(
        (stats.final_distance - obj.current_distance()).abs() < 1e-6,
        "incremental D2 drifted: {} vs {}",
        obj.current_distance(),
        stats.final_distance
    );
    stats
}

// ---------------------------------------------------------------------
// 3K-targeting 2K-preserving rewiring
// ---------------------------------------------------------------------

/// Rewires `g` with 2K-preserving swaps toward a target 3K-distribution,
/// minimizing `D_3` (wedge + triangle squared differences).
///
/// Runs on the [`dk_mcmc`] chain with [`ProposalKind::JddPreserving`]
/// proposals and the tracked tentative-apply [`Objective3K`] delta.
pub fn target_3k_from_2k<R: Rng + ?Sized>(
    g: &mut Graph,
    target: &Dist3K,
    opts: &TargetOptions,
    rng: &mut R,
) -> TargetStats {
    let mut obj = Objective3K::new(g, target);
    let mut stats = run_targeting_chain(g, &mut obj, opts, ProposalKind::JddPreserving, rng);
    stats.final_distance = Dist3K::from_graph(g).distance_sq(target);
    debug_assert!(
        (stats.final_distance - obj.current_distance()).abs() < 1e-6,
        "incremental D3 drifted: {} vs {}",
        obj.current_distance(),
        stats.final_distance
    );
    stats
}

/// Dispatch wrapper: `(d', d)` ∈ {(0,1), (1,2), (2,3)} targeting, taking
/// the target as the appropriate extracted distribution of `reference`.
///
/// Convenience for harness code that iterates over `d`.
pub fn target_rewire<R: Rng + ?Sized>(
    g: &mut Graph,
    reference: &Graph,
    d: u8,
    opts: &TargetOptions,
    rng: &mut R,
) -> TargetStats {
    match d {
        1 => target_1k_from_0k(g, &Dist1K::from_graph(reference), opts, rng),
        2 => target_2k_from_1k(g, &Dist2K::from_graph(reference), opts, rng),
        3 => target_3k_from_2k(g, &Dist3K::from_graph(reference), opts, rng),
        _ => panic!("target_rewire supports d ∈ {{1, 2, 3}}"),
    }
}

// ---------------------------------------------------------------------
// §5.1 bootstrap pipelines
// ---------------------------------------------------------------------

/// Which construction seeds the targeting chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Bootstrap {
    /// 1K matching (exact degrees, so `D_2 = 0` is reachable). Default.
    #[default]
    Matching,
    /// 1K pseudograph + cleanup (the paper's §5.1 literal choice; cleanup
    /// may perturb degrees slightly, bounding achievable `D_2`).
    Pseudograph,
}

/// Builds a 2K-random graph from a target JDD alone:
/// 1K bootstrap → 2K-targeting 1K-preserving rewiring (paper §5.1).
pub fn generate_2k_random<R: Rng + ?Sized>(
    target: &Dist2K,
    bootstrap: Bootstrap,
    opts: &TargetOptions,
    rng: &mut R,
) -> Result<(Graph, TargetStats), GraphError> {
    let d1 = target.to_1k()?;
    let mut g = match bootstrap {
        Bootstrap::Matching => matching::generate_1k(&d1, rng)?.graph,
        Bootstrap::Pseudograph => pseudograph::generate_1k(&d1, rng)?.graph,
    };
    let stats = target_2k_from_1k(&mut g, target, opts, rng);
    Ok((g, stats))
}

/// Builds a 3K-random graph from a target 3K-distribution alone:
/// 1K bootstrap → 2K-targeting → 3K-targeting (paper §5.1 chain).
pub fn generate_3k_random<R: Rng + ?Sized>(
    target: &Dist3K,
    bootstrap: Bootstrap,
    opts: &TargetOptions,
    rng: &mut R,
) -> Result<(Graph, TargetStats), GraphError> {
    let d2 = target.to_2k_checked()?;
    let (mut g, _) = generate_2k_random(&d2, bootstrap, opts, rng)?;
    let stats = target_3k_from_2k(&mut g, target, opts, rng);
    Ok((g, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_opts() -> TargetOptions {
        TargetOptions {
            max_attempts: 400_000,
            patience: Some(60_000),
            ..Default::default()
        }
    }

    #[test]
    fn targeting_2k_reaches_zero_from_matching_bootstrap() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(1);
        let (g, stats) =
            generate_2k_random(&target, Bootstrap::Matching, &quick_opts(), &mut rng).unwrap();
        assert_eq!(stats.final_distance, 0.0, "stats: {stats:?}");
        assert_eq!(Dist2K::from_graph(&g), target);
        g.check_invariants().unwrap();
    }

    #[test]
    fn targeting_monotone_distance() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let d1 = target.to_1k().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = matching::generate_1k(&d1, &mut rng).unwrap().graph;
        let stats = target_2k_from_1k(&mut g, &target, &quick_opts(), &mut rng);
        assert!(stats.final_distance <= stats.initial_distance);
    }

    #[test]
    fn targeting_3k_reduces_d3_substantially() {
        let original = builders::karate_club();
        let target3 = Dist3K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(3);
        let (g, stats) =
            generate_3k_random(&target3, Bootstrap::Matching, &quick_opts(), &mut rng).unwrap();
        assert!(
            stats.final_distance < stats.initial_distance * 0.25,
            "D3 {} → {}",
            stats.initial_distance,
            stats.final_distance
        );
        // 2K stays exact through the 3K stage (moves are 2K-preserving)
        assert_eq!(Dist2K::from_graph(&g), Dist2K::from_graph(&original));
    }

    #[test]
    fn targeting_1k_from_0k() {
        // start: ER-ish graph with same n, m as karate; target karate P(k)
        let original = builders::karate_club();
        let target = Dist1K::from_graph(&original);
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = crate::generate::stochastic::generate_0k(
            &crate::dist::Dist0K::from_graph(&original),
            &mut rng,
        )
        .graph;
        let stats = target_1k_from_0k(&mut g, &target, &quick_opts(), &mut rng);
        assert!(
            stats.final_distance < stats.initial_distance / 4.0,
            "D1 {} → {}",
            stats.initial_distance,
            stats.final_distance
        );
    }

    #[test]
    fn temperature_infinity_behaves_like_randomizing() {
        // With huge T every candidate is accepted: distance can grow.
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let mut g = original.clone();
        let mut rng = StdRng::seed_from_u64(5);
        let opts = TargetOptions {
            max_attempts: 3000,
            temperature: 1e12,
            stop_at_zero: false,
            patience: None,
            ..Default::default()
        };
        let stats = target_2k_from_1k(&mut g, &target, &opts, &mut rng);
        // Every *valid* candidate is accepted at huge T; validity itself
        // fails for many random pairs, so compare against a cold run.
        let mut g_cold = original.clone();
        let mut rng2 = StdRng::seed_from_u64(5);
        let cold = target_2k_from_1k(
            &mut g_cold,
            &target,
            &TargetOptions {
                max_attempts: 3000,
                temperature: 0.0,
                accept_neutral: false,
                stop_at_zero: false,
                patience: None,
            },
            &mut rng2,
        );
        assert!(
            stats.accepted > 10 * cold.accepted.max(1),
            "hot run ({}) must accept far more than cold ({})",
            stats.accepted,
            cold.accepted
        );
        assert!(stats.final_distance > 0.0, "JDD should drift at T = ∞");
    }

    #[test]
    fn strict_descent_never_increases() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        let d1 = target.to_1k().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = matching::generate_1k(&d1, &mut rng).unwrap().graph;
        let opts = TargetOptions {
            accept_neutral: false,
            max_attempts: 50_000,
            patience: Some(20_000),
            ..Default::default()
        };
        let d_before = Dist2K::from_graph(&g).distance_sq(&target);
        let stats = target_2k_from_1k(&mut g, &target, &opts, &mut rng);
        assert!(stats.final_distance <= d_before);
    }

    #[test]
    fn dispatch_wrapper() {
        let original = builders::karate_club();
        let mut g = original.clone();
        let mut rng = StdRng::seed_from_u64(7);
        // already at the target: distance 0, zero accepted improving moves
        let stats = target_rewire(&mut g, &original, 2, &quick_opts(), &mut rng);
        assert_eq!(stats.initial_distance, 0.0);
        assert_eq!(stats.final_distance, 0.0);
    }

    #[test]
    #[should_panic(expected = "supports d")]
    fn dispatch_rejects_bad_d() {
        let g0 = builders::path(3);
        let mut g = g0.clone();
        let mut rng = StdRng::seed_from_u64(8);
        target_rewire(&mut g, &g0, 0, &TargetOptions::default(), &mut rng);
    }
}

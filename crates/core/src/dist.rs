//! The dK-distributions for `d = 0..=3` (paper §3).
//!
//! A dK-distribution records degree correlations within connected
//! subgraphs of `d` nodes:
//!
//! * [`Dist0K`] — average degree `k̄` (equivalently `(n, m)`);
//! * [`Dist1K`] — degree distribution `n(k)`;
//! * [`Dist2K`] — joint degree distribution `m(k1, k2)`;
//! * [`Dist3K`] — wedge (`P∧`) and triangle (`P△`) histograms over
//!   **induced** node triples (see the crate docs for the convention).
//!
//! Each type supports extraction ([`DkDistribution::from_graph`]), the
//! Table 1 derivation maps (`to_1k`, `to_2k`, `to_0k`), the squared
//! distance `D_d` of §4.1.4 (`distance_sq`), Orbis-style text I/O
//! ([`crate::io`]), and §6 rescaling ([`crate::rescale`]).
//!
//! ## One family, one interface
//!
//! The [`DkDistribution`] trait unifies the four concrete types behind
//! one interface, and [`AnyDist`] type-erases them so callers can hold
//! "a dK-distribution of runtime-chosen `d`" — the input type of the
//! [`crate::generate::Generator`] facade:
//!
//! ```
//! use dk_core::dist::AnyDist;
//! use dk_graph::builders;
//!
//! let g = builders::karate_club();
//! let dist = AnyDist::from_graph(2, &g).unwrap();
//! assert_eq!(dist.order(), 2);
//! ```

use dk_graph::hashers::{det_hash_map, DetHashMap};
use dk_graph::{degree, Graph, GraphError};
use std::io::{Read, Write};

/// Node degree, as used in distribution keys.
pub type Degree = u32;

/// Canonical (sorted) form of an unordered degree pair.
#[inline]
pub fn canon_pair(a: Degree, b: Degree) -> (Degree, Degree) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Canonical form of a wedge `a — center — b`: ends sorted, center kept
/// in the middle position.
#[inline]
pub fn canon_wedge(a: Degree, center: Degree, b: Degree) -> (Degree, Degree, Degree) {
    if a <= b {
        (a, center, b)
    } else {
        (b, center, a)
    }
}

/// Canonical (sorted) form of a triangle's degree triple.
#[inline]
pub fn canon_triangle(a: Degree, b: Degree, c: Degree) -> (Degree, Degree, Degree) {
    let mut t = [a, b, c];
    t.sort_unstable();
    (t[0], t[1], t[2])
}

// ---------------------------------------------------------------------
// The unified interface
// ---------------------------------------------------------------------

/// Common interface of all four dK-distribution types.
///
/// Inherent methods of the concrete types stay available unchanged; this
/// trait is the generic surface the [`crate::generate::Generator`] facade
/// and [`AnyDist`] build on.
pub trait DkDistribution: Sized + Clone + PartialEq + std::fmt::Debug {
    /// The order `d` of this distribution type.
    const ORDER: u8;

    /// The order `d` (as a method, for symmetry with [`AnyDist::order`]).
    fn order(&self) -> u8 {
        Self::ORDER
    }

    /// Extracts the distribution from a graph.
    fn from_graph(g: &Graph) -> Self;

    /// Squared distance `D_d` to another distribution of the same order
    /// (sum of squared count differences, §4.1.4).
    fn distance_sq(&self, other: &Self) -> f64;

    /// Reads the Orbis-style text form (see [`crate::io`]).
    fn read<R: Read>(r: R) -> Result<Self, GraphError>;

    /// Writes the Orbis-style text form.
    fn write<W: Write>(&self, w: W) -> Result<(), GraphError>;

    /// Rescales toward a target node count (§6). Errors when the type has
    /// no rescaling strategy (3K) or the input is degenerate.
    fn rescale(&self, new_nodes: usize) -> Result<Self, GraphError>;
}

// ---------------------------------------------------------------------
// 0K
// ---------------------------------------------------------------------

/// The 0K-distribution: node and edge totals (equivalently `k̄`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Dist0K {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of edges `m`.
    pub edges: usize,
}

impl Dist0K {
    /// Extracts `(n, m)` from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        Dist0K {
            nodes: g.node_count(),
            edges: g.edge_count(),
        }
    }

    /// Average degree `k̄ = 2m/n` (0 for the empty graph).
    pub fn k_avg(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            2.0 * self.edges as f64 / self.nodes as f64
        }
    }

    /// Edge probability of the matching `G(n, p)`: `m / C(n, 2)`
    /// (so the expected edge count of the 0K construction equals `m`).
    pub fn edge_probability(&self) -> f64 {
        let pairs = self.nodes as f64 * (self.nodes as f64 - 1.0) / 2.0;
        if pairs <= 0.0 {
            0.0
        } else {
            self.edges as f64 / pairs
        }
    }

    /// Squared distance `D_0`: squared differences of node and edge
    /// totals.
    pub fn distance_sq(&self, other: &Dist0K) -> f64 {
        let dn = self.nodes as f64 - other.nodes as f64;
        let dm = self.edges as f64 - other.edges as f64;
        dn * dn + dm * dm
    }
}

impl DkDistribution for Dist0K {
    const ORDER: u8 = 0;

    fn from_graph(g: &Graph) -> Self {
        Dist0K::from_graph(g)
    }

    fn distance_sq(&self, other: &Self) -> f64 {
        Dist0K::distance_sq(self, other)
    }

    fn read<R: Read>(r: R) -> Result<Self, GraphError> {
        crate::io::read_0k(r)
    }

    fn write<W: Write>(&self, w: W) -> Result<(), GraphError> {
        crate::io::write_0k(self, w)
    }

    fn rescale(&self, new_nodes: usize) -> Result<Self, GraphError> {
        Ok(crate::rescale::rescale_0k(self, new_nodes))
    }
}

// ---------------------------------------------------------------------
// 1K
// ---------------------------------------------------------------------

/// The 1K-distribution: degree histogram `counts[k] = n(k)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dist1K {
    /// `counts[k]` is the number of nodes of degree `k`.
    pub counts: Vec<usize>,
}

impl Dist1K {
    /// Extracts the degree histogram from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        Dist1K {
            counts: degree::degree_histogram(g),
        }
    }

    /// Builds from an explicit degree sequence.
    pub fn from_degree_sequence(seq: &[usize]) -> Self {
        let kmax = seq.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0usize; kmax + 1];
        for &k in seq {
            counts[k] += 1;
        }
        Dist1K { counts }
    }

    /// Total number of nodes `n = Σ_k n(k)`.
    pub fn nodes(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Total degree `Σ_k k·n(k)`.
    pub fn degree_sum(&self) -> usize {
        self.counts.iter().enumerate().map(|(k, &c)| k * c).sum()
    }

    /// Edge count `m = Σ k·n(k) / 2`.
    ///
    /// # Errors
    /// [`GraphError::NotGraphical`] if the degree sum is odd (handshake
    /// lemma — not realizable even as a multigraph).
    pub fn edges(&self) -> Result<usize, GraphError> {
        let sum = self.degree_sum();
        if !sum.is_multiple_of(2) {
            return Err(GraphError::NotGraphical(format!("degree sum {sum} is odd")));
        }
        Ok(sum / 2)
    }

    /// Erdős–Gallai test: realizable as a **simple** graph?
    pub fn is_graphical(&self) -> bool {
        degree::is_graphical(&self.to_degree_sequence())
    }

    /// Expands the histogram back into an explicit sequence (ascending).
    pub fn to_degree_sequence(&self) -> Vec<usize> {
        let mut seq = Vec::with_capacity(self.nodes());
        for (k, &c) in self.counts.iter().enumerate() {
            seq.extend(std::iter::repeat_n(k, c));
        }
        seq
    }

    /// Fraction of nodes with degree `k`.
    pub fn pk(&self, k: usize) -> f64 {
        let n = self.nodes();
        if n == 0 {
            0.0
        } else {
            self.counts.get(k).copied().unwrap_or(0) as f64 / n as f64
        }
    }

    /// Table 1 inclusion: forgets everything but `(n, m)`.
    ///
    /// An odd degree sum rounds `m` down (only reachable on distributions
    /// that no construction would accept anyway).
    pub fn to_0k(&self) -> Dist0K {
        Dist0K {
            nodes: self.nodes(),
            edges: self.degree_sum() / 2,
        }
    }

    /// Squared distance `D_1 = Σ_k (n_a(k) − n_b(k))²`.
    pub fn distance_sq(&self, other: &Dist1K) -> f64 {
        let len = self.counts.len().max(other.counts.len());
        let mut acc = 0.0;
        for k in 0..len {
            let a = self.counts.get(k).copied().unwrap_or(0) as f64;
            let b = other.counts.get(k).copied().unwrap_or(0) as f64;
            acc += (a - b) * (a - b);
        }
        acc
    }
}

impl DkDistribution for Dist1K {
    const ORDER: u8 = 1;

    fn from_graph(g: &Graph) -> Self {
        Dist1K::from_graph(g)
    }

    fn distance_sq(&self, other: &Self) -> f64 {
        Dist1K::distance_sq(self, other)
    }

    fn read<R: Read>(r: R) -> Result<Self, GraphError> {
        crate::io::read_1k(r)
    }

    fn write<W: Write>(&self, w: W) -> Result<(), GraphError> {
        crate::io::write_1k(self, w)
    }

    fn rescale(&self, new_nodes: usize) -> Result<Self, GraphError> {
        crate::rescale::rescale_1k(self, new_nodes)
    }
}

// ---------------------------------------------------------------------
// 2K
// ---------------------------------------------------------------------

/// The 2K-distribution (joint degree distribution): `m(k1, k2)` edges
/// between degree-`k1` and degree-`k2` nodes, keyed canonically
/// (`k1 ≤ k2`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dist2K {
    /// Edge counts per canonical degree pair.
    pub counts: DetHashMap<(Degree, Degree), u64>,
}

impl Dist2K {
    /// Extracts the JDD from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        let mut counts = det_hash_map();
        for &(u, v) in g.edges() {
            let key = canon_pair(g.degree(u) as Degree, g.degree(v) as Degree);
            *counts.entry(key).or_insert(0) += 1;
        }
        Dist2K { counts }
    }

    /// Edge count between degree classes `k1` and `k2` (order-free).
    pub fn m(&self, k1: Degree, k2: Degree) -> u64 {
        self.counts.get(&canon_pair(k1, k2)).copied().unwrap_or(0)
    }

    /// Total edges `m = Σ m(k1, k2)`.
    pub fn edges(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of edge-ends ("stubs") attached to degree-`k` nodes:
    /// `Σ_{k'} m(k, k') + m(k, k)` (diagonal cells contribute two ends).
    pub fn stubs_of_degree(&self, k: Degree) -> u64 {
        let mut stubs = 0;
        for (&(k1, k2), &c) in &self.counts {
            if k1 == k {
                stubs += c;
            }
            if k2 == k {
                stubs += c;
            }
        }
        stubs
    }

    /// Entries sorted by key — deterministic order for output and tests.
    pub fn sorted_entries(&self) -> Vec<((Degree, Degree), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v
    }

    /// Table 1 inclusion: derives the degree histogram. Each degree class
    /// `k` must own a multiple of `k` stubs; `n(k) = stubs(k)/k`.
    ///
    /// Isolated (degree-0) nodes are invisible to a JDD, so they are
    /// absent from the result.
    ///
    /// # Errors
    /// [`GraphError::NotGraphical`] if some class's stub count is not
    /// divisible by its degree, or a key mentions degree 0.
    pub fn to_1k(&self) -> Result<Dist1K, GraphError> {
        // single pass: accumulate per-class stub totals (this runs once
        // per ensemble replica in every distribution-driven construction,
        // so kmax separate map scans would be wasted hot-path work)
        let mut kmax = 0usize;
        for &(k1, k2) in self.counts.keys() {
            if k1 == 0 || k2 == 0 {
                return Err(GraphError::NotGraphical(
                    "2K key mentions degree 0 (degree-0 nodes cannot carry edges)".into(),
                ));
            }
            kmax = kmax.max(k2 as usize);
        }
        let mut stubs = vec![0u64; kmax + 1];
        for (&(k1, k2), &c) in &self.counts {
            stubs[k1 as usize] += c;
            stubs[k2 as usize] += c;
        }
        let mut counts = vec![0usize; kmax + 1];
        for (k, (&s, slot)) in stubs.iter().zip(counts.iter_mut()).enumerate().skip(1) {
            if s == 0 {
                continue;
            }
            if !s.is_multiple_of(k as u64) {
                return Err(GraphError::NotGraphical(format!(
                    "2K inconsistent: degree class {k} owns {s} stubs, not divisible by {k}"
                )));
            }
            *slot = (s / k as u64) as usize;
        }
        Ok(Dist1K { counts })
    }

    /// Consistency check: canonical keys, no degree-0 classes, per-class
    /// stub divisibility (i.e. [`Dist2K::to_1k`] succeeds).
    pub fn validate(&self) -> Result<(), GraphError> {
        for &(k1, k2) in self.counts.keys() {
            if k1 > k2 {
                return Err(GraphError::NotGraphical(format!(
                    "2K key ({k1}, {k2}) is not canonical (k1 must be ≤ k2)"
                )));
            }
        }
        self.to_1k().map(drop)
    }

    /// Squared distance `D_2 = Σ (m_a(k1,k2) − m_b(k1,k2))²` (§4.1.4).
    pub fn distance_sq(&self, other: &Dist2K) -> f64 {
        let mut acc = 0.0;
        for (k, &a) in &self.counts {
            let b = other.counts.get(k).copied().unwrap_or(0);
            acc += (a as f64 - b as f64).powi(2);
        }
        for (k, &b) in &other.counts {
            if !self.counts.contains_key(k) {
                acc += (b as f64).powi(2);
            }
        }
        acc
    }
}

impl DkDistribution for Dist2K {
    const ORDER: u8 = 2;

    fn from_graph(g: &Graph) -> Self {
        Dist2K::from_graph(g)
    }

    fn distance_sq(&self, other: &Self) -> f64 {
        Dist2K::distance_sq(self, other)
    }

    fn read<R: Read>(r: R) -> Result<Self, GraphError> {
        crate::io::read_2k(r)
    }

    fn write<W: Write>(&self, w: W) -> Result<(), GraphError> {
        crate::io::write_2k(self, w)
    }

    fn rescale(&self, new_nodes: usize) -> Result<Self, GraphError> {
        crate::rescale::rescale_2k(self, new_nodes)
    }
}

// ---------------------------------------------------------------------
// 3K
// ---------------------------------------------------------------------

/// The 3K-distribution: wedge and triangle histograms over **induced**
/// connected node triples.
///
/// * a wedge key `(k1, k2, k3)` has the *center* degree in the middle and
///   sorted end degrees (`k1 ≤ k3`);
/// * a triangle key is fully sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dist3K {
    /// Induced-wedge counts per canonical `(end, center, end)` triple.
    pub wedges: DetHashMap<(Degree, Degree, Degree), u64>,
    /// Triangle counts per sorted degree triple.
    pub triangles: DetHashMap<(Degree, Degree, Degree), u64>,
}

impl Dist3K {
    /// Extracts the wedge/triangle census from a graph.
    ///
    /// Cost: `O(Σ_v deg(v)²)` neighbor-pair enumeration with an
    /// `O(log deg)` adjacency test per pair.
    pub fn from_graph(g: &Graph) -> Self {
        let mut d = Dist3K::default();
        let deg: Vec<Degree> = g.degrees().iter().map(|&x| x as Degree).collect();
        for u in 0..g.node_count() as u32 {
            let nbrs = g.neighbors(u);
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    let (v, w) = (nbrs[i], nbrs[j]);
                    if g.has_edge(v, w) {
                        // triangle {u, v, w}: count once, from its
                        // smallest-id corner (v < w always holds here)
                        if u < v {
                            let key =
                                canon_triangle(deg[u as usize], deg[v as usize], deg[w as usize]);
                            *d.triangles.entry(key).or_insert(0) += 1;
                        }
                    } else {
                        // induced wedge v — u — w, centered at u
                        let key = canon_wedge(deg[v as usize], deg[u as usize], deg[w as usize]);
                        *d.wedges.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
        d
    }

    /// Wedge count for ends `a, b` and center `center` (end-order-free).
    pub fn wedge(&self, a: Degree, center: Degree, b: Degree) -> u64 {
        self.wedges
            .get(&canon_wedge(a, center, b))
            .copied()
            .unwrap_or(0)
    }

    /// Triangle count for a degree triple (order-free).
    pub fn triangle(&self, a: Degree, b: Degree, c: Degree) -> u64 {
        self.triangles
            .get(&canon_triangle(a, b, c))
            .copied()
            .unwrap_or(0)
    }

    /// Total induced wedges `Σ P∧`.
    pub fn wedge_total(&self) -> u64 {
        self.wedges.values().sum()
    }

    /// Total triangles `Σ P△`.
    pub fn triangle_total(&self) -> u64 {
        self.triangles.values().sum()
    }

    /// Second-order likelihood `S2 = Σ_wedges k_end · k_end'` — the §4.3
    /// scalar summary of the wedge component.
    pub fn s2(&self) -> f64 {
        self.wedges
            .iter()
            .map(|(&(a, _, c), &n)| a as f64 * c as f64 * n as f64)
            .sum()
    }

    /// Entries in deterministic order: wedges then triangles, each sorted
    /// by key. The `bool` is `true` for triangles.
    pub fn sorted_entries(&self) -> Vec<(bool, (Degree, Degree, Degree), u64)> {
        let mut w: Vec<_> = self.wedges.iter().map(|(&k, &c)| (false, k, c)).collect();
        let mut t: Vec<_> = self.triangles.iter().map(|(&k, &c)| (true, k, c)).collect();
        w.sort_unstable();
        t.sort_unstable();
        w.extend(t);
        w
    }

    /// Table 1 derivation: recovers the JDD from the wedge/triangle
    /// censuses.
    ///
    /// Every edge of class `(k1, k2)` lies in exactly `k1 + k2 − 2`
    /// connected triples: `(k1 − 1) − t` wedges centered at its first
    /// endpoint, `(k2 − 1) − t` at its second, and `t` triangles (where
    /// `t` is the edge's common-neighbor count). Summing *wedge leg*
    /// incidences plus **twice** the triangle edge incidences therefore
    /// gives `m(k1, k2) · (k1 + k2 − 2)` per class, independent of `t`.
    ///
    /// Blind spot: `(1, 1)`-edges (isolated edges) lie in no triple and
    /// cannot be recovered — exactly the paper's observation that the
    /// inclusion holds on connected components of ≥ 3 nodes.
    ///
    /// Graph-extracted 3Ks are always consistent; on a hand-edited
    /// distribution whose incidences don't divide, this rounds the class
    /// counts down. Use [`Dist3K::to_2k_checked`] when the input is
    /// untrusted (e.g. parsed from a file).
    pub fn to_2k(&self) -> Dist2K {
        let (d, _consistent) = self.derive_2k();
        d
    }

    /// [`Dist3K::to_2k`] that rejects inconsistent inputs instead of
    /// rounding: every class incidence must divide by `k1 + k2 − 2`.
    ///
    /// # Errors
    /// [`GraphError::NotGraphical`] when some incidence doesn't divide —
    /// no graph can have this wedge/triangle census.
    pub fn to_2k_checked(&self) -> Result<Dist2K, GraphError> {
        match self.derive_2k() {
            (d, None) => Ok(d),
            (_, Some((k1, k2))) => Err(GraphError::NotGraphical(format!(
                "3K inconsistent: class ({k1}, {k2}) incidence is not divisible by \
                 {} — no graph realizes this wedge/triangle census",
                (k1 + k2) as u64 - 2
            ))),
        }
    }

    /// Shared 3K → 2K derivation; returns the (floor-divided) JDD plus
    /// the first inconsistent class, if any.
    fn derive_2k(&self) -> (Dist2K, Option<(Degree, Degree)>) {
        let mut incidence: DetHashMap<(Degree, Degree), u64> = det_hash_map();
        for (&(a, b, c), &n) in &self.wedges {
            // legs of the wedge a — b — c
            *incidence.entry(canon_pair(a, b)).or_insert(0) += n;
            *incidence.entry(canon_pair(b, c)).or_insert(0) += n;
        }
        for (&(a, b, c), &n) in &self.triangles {
            for key in [canon_pair(a, b), canon_pair(b, c), canon_pair(a, c)] {
                *incidence.entry(key).or_insert(0) += 2 * n;
            }
        }
        let mut d = Dist2K::default();
        let mut inconsistent = None;
        for (&(k1, k2), &inc) in &incidence {
            let div = (k1 + k2) as u64 - 2;
            if div == 0 {
                continue;
            }
            if !inc.is_multiple_of(div) && inconsistent.is_none() {
                inconsistent = Some((k1, k2));
            }
            let m = inc / div;
            if m > 0 {
                d.counts.insert((k1, k2), m);
            }
        }
        (d, inconsistent)
    }

    /// Squared distance `D_3`: wedge plus triangle squared differences.
    pub fn distance_sq(&self, other: &Dist3K) -> f64 {
        fn half(
            a: &DetHashMap<(Degree, Degree, Degree), u64>,
            b: &DetHashMap<(Degree, Degree, Degree), u64>,
        ) -> f64 {
            let mut acc = 0.0;
            for (k, &x) in a {
                let y = b.get(k).copied().unwrap_or(0);
                acc += (x as f64 - y as f64).powi(2);
            }
            for (k, &y) in b {
                if !a.contains_key(k) {
                    acc += (y as f64).powi(2);
                }
            }
            acc
        }
        half(&self.wedges, &other.wedges) + half(&self.triangles, &other.triangles)
    }
}

impl DkDistribution for Dist3K {
    const ORDER: u8 = 3;

    fn from_graph(g: &Graph) -> Self {
        Dist3K::from_graph(g)
    }

    fn distance_sq(&self, other: &Self) -> f64 {
        Dist3K::distance_sq(self, other)
    }

    fn read<R: Read>(r: R) -> Result<Self, GraphError> {
        crate::io::read_3k(r)
    }

    fn write<W: Write>(&self, w: W) -> Result<(), GraphError> {
        crate::io::write_3k(self, w)
    }

    fn rescale(&self, _new_nodes: usize) -> Result<Self, GraphError> {
        Err(GraphError::ConstructionFailed(
            "3K rescaling is not defined: the paper's §6 strategy stops at 2K \
             (rescale the derived 2K instead, via to_2k())"
                .into(),
        ))
    }
}

// ---------------------------------------------------------------------
// Type erasure
// ---------------------------------------------------------------------

/// A dK-distribution whose order `d` is chosen at runtime.
///
/// This is the input type of the [`crate::generate::Generator`] facade:
/// CLI and harness code that reads "a dK-distribution file of order `d`"
/// holds an `AnyDist` and never matches on `d` itself.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyDist {
    /// `d = 0`.
    D0(Dist0K),
    /// `d = 1`.
    D1(Dist1K),
    /// `d = 2`.
    D2(Dist2K),
    /// `d = 3`.
    D3(Dist3K),
}

impl AnyDist {
    /// Extracts the order-`d` distribution of a graph.
    ///
    /// # Errors
    /// [`GraphError::ConstructionFailed`] for `d > 3`.
    pub fn from_graph(d: u8, g: &Graph) -> Result<Self, GraphError> {
        Ok(match d {
            0 => AnyDist::D0(Dist0K::from_graph(g)),
            1 => AnyDist::D1(Dist1K::from_graph(g)),
            2 => AnyDist::D2(Dist2K::from_graph(g)),
            3 => AnyDist::D3(Dist3K::from_graph(g)),
            other => {
                return Err(GraphError::ConstructionFailed(format!(
                    "the dK-series is implemented for d ≤ 3, got {other}"
                )))
            }
        })
    }

    /// Reads an order-`d` distribution from its Orbis-style text form.
    pub fn read<R: Read>(d: u8, r: R) -> Result<Self, GraphError> {
        Ok(match d {
            0 => AnyDist::D0(crate::io::read_0k(r)?),
            1 => AnyDist::D1(crate::io::read_1k(r)?),
            2 => AnyDist::D2(crate::io::read_2k(r)?),
            3 => AnyDist::D3(crate::io::read_3k(r)?),
            other => {
                return Err(GraphError::ConstructionFailed(format!(
                    "the dK-series is implemented for d ≤ 3, got {other}"
                )))
            }
        })
    }

    /// Writes the Orbis-style text form of the wrapped distribution.
    pub fn write<W: Write>(&self, w: W) -> Result<(), GraphError> {
        match self {
            AnyDist::D0(d) => crate::io::write_0k(d, w),
            AnyDist::D1(d) => crate::io::write_1k(d, w),
            AnyDist::D2(d) => crate::io::write_2k(d, w),
            AnyDist::D3(d) => crate::io::write_3k(d, w),
        }
    }

    /// The order `d` of the wrapped distribution.
    pub fn order(&self) -> u8 {
        match self {
            AnyDist::D0(_) => 0,
            AnyDist::D1(_) => 1,
            AnyDist::D2(_) => 2,
            AnyDist::D3(_) => 3,
        }
    }

    /// Squared distance to another distribution; `None` when the orders
    /// differ (the metric is only defined within one order).
    pub fn distance_sq(&self, other: &AnyDist) -> Option<f64> {
        match (self, other) {
            (AnyDist::D0(a), AnyDist::D0(b)) => Some(a.distance_sq(b)),
            (AnyDist::D1(a), AnyDist::D1(b)) => Some(a.distance_sq(b)),
            (AnyDist::D2(a), AnyDist::D2(b)) => Some(a.distance_sq(b)),
            (AnyDist::D3(a), AnyDist::D3(b)) => Some(a.distance_sq(b)),
            _ => None,
        }
    }

    /// Rescales the wrapped distribution (§6); errors for 3K.
    pub fn rescale(&self, new_nodes: usize) -> Result<Self, GraphError> {
        Ok(match self {
            AnyDist::D0(d) => AnyDist::D0(DkDistribution::rescale(d, new_nodes)?),
            AnyDist::D1(d) => AnyDist::D1(DkDistribution::rescale(d, new_nodes)?),
            AnyDist::D2(d) => AnyDist::D2(DkDistribution::rescale(d, new_nodes)?),
            AnyDist::D3(d) => AnyDist::D3(DkDistribution::rescale(d, new_nodes)?),
        })
    }

    /// The wrapped [`Dist0K`], if `d = 0`.
    pub fn as_0k(&self) -> Option<&Dist0K> {
        match self {
            AnyDist::D0(d) => Some(d),
            _ => None,
        }
    }

    /// The wrapped [`Dist1K`], if `d = 1`.
    pub fn as_1k(&self) -> Option<&Dist1K> {
        match self {
            AnyDist::D1(d) => Some(d),
            _ => None,
        }
    }

    /// The wrapped [`Dist2K`], if `d = 2`.
    pub fn as_2k(&self) -> Option<&Dist2K> {
        match self {
            AnyDist::D2(d) => Some(d),
            _ => None,
        }
    }

    /// The wrapped [`Dist3K`], if `d = 3`.
    pub fn as_3k(&self) -> Option<&Dist3K> {
        match self {
            AnyDist::D3(d) => Some(d),
            _ => None,
        }
    }
}

impl From<Dist0K> for AnyDist {
    fn from(d: Dist0K) -> Self {
        AnyDist::D0(d)
    }
}

impl From<Dist1K> for AnyDist {
    fn from(d: Dist1K) -> Self {
        AnyDist::D1(d)
    }
}

impl From<Dist2K> for AnyDist {
    fn from(d: Dist2K) -> Self {
        AnyDist::D2(d)
    }
}

impl From<Dist3K> for AnyDist {
    fn from(d: Dist3K) -> Self {
        AnyDist::D3(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn canonicalizers() {
        assert_eq!(canon_pair(3, 2), (2, 3));
        assert_eq!(canon_pair(2, 3), (2, 3));
        assert_eq!(canon_wedge(5, 1, 3), (3, 1, 5));
        assert_eq!(canon_wedge(3, 1, 5), (3, 1, 5));
        assert_eq!(canon_triangle(3, 1, 2), (1, 2, 3));
    }

    #[test]
    fn dist0k_basics() {
        let d = Dist0K::from_graph(&builders::karate_club());
        assert_eq!(
            d,
            Dist0K {
                nodes: 34,
                edges: 78
            }
        );
        assert!((d.k_avg() - 2.0 * 78.0 / 34.0).abs() < 1e-12);
        let p = d.edge_probability();
        assert!((p - 78.0 / (34.0 * 33.0 / 2.0)).abs() < 1e-12);
        assert_eq!(d.distance_sq(&d), 0.0);
        assert_eq!(Dist0K::default().k_avg(), 0.0);
        assert_eq!(Dist0K::default().edge_probability(), 0.0);
    }

    #[test]
    fn dist1k_extraction_and_sequence() {
        let star = builders::star(4);
        let d = Dist1K::from_graph(&star);
        assert_eq!(d.counts, vec![0, 4, 0, 0, 1]);
        assert_eq!(d.nodes(), 5);
        assert_eq!(d.edges().unwrap(), 4);
        assert_eq!(d.to_degree_sequence(), vec![1, 1, 1, 1, 4]);
        assert!(d.is_graphical());
        assert!((d.pk(1) - 0.8).abs() < 1e-12);
        assert_eq!(d.to_0k(), Dist0K { nodes: 5, edges: 4 });

        let odd = Dist1K::from_degree_sequence(&[3, 1, 1]);
        assert!(odd.edges().is_err());

        let non_graphical = Dist1K::from_degree_sequence(&[5, 5, 1, 1, 1, 1]);
        assert!(
            non_graphical.edges().is_ok(),
            "even sum passes the cheap check"
        );
        assert!(!non_graphical.is_graphical());
    }

    #[test]
    fn dist1k_distance() {
        let a = Dist1K::from_degree_sequence(&[1, 1, 2, 2]);
        let b = Dist1K::from_degree_sequence(&[1, 1, 1, 1]);
        // counts a = [0,2,2], b = [0,4]: diff at k=1 is 2, at k=2 is 2
        assert_eq!(a.distance_sq(&b), 8.0);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn dist2k_extraction_on_star() {
        let d = Dist2K::from_graph(&builders::star(4));
        assert_eq!(d.m(1, 4), 4);
        assert_eq!(d.m(4, 1), 4, "order-free lookup");
        assert_eq!(d.edges(), 4);
        assert_eq!(d.stubs_of_degree(1), 4);
        assert_eq!(d.stubs_of_degree(4), 4);
        let d1 = d.to_1k().unwrap();
        assert_eq!(d1.counts, vec![0, 4, 0, 0, 1]);
        d.validate().unwrap();
    }

    #[test]
    fn dist2k_diagonal_stubs() {
        // triangle: all edges in class (2,2); stubs(2) = 6
        let d = Dist2K::from_graph(&builders::complete(3));
        assert_eq!(d.m(2, 2), 3);
        assert_eq!(d.stubs_of_degree(2), 6);
        assert_eq!(d.to_1k().unwrap().counts, vec![0, 0, 3]);
    }

    #[test]
    fn dist2k_inconsistencies_rejected() {
        let mut d = Dist2K::default();
        d.counts.insert((5, 7), 1); // class 5 has 1 stub
        assert!(d.to_1k().is_err());
        assert!(d.validate().is_err());

        let mut z = Dist2K::default();
        z.counts.insert((0, 2), 2);
        assert!(z.to_1k().is_err());

        let mut nc = Dist2K::default();
        nc.counts.insert((3, 2), 6); // non-canonical key
        assert!(nc.validate().is_err());
    }

    #[test]
    fn dist3k_census_on_classics() {
        // K3: one triangle (2,2,2), no wedges
        let d = Dist3K::from_graph(&builders::complete(3));
        assert_eq!(d.triangle(2, 2, 2), 1);
        assert_eq!(d.triangle_total(), 1);
        assert_eq!(d.wedge_total(), 0);

        // P4: wedges (1,2,2) ×2 — centered at the two middle nodes
        let d = Dist3K::from_graph(&builders::path(4));
        assert_eq!(d.wedge(1, 2, 2), 2);
        assert_eq!(d.triangle_total(), 0);
        assert_eq!(d.s2(), 4.0);

        // karate: 45 triangles (known), s2 matches the metric suite
        let karate = builders::karate_club();
        let d = Dist3K::from_graph(&karate);
        assert_eq!(d.triangle_total(), 45);
        let s2 = dk_metrics::likelihood::likelihood_s2(&karate);
        assert!((d.s2() - s2).abs() < 1e-9, "{} vs {s2}", d.s2());
    }

    #[test]
    fn inclusion_maps_are_exact() {
        for g in [
            builders::karate_club(),
            builders::petersen(),
            builders::grid(5, 5),
            builders::complete(6),
            builders::star(7),
        ] {
            let d3 = Dist3K::from_graph(&g);
            let d2 = Dist2K::from_graph(&g);
            let d1 = Dist1K::from_graph(&g);
            assert_eq!(d3.to_2k(), d2);
            assert_eq!(d2.to_1k().unwrap(), d1);
            assert_eq!(d1.to_0k(), Dist0K::from_graph(&g));
        }
    }

    #[test]
    fn to_2k_checked_rejects_inconsistent_census() {
        // a single wedge (2, 2, 2): class (2,2) incidence 2, divisor 2 — ok
        let mut d = Dist3K::default();
        d.wedges.insert((2, 2, 2), 1);
        assert!(d.to_2k_checked().is_ok());
        // bump to 3 wedges: incidence 6 over (2,2)... still divisible; use
        // a wedge (2, 3, 2): incidence 2 on class (2,3), divisor 3 — no
        // graph realizes a lone such wedge
        let mut d = Dist3K::default();
        d.wedges.insert((2, 3, 2), 1);
        let err = d.to_2k_checked().unwrap_err();
        assert!(
            err.to_string().contains("3K inconsistent"),
            "unexpected error: {err}"
        );
        // the unchecked derivation still answers (floor), documented
        let _ = d.to_2k();
        // graph-extracted censuses always pass the check
        let g = builders::karate_club();
        assert_eq!(
            Dist3K::from_graph(&g).to_2k_checked().unwrap(),
            Dist2K::from_graph(&g)
        );
    }

    #[test]
    fn isolated_edge_blind_spot() {
        // two disjoint edges: 3K sees nothing, so to_2k loses them
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d3 = Dist3K::from_graph(&g);
        assert_eq!(d3.wedge_total() + d3.triangle_total(), 0);
        assert_eq!(d3.to_2k(), Dist2K::default());
        // ...while the direct 2K extraction records them
        assert_eq!(Dist2K::from_graph(&g).m(1, 1), 2);
    }

    #[test]
    fn trait_and_anydist_roundtrip() {
        let g = builders::karate_club();
        for d in 0..=3u8 {
            let dist = AnyDist::from_graph(d, &g).unwrap();
            assert_eq!(dist.order(), d);
            let mut buf = Vec::new();
            dist.write(&mut buf).unwrap();
            let back = AnyDist::read(d, buf.as_slice()).unwrap();
            assert_eq!(back, dist, "d = {d}");
            assert_eq!(dist.distance_sq(&back), Some(0.0));
        }
        assert!(AnyDist::from_graph(4, &g).is_err());
        let a = AnyDist::from_graph(1, &g).unwrap();
        let b = AnyDist::from_graph(2, &g).unwrap();
        assert_eq!(a.distance_sq(&b), None, "cross-order distance undefined");
    }

    #[test]
    fn anydist_rescale_follows_the_paper() {
        let g = builders::karate_club();
        let d1 = AnyDist::from_graph(1, &g).unwrap();
        let r = d1.rescale(68).unwrap();
        assert_eq!(r.as_1k().unwrap().nodes(), 68);
        let d3 = AnyDist::from_graph(3, &g).unwrap();
        assert!(d3.rescale(68).is_err(), "no 3K rescaling strategy");
    }

    #[test]
    fn anydist_accessors_and_from() {
        let g = builders::petersen();
        let d: AnyDist = Dist2K::from_graph(&g).into();
        assert!(d.as_2k().is_some());
        assert!(d.as_1k().is_none());
        assert!(d.as_0k().is_none());
        assert!(d.as_3k().is_none());
    }

    use dk_graph::Graph;
}

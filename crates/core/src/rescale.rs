//! Rescaling dK-distributions to arbitrary graph sizes (paper §6:
//! "We are working on appropriate strategies of rescaling the
//! dK-distributions to arbitrary graph sizes" — implemented here as the
//! natural proportional strategy).
//!
//! * **0K**: keep `k̄`, scale `m = k̄·n'/2`.
//! * **1K**: scale each `n(k)` by `n'/n` with largest-remainder rounding
//!   (preserves the *shape* of `P(k)` exactly in expectation and the node
//!   total exactly); the degree-sum parity is repaired by bumping one
//!   node between adjacent degree classes.
//! * **2K**: scale each `m(k1,k2)` by the edge ratio with
//!   largest-remainder rounding, then repair per-class stub divisibility
//!   so the result is a *consistent* JDD (round-trippable through
//!   `to_1k`). Repair moves single edges between `(k, k')` classes of the
//!   same `k` — the minimal perturbation that restores divisibility.
//!
//! Rescaled distributions feed directly into the standard constructors
//! (`pseudograph`, `matching`, `stochastic`), giving "a skitter-like
//! topology at 10× the size" workflows.

use crate::dist::{canon_pair, Degree, Dist0K, Dist1K, Dist2K};
use dk_graph::GraphError;

/// Rescales a 0K-distribution to `n'` nodes at the same average degree.
pub fn rescale_0k(d: &Dist0K, new_nodes: usize) -> Dist0K {
    let m = (d.k_avg() * new_nodes as f64 / 2.0).round() as usize;
    Dist0K {
        nodes: new_nodes,
        edges: m,
    }
}

/// Largest-remainder apportionment of `total` into parts proportional to
/// `weights`.
fn apportion(weights: &[f64], total: usize) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let exact: Vec<f64> = weights.iter().map(|w| w / wsum * total as f64).collect();
    let mut parts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut rem: usize = total - parts.iter().sum::<usize>();
    // distribute leftovers by descending fractional part (stable tie-break
    // by index for determinism)
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).expect("finite").then(a.cmp(&b))
    });
    for &i in &order {
        if rem == 0 {
            break;
        }
        parts[i] += 1;
        rem -= 1;
    }
    parts
}

/// Rescales a 1K-distribution to `n'` nodes, preserving `P(k)`'s shape.
///
/// # Errors
/// [`GraphError::NotGraphical`] if the input is empty or parity repair is
/// impossible (single degree class of odd parity contribution).
pub fn rescale_1k(d: &Dist1K, new_nodes: usize) -> Result<Dist1K, GraphError> {
    if d.nodes() == 0 {
        return Err(GraphError::NotGraphical(
            "cannot rescale an empty 1K".into(),
        ));
    }
    let weights: Vec<f64> = d.counts.iter().map(|&c| c as f64).collect();
    let mut counts = apportion(&weights, new_nodes);
    // parity repair: degree sum must be even
    let sum: usize = counts.iter().enumerate().map(|(k, &c)| k * c).sum();
    if sum % 2 == 1 {
        // move one node from an odd degree class to an adjacent class
        // (k → k−1 preferred, k → k+1 as fallback); changes the sum by ±k∓(k−1) = odd
        let odd_k = counts
            .iter()
            .enumerate()
            .rposition(|(k, &c)| k % 2 == 1 && c > 0)
            .ok_or_else(|| {
                GraphError::NotGraphical("parity repair impossible: no odd-degree class".into())
            })?;
        counts[odd_k] -= 1;
        if odd_k >= 1 {
            counts[odd_k - 1] += 1;
        } else {
            counts.resize(counts.len().max(2), 0);
            counts[1] += 1; // odd_k == 0 is impossible (0 is even), kept for totality
        }
    }
    let out = Dist1K { counts };
    debug_assert_eq!(out.nodes(), new_nodes);
    debug_assert!(out.edges().is_ok());
    Ok(out)
}

/// Rescales a 2K-distribution by a node factor, preserving the JDD shape
/// and repairing consistency.
///
/// `new_nodes` is a *target*; the exact realized node count may differ by
/// a few nodes because stub-divisibility repair works at edge
/// granularity. The result always validates ([`Dist2K::validate`]).
pub fn rescale_2k(d: &Dist2K, new_nodes: usize) -> Result<Dist2K, GraphError> {
    let d1 = d.to_1k()?;
    let old_nodes = d1.nodes();
    if old_nodes == 0 {
        return Err(GraphError::NotGraphical(
            "cannot rescale an empty 2K".into(),
        ));
    }
    let factor = new_nodes as f64 / old_nodes as f64;
    let new_edges = (d.edges() as f64 * factor).round() as usize;
    let entries = d.sorted_entries();
    let weights: Vec<f64> = entries.iter().map(|&(_, c)| c as f64).collect();
    let parts = apportion(&weights, new_edges);
    let mut out = Dist2K::default();
    for (&((k1, k2), _), &m) in entries.iter().zip(&parts) {
        if m > 0 {
            out.counts.insert((k1, k2), m as u64);
        }
    }
    repair_divisibility(&mut out)?;
    out.validate()?;
    Ok(out)
}

/// Restores per-class stub divisibility by adding edges to the smallest
/// classes that need stubs. Each degree class `k` must have `stubs(k) ≡ 0
/// (mod k)`; the deficit is patched by adding `(k, k')` edges toward the
/// largest existing partner class `k'`, which perturbs the JDD minimally
/// (bounded by `Σ_k (k−1)` extra edges).
fn repair_divisibility(d: &mut Dist2K) -> Result<(), GraphError> {
    // iterate to fixpoint: adding an edge for class k changes k''s count
    for _round in 0..64 {
        let mut deficits: Vec<(Degree, u64)> = Vec::new();
        let mut classes: Vec<Degree> = d.counts.keys().flat_map(|&(a, b)| [a, b]).collect();
        classes.sort_unstable();
        classes.dedup();
        for &k in &classes {
            let stubs = d.stubs_of_degree(k);
            let rem = stubs % k as u64;
            if rem != 0 {
                deficits.push((k, k as u64 - rem));
            }
        }
        if deficits.is_empty() {
            return Ok(());
        }
        // pair up deficit classes with each other first (one edge fixes
        // one stub on each side), then self-patch with (k,k) edges
        deficits.sort_unstable();
        let mut i = 0;
        while i < deficits.len() {
            let (k, need) = deficits[i];
            if i + 1 < deficits.len() {
                let (k2, need2) = deficits[i + 1];
                let add = need.min(need2);
                *d.counts.entry(canon_pair(k, k2)).or_insert(0) += add;
                deficits[i].1 -= add;
                deficits[i + 1].1 -= add;
                if deficits[i].1 == 0 {
                    i += 1;
                    continue;
                }
            }
            let (k, need) = deficits[i];
            if need > 0 {
                if need % 2 == 0 {
                    // (k,k) edges add 2 stubs each
                    *d.counts.entry((k, k)).or_insert(0) += need / 2;
                } else if k > 1 {
                    // odd deficit: route one stub to class 1 (creates a
                    // leaf), rest via (k,k) pairs
                    *d.counts.entry(canon_pair(1, k)).or_insert(0) += 1;
                    if need > 1 {
                        *d.counts.entry((k, k)).or_insert(0) += (need - 1) / 2;
                    }
                } else {
                    // k == 1 with odd deficit: one extra (1,1) edge fixes
                    // parity… but adds 2 stubs; instead add a single leaf
                    // partner to the largest class
                    let partner = *d
                        .counts
                        .keys()
                        .flat_map(|&(a, b)| [a, b])
                        .filter(|&x| x > 1)
                        .max_by_key(|&x| x)
                        .get_or_insert(1);
                    *d.counts.entry(canon_pair(1, partner)).or_insert(0) += 1;
                }
            }
            i += 1;
        }
    }
    // convergence check
    let classes: Vec<Degree> = d.counts.keys().flat_map(|&(a, b)| [a, b]).collect();
    for k in classes {
        if !d.stubs_of_degree(k).is_multiple_of(k as u64) {
            return Err(GraphError::NotGraphical(format!(
                "divisibility repair did not converge for class {k}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn rescale_0k_keeps_avg_degree() {
        let d = Dist0K::from_graph(&builders::karate_club());
        let r = rescale_0k(&d, 340);
        assert_eq!(r.nodes, 340);
        assert!((r.k_avg() - d.k_avg()).abs() < 0.05);
    }

    #[test]
    fn apportion_exact() {
        assert_eq!(apportion(&[1.0, 1.0, 2.0], 8), vec![2, 2, 4]);
        assert_eq!(apportion(&[0.0, 3.0], 5), vec![0, 5]);
        assert_eq!(apportion(&[], 0), Vec::<usize>::new());
        // totals always respected
        let parts = apportion(&[0.3, 0.3, 0.4], 10);
        assert_eq!(parts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn rescale_1k_preserves_shape() {
        let d = Dist1K::from_graph(&builders::karate_club());
        for factor in [2usize, 5, 10] {
            let n2 = 34 * factor;
            let r = rescale_1k(&d, n2).unwrap();
            assert_eq!(r.nodes(), n2);
            assert!(r.edges().is_ok(), "parity repaired");
            // shape: P(1) within a couple nodes of proportional
            let p1_old = d.pk(1);
            let p1_new = r.pk(1);
            assert!(
                (p1_old - p1_new).abs() < 0.05,
                "factor {factor}: P(1) {p1_old} vs {p1_new}"
            );
        }
    }

    #[test]
    fn rescale_1k_downscale() {
        let d = Dist1K::from_graph(&builders::karate_club());
        let r = rescale_1k(&d, 17).unwrap();
        assert_eq!(r.nodes(), 17);
        assert!(r.edges().is_ok());
    }

    #[test]
    fn rescale_1k_empty_errors() {
        assert!(rescale_1k(&Dist1K::default(), 10).is_err());
    }

    #[test]
    fn rescale_2k_consistent_and_shaped() {
        let d = Dist2K::from_graph(&builders::karate_club());
        let r = rescale_2k(&d, 340).unwrap();
        r.validate().unwrap();
        let d1 = r.to_1k().unwrap();
        let n = d1.nodes();
        assert!(
            (n as f64 - 340.0).abs() <= 20.0,
            "node count {n} should approximate 340"
        );
        // edge ratio ≈ node ratio
        let ratio = r.edges() as f64 / d.edges() as f64;
        assert!((ratio - n as f64 / 34.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn rescale_2k_roundtrips_through_generation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = Dist2K::from_graph(&builders::karate_club());
        let r = rescale_2k(&d, 170).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = crate::generate::matching::generate_2k(&r, &mut rng)
            .unwrap()
            .graph;
        assert_eq!(Dist2K::from_graph(&g), r);
    }

    #[test]
    fn rescale_2k_identity_factor() {
        let d = Dist2K::from_graph(&builders::karate_club());
        let r = rescale_2k(&d, 34).unwrap();
        // same size: shape preserved near-exactly
        assert_eq!(r.edges(), d.edges());
    }
}

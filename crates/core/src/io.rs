//! Orbis-style text formats for dK-distributions.
//!
//! The paper's released tooling (Orbis) exchanged dK-distributions as
//! plain-text files so that extraction ("dkDist") and generation
//! ("dkTopoGen") could be separate programs. We keep that interface:
//!
//! * **1K**: lines `k n(k)`;
//! * **2K**: lines `k1 k2 m(k1,k2)` with `k1 ≤ k2`;
//! * **3K**: lines `W k1 k2 k3 count` (wedge, center `k2`) and
//!   `T k1 k2 k3 count` (triangle, sorted).
//!
//! Comments (`#`) and blank lines are ignored. All writers emit sorted,
//! deterministic output.

use crate::dist::{Dist0K, Dist1K, Dist2K, Dist3K};
use dk_graph::GraphError;
use std::io::{BufRead, BufReader, Read, Write};

fn parse_err(line: usize, msg: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Writes a 0K-distribution as `nodes N` / `edges M` lines.
pub fn write_0k<W: Write>(d: &Dist0K, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "# dK-series 0K distribution: nodes/edges totals")?;
    writeln!(w, "nodes {}", d.nodes)?;
    writeln!(w, "edges {}", d.edges)?;
    Ok(())
}

/// Reads a 0K-distribution.
pub fn read_0k<R: Read>(r: R) -> Result<Dist0K, GraphError> {
    let mut d = Dist0K::default();
    let (mut saw_nodes, mut saw_edges) = (false, false);
    for (no, line) in BufReader::new(r).lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 2 {
            return Err(parse_err(no, "expected `nodes N` or `edges M`"));
        }
        let value: usize = toks[1]
            .parse()
            .map_err(|e| parse_err(no, format!("bad count: {e}")))?;
        match toks[0] {
            "nodes" => {
                d.nodes = value;
                saw_nodes = true;
            }
            "edges" => {
                d.edges = value;
                saw_edges = true;
            }
            other => return Err(parse_err(no, format!("unknown field {other:?}"))),
        }
    }
    if !saw_nodes || !saw_edges {
        return Err(parse_err(0, "0K file must define both nodes and edges"));
    }
    Ok(d)
}

/// Writes a 1K-distribution as `k n(k)` lines.
pub fn write_1k<W: Write>(d: &Dist1K, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "# dK-series 1K distribution: k n(k)")?;
    for (k, &c) in d.counts.iter().enumerate() {
        if c > 0 {
            writeln!(w, "{k} {c}")?;
        }
    }
    Ok(())
}

/// Reads a 1K-distribution.
pub fn read_1k<R: Read>(r: R) -> Result<Dist1K, GraphError> {
    let mut counts: Vec<usize> = Vec::new();
    for (no, line) in BufReader::new(r).lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let k: usize = it
            .next()
            .ok_or_else(|| parse_err(no, "missing degree"))?
            .parse()
            .map_err(|e| parse_err(no, format!("bad degree: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err(no, "missing count"))?
            .parse()
            .map_err(|e| parse_err(no, format!("bad count: {e}")))?;
        if it.next().is_some() {
            return Err(parse_err(no, "trailing tokens"));
        }
        if counts.len() <= k {
            counts.resize(k + 1, 0);
        }
        counts[k] += c;
    }
    Ok(Dist1K { counts })
}

/// Writes a 2K-distribution as `k1 k2 m` lines.
pub fn write_2k<W: Write>(d: &Dist2K, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "# dK-series 2K distribution: k1 k2 m(k1,k2), k1 <= k2")?;
    for ((k1, k2), c) in d.sorted_entries() {
        writeln!(w, "{k1} {k2} {c}")?;
    }
    Ok(())
}

/// Reads a 2K-distribution (keys are canonicalized on read).
pub fn read_2k<R: Read>(r: R) -> Result<Dist2K, GraphError> {
    let mut d = Dist2K::default();
    for (no, line) in BufReader::new(r).lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(parse_err(no, "expected `k1 k2 count`"));
        }
        let k1: u32 = toks[0]
            .parse()
            .map_err(|e| parse_err(no, format!("bad k1: {e}")))?;
        let k2: u32 = toks[1]
            .parse()
            .map_err(|e| parse_err(no, format!("bad k2: {e}")))?;
        let c: u64 = toks[2]
            .parse()
            .map_err(|e| parse_err(no, format!("bad count: {e}")))?;
        *d.counts.entry(crate::dist::canon_pair(k1, k2)).or_insert(0) += c;
    }
    Ok(d)
}

/// Writes a 3K-distribution as `W/T k1 k2 k3 count` lines.
pub fn write_3k<W: Write>(d: &Dist3K, mut w: W) -> Result<(), GraphError> {
    writeln!(
        w,
        "# dK-series 3K distribution: `W k1 k2 k3 n` (wedge, center k2) / `T k1 k2 k3 n` (triangle)"
    )?;
    for (is_tri, (a, b, c), n) in d.sorted_entries() {
        let tag = if is_tri { 'T' } else { 'W' };
        writeln!(w, "{tag} {a} {b} {c} {n}")?;
    }
    Ok(())
}

/// Reads a 3K-distribution (keys canonicalized on read).
pub fn read_3k<R: Read>(r: R) -> Result<Dist3K, GraphError> {
    let mut d = Dist3K::default();
    for (no, line) in BufReader::new(r).lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 5 {
            return Err(parse_err(no, "expected `W|T k1 k2 k3 count`"));
        }
        let parse_u32 = |s: &str| -> Result<u32, GraphError> {
            s.parse()
                .map_err(|e| parse_err(no, format!("bad degree: {e}")))
        };
        let (a, b, c) = (
            parse_u32(toks[1])?,
            parse_u32(toks[2])?,
            parse_u32(toks[3])?,
        );
        let n: u64 = toks[4]
            .parse()
            .map_err(|e| parse_err(no, format!("bad count: {e}")))?;
        match toks[0] {
            "W" => {
                *d.wedges
                    .entry(crate::dist::canon_wedge(a, b, c))
                    .or_insert(0) += n
            }
            "T" => {
                *d.triangles
                    .entry(crate::dist::canon_triangle(a, b, c))
                    .or_insert(0) += n
            }
            other => return Err(parse_err(no, format!("unknown tag {other:?}"))),
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn roundtrip_0k() {
        let d = crate::dist::Dist0K::from_graph(&builders::karate_club());
        let mut buf = Vec::new();
        write_0k(&d, &mut buf).unwrap();
        let back = read_0k(buf.as_slice()).unwrap();
        assert_eq!(d, back);
        assert!(read_0k("nodes 5\n".as_bytes()).is_err(), "missing edges");
        assert!(read_0k("nodes x\nedges 1\n".as_bytes()).is_err());
        assert!(read_0k("frob 3\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_1k() {
        let d = Dist1K::from_graph(&builders::karate_club());
        let mut buf = Vec::new();
        write_1k(&d, &mut buf).unwrap();
        let back = read_1k(buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn roundtrip_2k() {
        let d = Dist2K::from_graph(&builders::karate_club());
        let mut buf = Vec::new();
        write_2k(&d, &mut buf).unwrap();
        let back = read_2k(buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn roundtrip_3k() {
        let d = Dist3K::from_graph(&builders::karate_club());
        let mut buf = Vec::new();
        write_3k(&d, &mut buf).unwrap();
        let back = read_3k(buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn reads_canonicalize() {
        let d = read_2k("3 2 5\n".as_bytes()).unwrap();
        assert_eq!(d.m(2, 3), 5);
        let d = read_3k("W 9 2 1 4\nT 3 1 2 7\n".as_bytes()).unwrap();
        assert_eq!(d.wedge(1, 2, 9), 4);
        assert_eq!(d.triangle(1, 2, 3), 7);
    }

    #[test]
    fn merge_duplicate_lines() {
        let d = read_1k("2 3\n2 4\n".as_bytes()).unwrap();
        assert_eq!(d.counts[2], 7);
    }

    #[test]
    fn parse_errors() {
        assert!(read_1k("x 1\n".as_bytes()).is_err());
        assert!(read_1k("1\n".as_bytes()).is_err());
        assert!(read_1k("1 2 3\n".as_bytes()).is_err());
        assert!(read_2k("1 2\n".as_bytes()).is_err());
        assert!(read_3k("X 1 2 3 4\n".as_bytes()).is_err());
        assert!(read_3k("W 1 2 3\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = read_2k("# hi\n\n1 2 3\n".as_bytes()).unwrap();
        assert_eq!(d.edges(), 3);
    }
}

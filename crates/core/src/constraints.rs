//! External constraints on rewiring (paper §6).
//!
//! "We can simply adjust our rewiring algorithms to not accept rewirings
//! violating this dependency. In other words, we can always consider
//! ensembles of dK-random graphs subject to various forms of external
//! constraints imposed by the specifics of a given network."
//!
//! A [`RewireConstraint`] is consulted *before* a candidate swap is
//! applied; rejecting keeps the graph untouched. The constraint sees the
//! whole graph plus the proposed edge changes, so technology-style rules
//! (router degree–bandwidth feasibility, geography, link-type budgets) are
//! all expressible.

use dk_graph::Graph;

/// A predicate over candidate rewiring steps.
pub trait RewireConstraint {
    /// `true` if replacing `removed` with `added` is allowed. The graph is
    /// in its *pre-swap* state.
    fn allows(&self, g: &Graph, removed: &[(u32, u32)], added: &[(u32, u32)]) -> bool;
}

/// The default: everything allowed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoConstraint;

impl RewireConstraint for NoConstraint {
    fn allows(&self, _: &Graph, _: &[(u32, u32)], _: &[(u32, u32)]) -> bool {
        true
    }
}

/// Example technology constraint from the paper's §6 discussion (after
/// Li et al. \[19\]): a router has a total capacity budget, so the product
/// of endpoint degrees on any link — a proxy for the bandwidth the link
/// must carry — may not exceed a cap.
#[derive(Clone, Copy, Debug)]
pub struct DegreeProductCap {
    /// Maximum allowed `deg(u) · deg(v)` on any created edge.
    pub cap: u64,
}

impl RewireConstraint for DegreeProductCap {
    fn allows(&self, g: &Graph, _removed: &[(u32, u32)], added: &[(u32, u32)]) -> bool {
        added
            .iter()
            .all(|&(u, v)| (g.degree(u) as u64) * (g.degree(v) as u64) <= self.cap)
    }
}

/// Adapter for arbitrary closures.
pub struct PredicateConstraint<F>(pub F);

impl<F> RewireConstraint for PredicateConstraint<F>
where
    F: Fn(&Graph, &[(u32, u32)], &[(u32, u32)]) -> bool,
{
    fn allows(&self, g: &Graph, removed: &[(u32, u32)], added: &[(u32, u32)]) -> bool {
        (self.0)(g, removed, added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn no_constraint_allows_all() {
        let g = builders::path(3);
        assert!(NoConstraint.allows(&g, &[(0, 1)], &[(0, 2)]));
    }

    #[test]
    fn degree_product_cap() {
        let g = builders::star(5); // hub degree 5, leaves 1
        let c = DegreeProductCap { cap: 4 };
        // hub–leaf edge product = 5 — over cap
        assert!(!c.allows(&g, &[], &[(0, 1)]));
        // leaf–leaf product = 1 — fine
        assert!(c.allows(&g, &[], &[(1, 2)]));
        let generous = DegreeProductCap { cap: 100 };
        assert!(generous.allows(&g, &[], &[(0, 1)]));
    }

    #[test]
    fn predicate_adapter() {
        let g = builders::path(4);
        // forbid touching node 0
        let c = PredicateConstraint(|_: &Graph, rm: &[(u32, u32)], ad: &[(u32, u32)]| {
            rm.iter().chain(ad).all(|&(u, v)| u != 0 && v != 0)
        });
        assert!(!c.allows(&g, &[(0, 1)], &[(1, 2)]));
        assert!(c.allows(&g, &[(1, 2)], &[(2, 3)]));
    }
}

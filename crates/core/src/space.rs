//! The §4.3 "extreme metrics" for dK-space diagnostics.
//!
//! To decide whether a given `d` is constraining enough, the paper
//! proposes two simple metrics that are always defined by `P_{d+1}` but
//! not by `P_d`, corresponding to the extreme geometries of
//! `(d+1)`-sized subgraphs:
//!
//! * **the correlation of degrees of nodes located at distance d** —
//!   the maximum-diameter geometry (a path);
//! * **the concentration of d-simplices** (cliques of size `d + 1`) —
//!   the minimum-diameter geometry.
//!
//! If these metrics vary a lot across dK-graphs (probe with rewiring and
//! measure the spread), `d` is not constraining enough for the study at
//! hand; if they barely move, it is. [`dk_space_gap`] packages that
//! procedure.

use crate::generate::rewire::{randomize, RewireOptions};
use dk_graph::{bfs_distances, Graph};
use rand::Rng;

/// Pearson correlation of the degree pairs `(deg u, deg v)` over all
/// unordered node pairs at shortest-path distance exactly `dist`.
///
/// `dist = 1` recovers (edge-wise) assortativity-style correlation;
/// `dist = 2` is the `P_3`-defined quantity the paper's `S2` summarizes.
/// Returns `None` when fewer than 2 pairs exist or variance vanishes.
///
/// Cost: one BFS per node — O(n·m); intended for diagnostic runs, not
/// inner loops.
pub fn degree_correlation_at_distance(g: &Graph, dist: u32) -> Option<f64> {
    assert!(dist >= 1, "distance must be positive");
    let n = g.node_count();
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    let mut count = 0u64;
    for u in 0..n as u32 {
        let d = bfs_distances(g, u);
        for v in (u + 1)..n as u32 {
            if d[v as usize] == dist {
                let x = g.degree(u) as f64;
                let y = g.degree(v) as f64;
                // symmetrize: count the pair in both orientations so the
                // correlation is orientation-free
                sx += x + y;
                sy += x + y;
                sxx += x * x + y * y;
                syy += y * y + x * x;
                sxy += 2.0 * x * y;
                count += 2;
            }
        }
    }
    if count < 2 {
        return None;
    }
    let cf = count as f64;
    let cov = sxy / cf - (sx / cf) * (sy / cf);
    let var_x = sxx / cf - (sx / cf).powi(2);
    let var_y = syy / cf - (sy / cf).powi(2);
    if var_x <= 1e-15 || var_y <= 1e-15 {
        return None;
    }
    Some(cov / (var_x * var_y).sqrt())
}

/// Number of cliques of size `d + 1` ("d-simplices"):
/// `d = 1` → edges, `d = 2` → triangles, `d = 3` → K4 count.
///
/// K4 counting runs over edges × common-neighborhood pairs —
/// O(Σ_e (deg·log)) with small constants on sparse graphs.
pub fn simplex_concentration(g: &Graph, d: u8) -> u64 {
    match d {
        1 => g.edge_count() as u64,
        2 => dk_metrics::clustering::triangle_count(g) as u64,
        3 => count_k4(g),
        other => panic!("simplex concentration implemented for d in 1..=3, got {other}"),
    }
}

fn count_k4(g: &Graph) -> u64 {
    // For each edge (u,v): collect common neighbors; each adjacent pair
    // inside that set closes a K4. Each K4 has 6 edges; counted once per
    // edge with both remaining vertices as common neighbors → each K4 is
    // seen 6 times as (edge, pair).
    let mut total = 0u64;
    for &(u, v) in g.edges() {
        let (a, b) = (g.neighbors(u), g.neighbors(v));
        let mut common: Vec<u32> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        for x in 0..common.len() {
            for y in (x + 1)..common.len() {
                if g.has_edge(common[x], common[y]) {
                    total += 1;
                }
            }
        }
    }
    debug_assert_eq!(total % 6, 0, "each K4 must be seen exactly 6 times");
    total / 6
}

/// Spread of the two §4.3 extreme metrics across the dK-graph class of
/// `g`, probed with `probes` independent dK-randomizations.
#[derive(Clone, Copy, Debug)]
pub struct SpaceGap {
    /// Min/max of `degree_correlation_at_distance(·, d)` over the probes
    /// (None when undefined on some probe).
    pub correlation_range: Option<(f64, f64)>,
    /// Min/max of the d-simplex count over the probes.
    pub simplex_range: (u64, u64),
}

impl SpaceGap {
    /// A crude scalar: relative simplex spread, `(max−min)/max(1,max)`.
    pub fn simplex_spread(&self) -> f64 {
        let (lo, hi) = self.simplex_range;
        (hi - lo) as f64 / (hi.max(1)) as f64
    }
}

/// Runs the §4.3 procedure: generate `probes` dK-random graphs of `g`
/// and report the ranges of the two extreme metrics at level `d`
/// (i.e. metrics defined by `P_{d+1}`).
pub fn dk_space_gap<R: Rng + ?Sized>(
    g: &Graph,
    d: u8,
    probes: usize,
    opts: &RewireOptions,
    rng: &mut R,
) -> SpaceGap {
    assert!((1..=2).contains(&d), "space gap implemented for d in 1..=2");
    let mut corr: Vec<f64> = Vec::new();
    let mut simplices: Vec<u64> = Vec::new();
    let mut all_corr_defined = true;
    for _ in 0..probes.max(1) {
        let mut h = g.clone();
        randomize(&mut h, d, opts, rng);
        match degree_correlation_at_distance(&h, d as u32) {
            Some(c) => corr.push(c),
            None => all_corr_defined = false,
        }
        simplices.push(simplex_concentration(&h, d + 1));
    }
    let correlation_range = if all_corr_defined && !corr.is_empty() {
        let lo = corr.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = corr.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    } else {
        None
    };
    let lo = *simplices.iter().min().expect("probes ≥ 1");
    let hi = *simplices.iter().max().expect("probes ≥ 1");
    SpaceGap {
        correlation_range,
        simplex_range: (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simplex_counts_on_classics() {
        let k5 = builders::complete(5);
        assert_eq!(simplex_concentration(&k5, 1), 10);
        assert_eq!(simplex_concentration(&k5, 2), 10);
        assert_eq!(simplex_concentration(&k5, 3), 5); // C(5,4)
        let k4 = builders::complete(4);
        assert_eq!(simplex_concentration(&k4, 3), 1);
        assert_eq!(simplex_concentration(&builders::petersen(), 2), 0);
        assert_eq!(simplex_concentration(&builders::petersen(), 3), 0);
        // karate: known 45 triangles, 11 K4s
        let karate = builders::karate_club();
        assert_eq!(simplex_concentration(&karate, 2), 45);
        assert_eq!(simplex_concentration(&karate, 3), 11);
    }

    #[test]
    #[should_panic(expected = "1..=3")]
    fn simplex_rejects_bad_d() {
        simplex_concentration(&builders::path(3), 4);
    }

    #[test]
    fn correlation_at_distance_one_tracks_assortativity_sign() {
        // star: maximally disassortative at distance 1
        let star = builders::star(6);
        let c = degree_correlation_at_distance(&star, 1).unwrap();
        assert!((c + 1.0).abs() < 1e-9, "c = {c}");
        // regular graphs: undefined (zero variance)
        assert_eq!(degree_correlation_at_distance(&builders::cycle(6), 1), None);
    }

    #[test]
    fn correlation_at_distance_two_on_star_is_undefined() {
        // at distance 2 all pairs are leaf–leaf (degree 1 ↔ 1): zero var
        let star = builders::star(6);
        assert_eq!(degree_correlation_at_distance(&star, 2), None);
    }

    #[test]
    fn correlation_at_distance_two_on_double_star() {
        // hub−hub joined; leaves at distance 2 from the opposite hub and
        // from sibling leaves: mixture of (1, high) and (1,1) pairs →
        // negative correlation (high degrees pair with low).
        let g =
            Graph::from_edges(8, [(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)]).unwrap();
        let c = degree_correlation_at_distance(&g, 2).unwrap();
        assert!(c < 0.0, "c = {c}");
    }

    #[test]
    fn space_gap_shrinks_from_1k_to_2k() {
        // §4.3's whole point: the simplex (triangle) spread across
        // 1K-graphs exceeds the spread across 2K-graphs... on karate the
        // triangle count is partly structural, so compare spreads.
        let g = builders::karate_club();
        let opts = RewireOptions::default();
        let mut rng = StdRng::seed_from_u64(4);
        let gap1 = dk_space_gap(&g, 1, 6, &opts, &mut rng);
        let gap2 = dk_space_gap(&g, 2, 6, &opts, &mut rng);
        assert!(
            gap2.simplex_range.1 - gap2.simplex_range.0
                <= gap1.simplex_range.1 - gap1.simplex_range.0,
            "2K spread {:?} must not exceed 1K spread {:?}",
            gap2.simplex_range,
            gap1.simplex_range
        );
    }

    #[test]
    fn k4_brute_force_oracle() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let mut g = Graph::with_nodes(12);
            for _ in 0..30 {
                let u = rng.gen_range(0..12u32);
                let v = rng.gen_range(0..12u32);
                if u != v {
                    let _ = g.try_add_edge(u, v);
                }
            }
            let fast = simplex_concentration(&g, 3);
            // brute force over all 4-subsets
            let mut slow = 0u64;
            let n = g.node_count() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        for d in (c + 1)..n {
                            if g.has_edge(a, b)
                                && g.has_edge(a, c)
                                && g.has_edge(a, d)
                                && g.has_edge(b, c)
                                && g.has_edge(b, d)
                                && g.has_edge(c, d)
                            {
                                slow += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(fast, slow);
        }
    }
}

//! Double-edge-swap move records: sampling, dry-run validation, and the
//! (checked and unchecked) mutating paths.

use dk_graph::{canon_edge, Graph};
use rand::Rng;

/// Which swaps the sampler may propose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProposalKind {
    /// Any simple-graph-valid double-edge swap. Preserves every node's
    /// degree (1K-preserving).
    #[default]
    Plain,
    /// Only swaps whose endpoint degrees satisfy Figure 4's condition
    /// `deg(b) = deg(d) ∨ deg(a) = deg(c)`, which conserve the edge
    /// degree classes and therefore the JDD (2K-preserving).
    JddPreserving,
}

/// Why a double-edge swap cannot be applied to a simple graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapInvalid {
    /// Fewer than two edges — no swap exists.
    NeedTwoEdges,
    /// A rewired pair shares its endpoints (`a = d` or `c = b`): the
    /// swap would create a self-loop.
    SelfLoop,
    /// A replacement edge is already present: the swap would create a
    /// parallel edge.
    EdgeExists,
    /// An edge slated for removal is absent (a stale record re-validated
    /// against a graph that has moved on).
    MissingEdge,
    /// Both removals name the same edge.
    DuplicateEdge,
    /// The swap would change the JDD although the sampler is restricted
    /// to [`ProposalKind::JddPreserving`] moves.
    ClassMismatch,
}

/// One proposed double-edge swap, fully explicit: the edges it removes,
/// the edges it adds, and the probabilities of proposing this move
/// (`forward_prob`, from the current state) and its exact inverse
/// (`reverse_prob`, from the post-move state) under the sampler that
/// produced it. The Metropolis–Hastings ratio `q_rev/q_fwd` comes
/// straight off the record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveProposal {
    /// Edges removed: `(a,b)` and `(c,d)` in the sampled orientation.
    pub remove: [(u32, u32); 2],
    /// Edges added: `(a,d)` and `(c,b)`.
    pub add: [(u32, u32); 2],
    /// Probability the sampler proposes exactly this move.
    pub forward_prob: f64,
    /// Probability the sampler, run on the post-move graph, proposes the
    /// inverse move.
    pub reverse_prob: f64,
}

impl MoveProposal {
    /// All four touched edges in canonical orientation: the two removed,
    /// then the two added.
    pub fn touched_edges(&self) -> [(u32, u32); 4] {
        let c = |e: (u32, u32)| canon_edge(e.0, e.1);
        [
            c(self.remove[0]),
            c(self.remove[1]),
            c(self.add[0]),
            c(self.add[1]),
        ]
    }

    /// The Metropolis–Hastings proposal ratio `q_rev / q_fwd`.
    pub fn proposal_ratio(&self) -> f64 {
        self.reverse_prob / self.forward_prob
    }

    /// The exact inverse move (adds become removals and vice versa, with
    /// the proposal probabilities swapped accordingly).
    pub fn reverse(&self) -> MoveProposal {
        MoveProposal {
            remove: self.add,
            add: self.remove,
            forward_prob: self.reverse_prob,
            reverse_prob: self.forward_prob,
        }
    }
}

/// Samples one double-edge-swap proposal: two distinct uniform edges plus
/// a uniform orientation of the second, validated against `g` (presence
/// tests are O(1) via the canonical edge index). Degrees are read from
/// the caller's frozen degree vector `deg` — every move this sampler
/// produces preserves all degrees, so the vector never goes stale.
///
/// The sampler always consumes exactly three RNG draws, whether or not
/// the candidate validates, so rejection never desynchronizes a seeded
/// stream.
///
/// Both probabilities on the returned record equal `1/(m(m−1))`: the
/// unordered pair is hit by two of the `m(m−1)` ordered draws, the
/// orientation coin is `1/2`, and the inverse move is sampled from the
/// post-move graph (also `m` edges) by the identical computation. The
/// symmetry is asserted by the MH-balance tests; it is what lets a
/// neutral-temperature chain sample 2K-graphs uniformly (Bassler et
/// al.).
pub fn propose_swap<R: Rng + ?Sized>(
    g: &Graph,
    deg: &[u32],
    kind: ProposalKind,
    rng: &mut R,
) -> Result<MoveProposal, SwapInvalid> {
    let m = g.edge_count();
    if m < 2 {
        return Err(SwapInvalid::NeedTwoEdges);
    }
    let i = rng.gen_range(0..m);
    let j = rng.gen_range(0..m - 1);
    let j = if j >= i { j + 1 } else { j };
    let (a, b) = g.edge_at(i);
    let e2 = g.edge_at(j);
    // random orientation of the second edge covers both swap variants
    let (c, d) = if rng.gen_bool(0.5) { e2 } else { (e2.1, e2.0) };
    if a == d || c == b {
        return Err(SwapInvalid::SelfLoop);
    }
    if g.has_edge_indexed(a, d) || g.has_edge_indexed(c, b) {
        return Err(SwapInvalid::EdgeExists);
    }
    if kind == ProposalKind::JddPreserving
        && deg[b as usize] != deg[d as usize]
        && deg[a as usize] != deg[c as usize]
    {
        return Err(SwapInvalid::ClassMismatch);
    }
    let q = 1.0 / (m as f64 * (m - 1) as f64);
    Ok(MoveProposal {
        remove: [(a, b), (c, d)],
        add: [(a, d), (c, b)],
        forward_prob: q,
        reverse_prob: q,
    })
}

/// Validation outcome of a proposal against a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DryRunVerdict {
    /// The mutating path would succeed.
    Valid,
    /// The mutating path would refuse, for this reason.
    Invalid(SwapInvalid),
}

impl DryRunVerdict {
    /// `true` for [`DryRunVerdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, DryRunVerdict::Valid)
    }
}

/// Checks a proposal against `g` **without mutating it**. The verdict
/// matches [`apply_swap_checked`] exactly: `Valid` iff applying would
/// succeed (the equivalence suite asserts this over random records,
/// stale and fresh).
pub fn dry_run(g: &Graph, p: &MoveProposal) -> DryRunVerdict {
    let [(a, b), (c, d)] = p.remove;
    if canon_edge(a, b) == canon_edge(c, d) {
        return DryRunVerdict::Invalid(SwapInvalid::DuplicateEdge);
    }
    if !g.has_edge_indexed(a, b) || !g.has_edge_indexed(c, d) {
        return DryRunVerdict::Invalid(SwapInvalid::MissingEdge);
    }
    if a == d || c == b {
        return DryRunVerdict::Invalid(SwapInvalid::SelfLoop);
    }
    if g.has_edge_indexed(a, d) || g.has_edge_indexed(c, b) {
        return DryRunVerdict::Invalid(SwapInvalid::EdgeExists);
    }
    DryRunVerdict::Valid
}

/// Applies a **validated** proposal.
///
/// # Panics
/// Panics if the proposal does not validate against `g` — chain
/// internals only call this on records freshly produced by
/// [`propose_swap`]. External callers should prefer
/// [`apply_swap_checked`].
pub fn apply_swap(g: &mut Graph, p: &MoveProposal) {
    for &(u, v) in &p.remove {
        g.remove_edge(u, v).expect("validated swap: edge present");
    }
    for &(u, v) in &p.add {
        g.add_edge(u, v).expect("validated swap: slot free");
    }
}

/// The checked mutating path: dry-run, then apply. On an invalid verdict
/// the graph is untouched and the typed reason is returned.
pub fn apply_swap_checked(g: &mut Graph, p: &MoveProposal) -> Result<(), SwapInvalid> {
    match dry_run(g, p) {
        DryRunVerdict::Valid => {
            apply_swap(g, p);
            Ok(())
        }
        DryRunVerdict::Invalid(reason) => Err(reason),
    }
}

/// Reverts a just-applied proposal (applies its exact inverse).
///
/// # Panics
/// Panics if the graph is not in the proposal's post-move state.
pub fn revert_swap(g: &mut Graph, p: &MoveProposal) {
    for &(u, v) in &p.add {
        g.remove_edge(u, v).expect("reverting a just-applied swap");
    }
    for &(u, v) in &p.remove {
        g.add_edge(u, v).expect("reverting a just-applied swap");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frozen(g: &Graph) -> Vec<u32> {
        g.degrees().iter().map(|&d| d as u32).collect()
    }

    #[test]
    fn proposal_probabilities_are_symmetric_and_uniform() {
        let g = builders::karate_club();
        let deg = frozen(&g);
        let m = g.edge_count() as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = 0;
        while seen < 50 {
            if let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) {
                assert_eq!(p.forward_prob, p.reverse_prob);
                assert_eq!(p.forward_prob, 1.0 / (m * (m - 1.0)));
                assert_eq!(p.proposal_ratio(), 1.0);
                seen += 1;
            }
        }
    }

    #[test]
    fn apply_then_revert_roundtrips() {
        let g0 = builders::karate_club();
        let deg = frozen(&g0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut done = 0;
        while done < 30 {
            let Ok(p) = propose_swap(&g0, &deg, ProposalKind::Plain, &mut rng) else {
                continue;
            };
            let mut g = g0.clone();
            apply_swap(&mut g, &p);
            assert_ne!(g, g0);
            revert_swap(&mut g, &p);
            assert_eq!(g, g0);
            done += 1;
        }
    }

    #[test]
    fn reverse_of_reverse_is_identity() {
        let g = builders::karate_club();
        let deg = frozen(&g);
        let mut rng = StdRng::seed_from_u64(3);
        loop {
            if let Ok(p) = propose_swap(&g, &deg, ProposalKind::Plain, &mut rng) {
                assert_eq!(p.reverse().reverse(), p);
                // the reverse validates against the post-move graph
                let mut h = g.clone();
                apply_swap(&mut h, &p);
                assert_eq!(dry_run(&h, &p.reverse()), DryRunVerdict::Valid);
                break;
            }
        }
    }

    #[test]
    fn dry_run_catches_each_reason() {
        let g = builders::karate_club();
        // karate: (0,1) and (0,2) are edges
        let stale = MoveProposal {
            remove: [(30, 31), (32, 33)],
            add: [(30, 33), (32, 31)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        // (30,31) is not an edge of karate
        assert_eq!(
            dry_run(&g, &stale),
            DryRunVerdict::Invalid(SwapInvalid::MissingEdge)
        );
        let dup = MoveProposal {
            remove: [(0, 1), (1, 0)],
            add: [(0, 0), (1, 1)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        assert_eq!(
            dry_run(&g, &dup),
            DryRunVerdict::Invalid(SwapInvalid::DuplicateEdge)
        );
        let self_loop = MoveProposal {
            remove: [(0, 1), (2, 0)],
            add: [(0, 0), (2, 1)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        assert_eq!(
            dry_run(&g, &self_loop),
            DryRunVerdict::Invalid(SwapInvalid::SelfLoop)
        );
        // (0,1),(2,3) are edges; (0,3)?? karate has 0-3 — pick targets that
        // collide with existing edges: swap (0,1),(3,2) → (0,2),(3,1): both
        // 0-2 and 1-3 exist in karate, so the add collides.
        let collide = MoveProposal {
            remove: [(0, 1), (3, 2)],
            add: [(0, 2), (3, 1)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        assert_eq!(
            dry_run(&g, &collide),
            DryRunVerdict::Invalid(SwapInvalid::EdgeExists)
        );
    }

    #[test]
    fn checked_apply_matches_dry_run_and_preserves_graph_on_refusal() {
        let g0 = builders::karate_club();
        let bad = MoveProposal {
            remove: [(30, 31), (32, 33)],
            add: [(30, 33), (32, 31)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        let mut g = g0.clone();
        assert_eq!(
            apply_swap_checked(&mut g, &bad),
            Err(SwapInvalid::MissingEdge)
        );
        assert_eq!(g, g0);
    }

    #[test]
    fn jdd_preserving_kind_rejects_class_changing_orientations() {
        let g = builders::karate_club();
        let deg = frozen(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let mut checked = 0;
        while checked < 200 {
            if let Ok(p) = propose_swap(&g, &deg, ProposalKind::JddPreserving, &mut rng) {
                let [(a, b), (c, d)] = p.remove;
                assert!(
                    deg[b as usize] == deg[d as usize] || deg[a as usize] == deg[c as usize],
                    "JDD-preserving sampler produced a class-changing move"
                );
            }
            checked += 1;
        }
    }

    #[test]
    fn touched_edges_are_canonical() {
        let p = MoveProposal {
            remove: [(5, 2), (7, 1)],
            add: [(5, 1), (7, 2)],
            forward_prob: 1.0,
            reverse_prob: 1.0,
        };
        assert_eq!(p.touched_edges(), [(2, 5), (1, 7), (1, 5), (2, 7)]);
    }
}

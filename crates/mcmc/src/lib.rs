//! # dk-mcmc — incremental-move double-edge-swap MCMC engine
//!
//! The generation side of the dK reproduction (targeting and
//! dK-preserving randomization, paper §4.1.4) is a Markov chain over
//! simple graphs whose only move is the double-edge swap
//! `{a,b},{c,d} → {a,d},{c,b}`. This crate is that chain, factored out
//! of `dk-core` so every move is an **explicit, inspectable record**
//! instead of a fused sample-validate-mutate loop, and so per-move costs
//! are O(1) at 10⁶-node scale.
//!
//! ## The move / dry-run / delta contract
//!
//! * **Move records** ([`MoveProposal`]): a proposal names the two edges
//!   it removes, the two it adds, and its forward/reverse proposal
//!   probabilities under the sampler that produced it. Nothing about a
//!   proposal is implicit — it can be logged, replayed against another
//!   graph, or handed to the validator below without touching the chain.
//! * **Dry-run validation** ([`dry_run`]): a proposal can be checked
//!   against any graph without mutating it; the verdict
//!   ([`DryRunVerdict`]) carries a typed reason ([`SwapInvalid`]) on
//!   failure. The mutating path ([`apply_swap_checked`]) succeeds exactly
//!   when the dry run says `Valid` — the equivalence suite pins this.
//! * **Census deltas** ([`SwapObjective`]): the chain never re-extracts
//!   a distribution. An objective inspects a validated proposal, reports
//!   the distance change `ΔD` of the move (for 2K targets this is four
//!   O(1) histogram bumps on the frozen endpoint degrees; see
//!   `dk_core::generate::delta`), and folds the pending delta into its
//!   bookkeeping **only when the chain accepts** — `commit` on accept,
//!   `discard` (plus an engine-side revert of any tentative mutation) on
//!   reject.
//!
//! ## Acceptance
//!
//! Acceptance is Metropolis–Hastings on `ΔD` at a configurable
//! temperature, with the proposal ratio `q_rev/q_fwd` taken from the
//! move record (Bassler et al., "Exact sampling of graphs with
//! prescribed degree correlations"). The uniform pair-plus-orientation
//! sampler used here is symmetric — `q_rev = q_fwd` — so plain runs
//! reduce to classic Metropolis; the probabilities stay explicit so any
//! future non-uniform sampler (degree-biased pair selection, fallback
//! scans) keeps the stationary distribution honest by construction.
//!
//! ## Determinism
//!
//! A chain owns its RNG stream: seed it once ([`McmcChain::seeded`]) and
//! every subsequent draw — edge pair, orientation, acceptance coin — is
//! taken from that stream in a fixed order, so a run is exactly
//! re-runnable and **resumable**: running `k` steps and then `m` steps
//! is byte-identical to running `k + m` steps. Edge-presence tests go
//! through the graph's canonical edge index
//! ([`dk_graph::Graph::has_edge_indexed`], the deterministic-hasher set
//! every mutation already maintains), so validity checks are O(1)
//! regardless of degree.

#![forbid(unsafe_code)]

mod chain;
mod proposal;

pub use chain::{
    ChainOptions, ChainStats, DistanceTrace, Evaluation, McmcChain, NullObjective, RunBudget,
    StepOutcome, SwapObjective,
};
pub use proposal::{
    apply_swap, apply_swap_checked, dry_run, propose_swap, revert_swap, DryRunVerdict,
    MoveProposal, ProposalKind, SwapInvalid,
};

//! The seeded, resumable chain: propose → dry-run-validated record →
//! Metropolis–Hastings accept/reject → delta commit, with acceptance
//! statistics and a convergence probe on the objective's distance.

use crate::proposal::{
    apply_swap, propose_swap, revert_swap, MoveProposal, ProposalKind, SwapInvalid,
};
use dk_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an objective reports about one validated proposal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Change `ΔD` of the objective's distance if the move is applied.
    pub delta_d: f64,
    /// `true` if evaluation tentatively applied the move to the graph
    /// (needed when `ΔD` can only be measured on the mutated state, e.g.
    /// tracked 3K deltas). The chain reverts the mutation on rejection
    /// and skips its own apply on acceptance.
    pub applied: bool,
}

/// A census objective driving the chain: evaluates the distance change
/// of each validated proposal, and folds the resulting delta into its
/// bookkeeping only when the chain accepts.
///
/// Contract: the chain calls `evaluate` once per validated proposal,
/// then exactly one of `commit` (move accepted — the graph is in the
/// post-move state) or `discard` (move rejected — the graph has been
/// restored). `distance` reports the current distance to the target, if
/// the objective has one; the chain records it into its
/// [`DistanceTrace`] after every accepted move and uses it for
/// [`RunBudget::stop_at_zero`].
pub trait SwapObjective {
    /// Evaluates `ΔD` for a validated proposal. May tentatively mutate
    /// `g` (see [`Evaluation::applied`]); must not mutate its own
    /// accepted-state bookkeeping until `commit`.
    fn evaluate(&mut self, g: &mut Graph, deg: &[u32], p: &MoveProposal) -> Evaluation;
    /// The chain accepted the evaluated move: fold the pending delta in.
    fn commit(&mut self);
    /// The chain rejected the evaluated move: drop the pending delta.
    fn discard(&mut self);
    /// Current distance to the target (`None` for unconstrained
    /// randomizing objectives).
    fn distance(&self) -> Option<f64>;
}

/// The unconstrained objective: every valid move is neutral (`ΔD = 0`).
/// Drives plain dK-randomizing runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObjective;

impl SwapObjective for NullObjective {
    fn evaluate(&mut self, _g: &mut Graph, _deg: &[u32], _p: &MoveProposal) -> Evaluation {
        Evaluation {
            delta_d: 0.0,
            applied: false,
        }
    }
    fn commit(&mut self) {}
    fn discard(&mut self) {}
    fn distance(&self) -> Option<f64> {
        None
    }
}

/// Chain configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChainOptions {
    /// Metropolis temperature; `0.0` = strict descent (paper default).
    pub temperature: f64,
    /// Accept `ΔD = 0` moves (plateau walks aid mixing). Default `true`.
    pub accept_neutral: bool,
    /// Which swaps the sampler proposes.
    pub proposal: ProposalKind,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            temperature: 0.0,
            accept_neutral: true,
            proposal: ProposalKind::Plain,
        }
    }
}

/// Step budget of one [`McmcChain::run`] call.
#[derive(Clone, Copy, Debug)]
pub struct RunBudget {
    /// Maximum attempted steps.
    pub max_steps: u64,
    /// Give up after this many attempts without an accepted improving
    /// move (`None` = never).
    pub patience: Option<u64>,
    /// Stop as soon as the objective reports distance `0.0`.
    pub stop_at_zero: bool,
}

impl RunBudget {
    /// A plain fixed-step budget (no patience, no early stop) — the
    /// randomizing-run shape.
    pub fn steps(max_steps: u64) -> Self {
        RunBudget {
            max_steps,
            patience: None,
            stop_at_zero: false,
        }
    }
}

/// Attempt/acceptance counters, with rejections broken down by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Steps attempted.
    pub attempts: u64,
    /// Moves accepted and applied.
    pub accepted: u64,
    /// Proposals that failed structural validation (self-loop, parallel
    /// edge, degree-class mismatch, …).
    pub rejected_invalid: u64,
    /// Valid proposals vetoed by the caller's filter (external
    /// constraints, paper §6).
    pub rejected_vetoed: u64,
    /// Valid proposals turned down by Metropolis–Hastings.
    pub rejected_metropolis: u64,
}

impl ChainStats {
    /// Accepted fraction of all attempts (0 when nothing was attempted).
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    fn since(&self, earlier: &ChainStats) -> ChainStats {
        ChainStats {
            attempts: self.attempts - earlier.attempts,
            accepted: self.accepted - earlier.accepted,
            rejected_invalid: self.rejected_invalid - earlier.rejected_invalid,
            rejected_vetoed: self.rejected_vetoed - earlier.rejected_vetoed,
            rejected_metropolis: self.rejected_metropolis - earlier.rejected_metropolis,
        }
    }
}

/// Outcome of one attempted step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StepOutcome {
    /// Move applied; `delta_d` is the objective change.
    Accepted {
        /// Objective change of the applied move.
        delta_d: f64,
    },
    /// The sampled candidate failed structural validation.
    Invalid(SwapInvalid),
    /// The caller's filter vetoed a valid candidate.
    Vetoed,
    /// Metropolis–Hastings rejected the evaluated move.
    Rejected {
        /// Objective change the rejected move would have caused.
        delta_d: f64,
    },
}

/// Convergence probe on the objective's distance: a sliding window over
/// the distances recorded after each accepted move. The chain has
/// converged (mixed to its plateau) when a full window shows no relative
/// improvement beyond a tolerance.
#[derive(Clone, Debug)]
pub struct DistanceTrace {
    window: std::collections::VecDeque<f64>,
    cap: usize,
    recorded: u64,
}

impl DistanceTrace {
    /// Window length of the probe.
    pub const DEFAULT_WINDOW: usize = 1024;

    fn new(cap: usize) -> Self {
        DistanceTrace {
            window: std::collections::VecDeque::with_capacity(cap),
            cap,
            recorded: 0,
        }
    }

    fn record(&mut self, d: f64) {
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(d);
        self.recorded += 1;
    }

    /// Total distances recorded (one per accepted move with a distance).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Most recently recorded distance.
    pub fn last(&self) -> Option<f64> {
        self.window.back().copied()
    }

    /// Relative improvement across the window, `(first − last)/first`;
    /// `None` until the window is full. A converged (or stalled) chain
    /// reports ≈ 0; distance 0 reports 0.
    pub fn relative_improvement(&self) -> Option<f64> {
        if self.window.len() < self.cap {
            return None;
        }
        let first = *self.window.front().expect("window is full");
        let last = *self.window.back().expect("window is full");
        if first == 0.0 {
            return Some(0.0);
        }
        Some((first - last) / first)
    }

    /// `true` once a full window shows relative improvement below `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        self.relative_improvement()
            .is_some_and(|imp| imp.abs() < tol)
    }
}

/// Metropolis–Hastings acceptance on a distance change, including the
/// proposal ratio `q_rev/q_fwd` at positive temperature. At `T = 0` the
/// chain is in strict-descent (plus optional plateau) mode and the ratio
/// is irrelevant — there is no stationary distribution to keep honest.
fn metropolis<R: Rng + ?Sized>(delta: f64, ratio: f64, opts: &ChainOptions, rng: &mut R) -> bool {
    if opts.temperature > 0.0 {
        let p = ((-delta / opts.temperature).exp() * ratio).min(1.0);
        if p >= 1.0 {
            true
        } else {
            rng.gen_bool(p.max(0.0))
        }
    } else if delta < 0.0 {
        true
    } else if delta == 0.0 {
        opts.accept_neutral
    } else {
        false
    }
}

/// A seeded, resumable double-edge-swap chain over one graph.
///
/// The chain owns the graph, the frozen degree vector (every move it
/// makes is degree-preserving, so the vector never goes stale), its RNG
/// stream, cumulative [`ChainStats`], and a [`DistanceTrace`] fed by the
/// driving objective. Runs compose: `run(k)` then `run(m)` is
/// byte-identical to `run(k + m)`.
#[derive(Clone, Debug)]
pub struct McmcChain<R> {
    graph: Graph,
    deg: Vec<u32>,
    rng: R,
    opts: ChainOptions,
    stats: ChainStats,
    trace: DistanceTrace,
}

impl McmcChain<StdRng> {
    /// A chain owning a fresh RNG stream derived from `seed`.
    pub fn seeded(graph: Graph, seed: u64, opts: ChainOptions) -> Self {
        McmcChain::from_rng(graph, StdRng::seed_from_u64(seed), opts)
    }
}

impl<R: Rng> McmcChain<R> {
    /// A chain over `graph` drawing from the given RNG (used by callers
    /// that thread one stream through a bootstrap + targeting pipeline).
    pub fn from_rng(graph: Graph, rng: R, opts: ChainOptions) -> Self {
        let deg = graph.degrees().iter().map(|&d| d as u32).collect();
        McmcChain {
            graph,
            deg,
            rng,
            opts,
            stats: ChainStats::default(),
            trace: DistanceTrace::new(DistanceTrace::DEFAULT_WINDOW),
        }
    }

    /// The chain's current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Cumulative statistics over the chain's whole lifetime.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// The convergence probe over the objective's distance.
    pub fn trace(&self) -> &DistanceTrace {
        &self.trace
    }

    /// `true` once the distance trace shows a full window of relative
    /// improvement below `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        self.trace.converged(tol)
    }

    /// Consumes the chain, returning the final graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Attempts one move.
    pub fn step<O: SwapObjective>(&mut self, obj: &mut O) -> StepOutcome {
        self.step_filtered(obj, &|_, _| true)
    }

    /// Attempts one move, letting `veto` reject valid candidates before
    /// evaluation (external rewiring constraints, paper §6).
    pub fn step_filtered<O, F>(&mut self, obj: &mut O, veto: &F) -> StepOutcome
    where
        O: SwapObjective,
        F: Fn(&Graph, &MoveProposal) -> bool,
    {
        self.stats.attempts += 1;
        let p = match propose_swap(&self.graph, &self.deg, self.opts.proposal, &mut self.rng) {
            Ok(p) => p,
            Err(reason) => {
                self.stats.rejected_invalid += 1;
                return StepOutcome::Invalid(reason);
            }
        };
        if !veto(&self.graph, &p) {
            self.stats.rejected_vetoed += 1;
            return StepOutcome::Vetoed;
        }
        let ev = obj.evaluate(&mut self.graph, &self.deg, &p);
        if metropolis(ev.delta_d, p.proposal_ratio(), &self.opts, &mut self.rng) {
            if !ev.applied {
                apply_swap(&mut self.graph, &p);
            }
            obj.commit();
            self.stats.accepted += 1;
            if let Some(d) = obj.distance() {
                self.trace.record(d);
            }
            StepOutcome::Accepted {
                delta_d: ev.delta_d,
            }
        } else {
            if ev.applied {
                revert_swap(&mut self.graph, &p);
            }
            obj.discard();
            self.stats.rejected_metropolis += 1;
            StepOutcome::Rejected {
                delta_d: ev.delta_d,
            }
        }
    }

    /// Runs until the budget is exhausted (or the target is reached /
    /// patience runs out). Returns the statistics of **this run** —
    /// cumulative counters are on [`McmcChain::stats`].
    pub fn run<O: SwapObjective>(&mut self, obj: &mut O, budget: &RunBudget) -> ChainStats {
        self.run_filtered(obj, budget, &|_, _| true)
    }

    /// [`McmcChain::run`] with a per-move veto filter.
    pub fn run_filtered<O, F>(&mut self, obj: &mut O, budget: &RunBudget, veto: &F) -> ChainStats
    where
        O: SwapObjective,
        F: Fn(&Graph, &MoveProposal) -> bool,
    {
        let before = self.stats;
        let mut since_improve = 0u64;
        for _ in 0..budget.max_steps {
            if budget.stop_at_zero && obj.distance() == Some(0.0) {
                break;
            }
            if let Some(p) = budget.patience {
                if since_improve >= p {
                    break;
                }
            }
            match self.step_filtered(obj, veto) {
                StepOutcome::Accepted { delta_d } if delta_d < 0.0 => since_improve = 0,
                _ => since_improve += 1,
            }
        }
        self.stats.since(&before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn resumable_runs_compose() {
        let g = builders::karate_club();
        let mut whole = McmcChain::seeded(g.clone(), 42, ChainOptions::default());
        whole.run(&mut NullObjective, &RunBudget::steps(2000));

        let mut split = McmcChain::seeded(g, 42, ChainOptions::default());
        split.run(&mut NullObjective, &RunBudget::steps(700));
        split.run(&mut NullObjective, &RunBudget::steps(1300));

        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.into_graph(), split.into_graph());
    }

    #[test]
    fn randomizing_run_preserves_degrees() {
        let g0 = builders::karate_club();
        let before = g0.degrees();
        let mut chain = McmcChain::seeded(g0, 7, ChainOptions::default());
        let run = chain.run(&mut NullObjective, &RunBudget::steps(3000));
        assert!(run.accepted > 500, "accepted {}", run.accepted);
        assert_eq!(
            run.attempts,
            run.accepted + run.rejected_invalid + run.rejected_vetoed + run.rejected_metropolis
        );
        let g = chain.into_graph();
        g.check_invariants().expect("simple-graph invariants hold");
        assert_eq!(g.degrees(), before);
    }

    #[test]
    fn vetoed_chain_leaves_graph_untouched() {
        let g0 = builders::karate_club();
        let mut chain = McmcChain::seeded(g0.clone(), 3, ChainOptions::default());
        let run = chain.run_filtered(&mut NullObjective, &RunBudget::steps(500), &|_, _| false);
        assert_eq!(run.accepted, 0);
        assert!(run.rejected_vetoed > 0);
        assert_eq!(chain.into_graph(), g0);
    }

    /// An objective that dislikes every move — exercises the tentative
    /// mutate-and-revert path.
    struct RejectAll {
        pending: u64,
        committed: u64,
    }

    impl SwapObjective for RejectAll {
        fn evaluate(&mut self, g: &mut Graph, _deg: &[u32], p: &MoveProposal) -> Evaluation {
            crate::proposal::apply_swap(g, p);
            self.pending += 1;
            Evaluation {
                delta_d: f64::INFINITY,
                applied: true,
            }
        }
        fn commit(&mut self) {
            self.committed += 1;
        }
        fn discard(&mut self) {}
        fn distance(&self) -> Option<f64> {
            None
        }
    }

    #[test]
    fn rejected_tentative_moves_are_reverted() {
        let g0 = builders::karate_club();
        let mut chain = McmcChain::seeded(g0.clone(), 11, ChainOptions::default());
        let mut obj = RejectAll {
            pending: 0,
            committed: 0,
        };
        let run = chain.run(&mut obj, &RunBudget::steps(800));
        assert_eq!(run.accepted, 0);
        assert!(obj.pending > 0, "no move was ever evaluated");
        assert_eq!(obj.committed, 0);
        assert!(run.rejected_metropolis > 0);
        assert_eq!(chain.into_graph(), g0);
    }

    #[test]
    fn trace_converges_at_zero_distance() {
        let mut t = DistanceTrace::new(4);
        for _ in 0..3 {
            t.record(0.0);
        }
        assert!(!t.converged(0.01), "window not yet full");
        t.record(0.0);
        assert!(t.converged(0.01));
        assert_eq!(t.last(), Some(0.0));
        assert_eq!(t.recorded(), 4);
    }

    #[test]
    fn trace_sees_improvement_until_plateau() {
        let mut t = DistanceTrace::new(3);
        t.record(100.0);
        t.record(50.0);
        t.record(10.0);
        // 90% improvement across the window: not converged
        assert!(!t.converged(0.05));
        t.record(10.0);
        t.record(10.0);
        // window now [10, 10, 10]
        assert!(t.converged(0.05));
    }

    #[test]
    fn patience_stops_a_stalled_run() {
        let g = builders::karate_club();
        let mut chain = McmcChain::seeded(g, 5, ChainOptions::default());
        let budget = RunBudget {
            max_steps: 100_000,
            patience: Some(50),
            stop_at_zero: false,
        };
        // NullObjective never improves (ΔD is always 0), so patience
        // must cut the run short.
        let run = chain.run(&mut NullObjective, &budget);
        assert_eq!(run.attempts, 50);
    }
}

//! Paper-style table rendering.
//!
//! Every reproduction binary prints a table whose rows are metrics
//! (Table 2 notation) and whose columns are graph variants — the same
//! layout as the paper's Tables 3, 4, 6, 7, 8.

use dk_metrics::MetricReport;

/// A metric-rows × variant-columns table.
#[derive(Clone, Debug, Default)]
pub struct MetricTable {
    columns: Vec<(String, MetricReport)>,
    /// Extra custom rows: (label, per-column values).
    extra_rows: Vec<(String, Vec<Option<f64>>)>,
}

impl MetricTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a variant column.
    pub fn push(&mut self, name: impl Into<String>, report: MetricReport) {
        self.columns.push((name.into(), report));
    }

    /// Appends a custom row (must supply one value per existing column).
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.columns.len(), "one value per column");
        self.extra_rows.push((label.into(), values));
    }

    /// Renders the table (fixed metric rows, then custom rows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = 12usize;
        let fmt_opt = |v: Option<f64>| -> String {
            match v {
                None => "-".to_string(),
                Some(x) if x.abs() >= 1000.0 => format!("{x:.0}"),
                Some(x) => format!("{x:.3}"),
            }
        };
        // header
        out.push_str(&format!("{:<10}", "metric"));
        for (name, _) in &self.columns {
            out.push_str(&format!("{name:>width$}"));
        }
        out.push('\n');
        type RowExtractor = Box<dyn Fn(&MetricReport) -> Option<f64>>;
        let rows: Vec<(&str, RowExtractor)> = vec![
            ("n", Box::new(|r: &MetricReport| Some(r.nodes as f64))),
            ("m", Box::new(|r: &MetricReport| Some(r.edges as f64))),
            ("k_avg", Box::new(|r: &MetricReport| Some(r.k_avg))),
            ("r", Box::new(|r: &MetricReport| Some(r.assortativity))),
            (
                "C_mean",
                Box::new(|r: &MetricReport| Some(r.mean_clustering)),
            ),
            ("d_avg", Box::new(|r: &MetricReport| r.avg_distance)),
            ("d_std", Box::new(|r: &MetricReport| r.distance_std)),
            ("lambda1", Box::new(|r: &MetricReport| r.lambda1)),
            ("lambdaN", Box::new(|r: &MetricReport| r.lambda_max)),
        ];
        for (label, getter) in rows {
            out.push_str(&format!("{label:<10}"));
            for (_, rep) in &self.columns {
                out.push_str(&format!("{:>width$}", fmt_opt(getter(rep))));
            }
            out.push('\n');
        }
        for (label, values) in &self.extra_rows {
            out.push_str(&format!("{label:<10}"));
            for v in values {
                out.push_str(&format!("{:>width$}", fmt_opt(*v)));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (metric, col1, col2, …).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("metric");
        for (name, _) in &self.columns {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        let emit = |out: &mut String, label: &str, vals: Vec<Option<f64>>| {
            out.push_str(label);
            for v in vals {
                out.push(',');
                if let Some(x) = v {
                    out.push_str(&format!("{x}"));
                }
            }
            out.push('\n');
        };
        emit(
            &mut out,
            "n",
            self.columns
                .iter()
                .map(|(_, r)| Some(r.nodes as f64))
                .collect(),
        );
        emit(
            &mut out,
            "m",
            self.columns
                .iter()
                .map(|(_, r)| Some(r.edges as f64))
                .collect(),
        );
        emit(
            &mut out,
            "k_avg",
            self.columns.iter().map(|(_, r)| Some(r.k_avg)).collect(),
        );
        emit(
            &mut out,
            "r",
            self.columns
                .iter()
                .map(|(_, r)| Some(r.assortativity))
                .collect(),
        );
        emit(
            &mut out,
            "C_mean",
            self.columns
                .iter()
                .map(|(_, r)| Some(r.mean_clustering))
                .collect(),
        );
        emit(
            &mut out,
            "d_avg",
            self.columns.iter().map(|(_, r)| r.avg_distance).collect(),
        );
        emit(
            &mut out,
            "d_std",
            self.columns.iter().map(|(_, r)| r.distance_std).collect(),
        );
        emit(
            &mut out,
            "lambda1",
            self.columns.iter().map(|(_, r)| r.lambda1).collect(),
        );
        emit(
            &mut out,
            "lambdaN",
            self.columns.iter().map(|(_, r)| r.lambda_max).collect(),
        );
        for (label, values) in &self.extra_rows {
            emit(&mut out, label, values.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn render_contains_all_columns_and_rows() {
        let mut t = MetricTable::new();
        t.push(
            "orig",
            MetricReport::compute_cheap(&builders::karate_club()),
        );
        t.push("rand", MetricReport::compute_cheap(&builders::petersen()));
        t.push_row("S2/S2max", vec![Some(0.95), Some(1.0)]);
        let s = t.render();
        assert!(s.contains("orig") && s.contains("rand"));
        assert!(s.contains("k_avg") && s.contains("S2/S2max"));
        // dashes for skipped metrics
        assert!(s.contains('-'));
        let csv = t.to_csv();
        assert!(csv.starts_with("metric,orig,rand"));
        assert_eq!(csv.lines().count(), 1 + 9 + 1);
    }

    #[test]
    #[should_panic(expected = "one value per column")]
    fn row_arity_checked() {
        let mut t = MetricTable::new();
        t.push("a", MetricReport::compute_cheap(&builders::path(3)));
        t.push_row("bad", vec![]);
    }
}

//! Ensemble execution for the reproduction binaries: run a
//! graph-producing closure across seeds and summarize the metric
//! batteries through the [`Analyzer`] facade.
//!
//! "Our results represent averages over 100 graphs generated with a
//! different random seed in each case" (paper §5).
//!
//! All fan-out goes through [`dk_metrics::Analyzer::run_ensemble`] (and
//! thus the deterministic runner `dk_graph::ensemble`): replica `i` is
//! always seeded from `(cfg.master_seed, i)` regardless of the thread
//! count, so `--threads 1` and `--threads N` produce identical tables
//! and CSVs.

use crate::Config;
use dk_graph::Graph;
use dk_metrics::{Analyzer, EnsembleSummary};
use rand::rngs::StdRng;

/// Runs `job(replica, rng)` for every configured seed, in parallel over
/// `cfg.threads` workers, returning results in replica order.
pub fn run<T, F>(cfg: &Config, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    dk_core::ensemble::run(cfg.seeds, cfg.master_seed, cfg.threads, job)
}

/// Runs `make` once per seed and summarizes the analyzer's battery:
/// per-metric mean/std/min/max over the ensemble.
///
/// `make` receives a seeded RNG and returns the graph to measure (GCC
/// extraction happens inside the analyzer). Members are computed in
/// parallel; the statistics are identical to the serial loop.
pub fn scalar_ensemble<F>(cfg: &Config, analyzer: &Analyzer, make: F) -> EnsembleSummary
where
    F: Fn(&mut StdRng) -> Graph + Sync,
{
    analyzer
        .clone()
        .threads(cfg.threads)
        .run_ensemble(cfg.seeds, cfg.master_seed, make)
}

/// Runs `make` once per seed and returns the full [`EnsembleSummary`] of
/// one series metric (registry name, e.g. `"d_x"`, `"c_k"`, `"b_k"`) —
/// per-key mean/std/min/max, the machine-readable form the figure
/// binaries persist as JSON next to their CSVs.
pub fn series_ensemble_summary<F>(cfg: &Config, metric: &str, make: F) -> EnsembleSummary
where
    F: Fn(&mut StdRng) -> Graph + Sync,
{
    let analyzer = Analyzer::new()
        .metric_names(metric)
        .expect("known series metric")
        .threads(cfg.threads);
    analyzer.run_ensemble(cfg.seeds, cfg.master_seed, make)
}

/// Runs `make` once per seed and returns the per-key ensemble mean of
/// one series metric — the series the paper's figures plot.
pub fn series_ensemble<F>(cfg: &Config, metric: &str, make: F) -> Vec<(usize, f64)>
where
    F: Fn(&mut StdRng) -> Graph + Sync,
{
    series_ensemble_summary(cfg, metric, make)
        .series_means(metric)
        .expect("series metric")
}

fn one_series(g: &Graph, metric: &str) -> Vec<(usize, f64)> {
    Analyzer::new()
        .metric_names(metric)
        .expect("known series metric")
        .analyze(g)
        .series(metric)
        .expect("series metric")
        .to_vec()
}

/// Distance-distribution PDF of the GCC as an integer-keyed series
/// (positive distances, paper figure convention).
pub fn distance_series(g: &Graph) -> Vec<(usize, f64)> {
    one_series(g, "d_x")
}

/// Mean normalized betweenness per degree, of the GCC.
pub fn betweenness_series(g: &Graph) -> Vec<(usize, f64)> {
    one_series(g, "b_k")
}

/// Mean clustering per degree, of the GCC.
pub fn clustering_series(g: &Graph) -> Vec<(usize, f64)> {
    one_series(g, "c_k")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn ensemble_runs_with_config_seeds() {
        let cfg = crate::Config {
            seeds: 3,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let analyzer = Analyzer::new().metric_names("cheap").unwrap();
        let rep = scalar_ensemble(&cfg, &analyzer, |rng| dk_topologies::er::gnm(50, 100, rng));
        assert_eq!(rep.replicas, 3);
        assert!(rep.scalar("k_avg").unwrap().mean > 0.0);
    }

    #[test]
    fn scalar_ensemble_thread_count_is_invisible() {
        let base = crate::Config {
            seeds: 6,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let analyzer = Analyzer::new().metric_names("cheap").unwrap();
        let make = |rng: &mut rand::rngs::StdRng| {
            crate::variants::dk_random(&builders::karate_club(), 1, rng)
        };
        let serial = scalar_ensemble(
            &crate::Config {
                threads: 1,
                ..base.clone()
            },
            &analyzer,
            make,
        );
        let parallel = scalar_ensemble(&crate::Config { threads: 4, ..base }, &analyzer, make);
        assert_eq!(serial, parallel, "threading must not change results");
    }

    #[test]
    fn series_ensemble_matches_hand_rolled_loop() {
        use rand::SeedableRng;
        let cfg = crate::Config {
            seeds: 4,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let original = builders::karate_club();
        let fast = series_ensemble(&cfg, "c_k", |rng| {
            crate::variants::dk_random(&original, 2, rng)
        });
        // the pre-facade pattern: serial loop + per-key accumulation
        let mut sums: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
        for i in 0..cfg.seeds {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.run_seed(i));
            for (x, y) in clustering_series(&crate::variants::dk_random(&original, 2, &mut rng)) {
                let e = sums.entry(x).or_insert((0.0, 0));
                e.0 += y;
                e.1 += 1;
            }
        }
        let slow: Vec<(usize, f64)> = sums
            .iter()
            .map(|(&x, &(sum, n))| (x, sum / n as f64))
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn series_helpers_on_karate() {
        let g = builders::karate_club();
        let d = distance_series(&g);
        assert_eq!(d[0].0, 1);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!betweenness_series(&g).is_empty());
        assert!(!clustering_series(&g).is_empty());
    }

    #[test]
    fn series_helpers_extract_gcc_first() {
        // isolated nodes must not dilute the series
        let mut g = builders::karate_club();
        g.add_node();
        assert_eq!(
            clustering_series(&g),
            clustering_series(&builders::karate_club())
        );
    }
}

//! Ensemble execution: run a graph-producing closure across seeds and
//! average the results (scalars, degree-indexed series,
//! distance-indexed series).
//!
//! "Our results represent averages over 100 graphs generated with a
//! different random seed in each case" (paper §5).
//!
//! All fan-out goes through [`run`], a thin wrapper over the
//! deterministic parallel runner [`dk_core::ensemble::run`]: replica `i`
//! is always seeded with `cfg.run_seed(i)` regardless of the thread
//! count, so `--threads 1` and `--threads N` produce identical tables.

use crate::Config;
use dk_graph::{traversal, Graph};
use dk_metrics::report::{MetricReport, ReportOptions};
use rand::rngs::StdRng;

/// Averaged scalar battery over an ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleReport {
    /// Mean of each scalar over the ensemble (missing values skipped).
    pub mean: MetricReport,
    /// Number of ensemble members.
    pub runs: usize,
}

/// Runs `job(replica, rng)` for every configured seed, in parallel over
/// `cfg.threads` workers, returning results in replica order.
pub fn run<T, F>(cfg: &Config, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, &mut StdRng) -> T + Sync,
{
    dk_core::ensemble::run(cfg.seeds, cfg.master_seed, cfg.threads, job)
}

/// Runs `make` once per seed and averages the full scalar battery.
///
/// `make` receives a seeded RNG and returns the graph to measure (GCC
/// extraction happens inside the metric battery). Members are computed
/// in parallel (see [`run`]); the mean is identical to the serial loop.
pub fn scalar_ensemble<F>(cfg: &Config, opts: &ReportOptions, make: F) -> EnsembleReport
where
    F: Fn(&mut StdRng) -> Graph + Sync,
{
    let reports = run(cfg, |_i, rng| MetricReport::compute_with(&make(rng), opts));
    EnsembleReport {
        mean: average_reports(&reports),
        runs: reports.len(),
    }
}

/// Runs `make` once per seed, extracts a `(key, value)` series from each
/// graph with `series_of`, and returns the per-key ensemble mean.
///
/// This is the parallel replacement for the hand-rolled
/// "loop seeds, [`SeriesAccumulator::add`], mean" pattern the figure
/// binaries used to carry.
pub fn series_ensemble<F, S>(cfg: &Config, make: F, series_of: S) -> Vec<(usize, f64)>
where
    F: Fn(&mut StdRng) -> Graph + Sync,
    S: Fn(&Graph) -> Vec<(usize, f64)> + Sync,
{
    let all = run(cfg, |_i, rng| series_of(&make(rng)));
    let mut acc = SeriesAccumulator::new();
    for series in &all {
        acc.add(series);
    }
    acc.mean()
}

fn avg(items: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = items.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn avg_opt(items: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let v: Vec<f64> = items.flatten().collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Field-wise mean of metric reports.
pub fn average_reports(reports: &[MetricReport]) -> MetricReport {
    assert!(!reports.is_empty(), "cannot average an empty ensemble");
    MetricReport {
        nodes: (avg(reports.iter().map(|r| r.nodes as f64))).round() as usize,
        edges: (avg(reports.iter().map(|r| r.edges as f64))).round() as usize,
        gcc_fraction: avg(reports.iter().map(|r| r.gcc_fraction)),
        k_avg: avg(reports.iter().map(|r| r.k_avg)),
        assortativity: avg(reports.iter().map(|r| r.assortativity)),
        mean_clustering: avg(reports.iter().map(|r| r.mean_clustering)),
        avg_distance: avg_opt(reports.iter().map(|r| r.avg_distance)),
        distance_std: avg_opt(reports.iter().map(|r| r.distance_std)),
        likelihood_s: avg(reports.iter().map(|r| r.likelihood_s)),
        likelihood_s2: avg(reports.iter().map(|r| r.likelihood_s2)),
        lambda1: avg_opt(reports.iter().map(|r| r.lambda1)),
        lambda_max: avg_opt(reports.iter().map(|r| r.lambda_max)),
        max_betweenness: avg_opt(reports.iter().map(|r| r.max_betweenness)),
    }
}

/// Averaged `(x, y)` series where x is an integer key (degree or hop
/// count): y values are averaged per key over ensemble members that
/// define the key.
#[derive(Clone, Debug, Default)]
pub struct SeriesAccumulator {
    sums: std::collections::BTreeMap<usize, (f64, usize)>,
}

impl SeriesAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one member's series.
    pub fn add(&mut self, series: &[(usize, f64)]) {
        for &(x, y) in series {
            let e = self.sums.entry(x).or_insert((0.0, 0));
            e.0 += y;
            e.1 += 1;
        }
    }

    /// Per-key means.
    pub fn mean(&self) -> Vec<(usize, f64)> {
        self.sums
            .iter()
            .map(|(&x, &(sum, n))| (x, sum / n as f64))
            .collect()
    }
}

/// Distance-distribution PDF of the GCC as an integer-keyed series
/// (positive distances, paper figure convention).
pub fn distance_series(g: &Graph) -> Vec<(usize, f64)> {
    let (gcc, _) = traversal::giant_component(g);
    let dd = dk_metrics::distance::DistanceDistribution::from_graph(&gcc);
    dd.pdf_positive().into_iter().enumerate().skip(1).collect()
}

/// Mean normalized betweenness per degree, of the GCC.
pub fn betweenness_series(g: &Graph) -> Vec<(usize, f64)> {
    let (gcc, _) = traversal::giant_component(g);
    dk_metrics::betweenness::betweenness_by_degree(&gcc)
}

/// Mean clustering per degree, of the GCC.
pub fn clustering_series(g: &Graph) -> Vec<(usize, f64)> {
    let (gcc, _) = traversal::giant_component(g);
    dk_metrics::clustering::clustering_by_degree(&gcc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn averaging_identical_reports_is_identity() {
        let r = MetricReport::compute_cheap(&builders::karate_club());
        let mean = average_reports(&[r.clone(), r.clone(), r.clone()]);
        assert_eq!(mean.nodes, r.nodes);
        assert!((mean.k_avg - r.k_avg).abs() < 1e-12);
        assert!((mean.assortativity - r.assortativity).abs() < 1e-12);
    }

    #[test]
    fn optional_fields_skip_missing() {
        let a = MetricReport::compute_cheap(&builders::karate_club()); // no distances
        let mut b = a.clone();
        b.avg_distance = Some(4.0);
        let mean = average_reports(&[a, b]);
        assert_eq!(mean.avg_distance, Some(4.0)); // only one defined value
    }

    #[test]
    fn series_accumulator_averages_per_key() {
        let mut acc = SeriesAccumulator::new();
        acc.add(&[(1, 1.0), (2, 4.0)]);
        acc.add(&[(1, 3.0)]);
        assert_eq!(acc.mean(), vec![(1, 2.0), (2, 4.0)]);
    }

    #[test]
    fn ensemble_runs_with_config_seeds() {
        let cfg = crate::Config {
            seeds: 3,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let rep = scalar_ensemble(
            &cfg,
            &dk_metrics::report::ReportOptions {
                spectral: false,
                distances: false,
                betweenness: false,
                lanczos_iter: 0,
            },
            |rng| dk_topologies::er::gnm(50, 100, rng),
        );
        assert_eq!(rep.runs, 3);
        assert!(rep.mean.k_avg > 0.0);
    }

    #[test]
    fn scalar_ensemble_thread_count_is_invisible() {
        let base = crate::Config {
            seeds: 6,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let opts = dk_metrics::report::ReportOptions {
            spectral: false,
            distances: false,
            betweenness: false,
            lanczos_iter: 0,
        };
        let make = |rng: &mut rand::rngs::StdRng| {
            crate::variants::dk_random(&builders::karate_club(), 1, rng)
        };
        let serial = scalar_ensemble(
            &crate::Config {
                threads: 1,
                ..base.clone()
            },
            &opts,
            make,
        );
        let parallel = scalar_ensemble(&crate::Config { threads: 4, ..base }, &opts, make);
        assert_eq!(
            serial.mean, parallel.mean,
            "threading must not change results"
        );
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn series_ensemble_matches_hand_rolled_loop() {
        use rand::SeedableRng;
        let cfg = crate::Config {
            seeds: 4,
            out_dir: std::env::temp_dir(),
            ..Default::default()
        };
        let original = builders::karate_club();
        let fast = series_ensemble(
            &cfg,
            |rng| crate::variants::dk_random(&original, 2, rng),
            clustering_series,
        );
        // the pre-facade pattern: serial loop + accumulator
        let mut acc = SeriesAccumulator::new();
        for i in 0..cfg.seeds {
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.run_seed(i));
            acc.add(&clustering_series(&crate::variants::dk_random(
                &original, 2, &mut rng,
            )));
        }
        assert_eq!(fast, acc.mean());
    }

    #[test]
    fn series_helpers_on_karate() {
        let g = builders::karate_club();
        let d = distance_series(&g);
        assert_eq!(d[0].0, 1);
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!betweenness_series(&g).is_empty());
        assert!(!clustering_series(&g).is_empty());
    }
}

//! CSV series output for figures.
//!
//! Every figure binary writes one CSV per panel: first column is the
//! x-value (degree or distance), remaining columns are one series per
//! graph variant, empty where a variant has no value at that x.

use std::io::Write;
use std::path::Path;

/// A named collection of `(x, y)` series sharing an x-axis.
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    names: Vec<String>,
    series: Vec<Vec<(usize, f64)>>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named series.
    pub fn push(&mut self, name: impl Into<String>, s: Vec<(usize, f64)>) {
        self.names.push(name.into());
        self.series.push(s);
    }

    /// Renders as CSV with a union x-axis.
    pub fn to_csv(&self, x_label: &str) -> String {
        let mut xs: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        let mut out = String::new();
        out.push_str(x_label);
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&x.to_string());
            for s in &self.series {
                out.push(',');
                if let Ok(i) = s.binary_search_by_key(&x, |&(xx, _)| xx) {
                    out.push_str(&format!("{}", s[i].1));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path` (creating parent dirs).
    pub fn write(&self, path: &Path, x_label: &str) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv(x_label).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_axis_and_gaps() {
        let mut s = SeriesSet::new();
        s.push("a", vec![(1, 0.5), (3, 0.25)]);
        s.push("b", vec![(2, 1.0)]);
        let csv = s.to_csv("x");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,0.5,");
        assert_eq!(lines[2], "2,,1");
        assert_eq!(lines[3], "3,0.25,");
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("dk_bench_csv_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("deep").join("out.csv");
        let mut s = SeriesSet::new();
        s.push("y", vec![(0, 1.0)]);
        s.write(&path, "x").unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! **Figure 7** — varying clustering in 2K-graphs for skitter:
//! `C(k)` for clustering-maximized, 2K-random, clustering-minimized, and
//! the original.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig7 -- [--full]
//! # → results/fig7.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::clustering_series;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_core::explore::{explore_2k, Direction, ExploreOptions, Objective2K};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let explore_opts = ExploreOptions {
        max_attempts: if cfg.full { 3_000_000 } else { 600_000 },
        patience: Some(if cfg.full { 400_000 } else { 120_000 }),
    };

    let mut set = SeriesSet::new();
    for (name, dir) in [
        ("2K-maxC", Direction::Maximize),
        ("2K-minC", Direction::Minimize),
    ] {
        let mut g = skitter.clone();
        let mut rng = StdRng::seed_from_u64(cfg.master_seed ^ name.len() as u64);
        let stats = explore_2k(
            &mut g,
            Objective2K::MeanClustering,
            dir,
            &explore_opts,
            &mut rng,
        );
        eprintln!("{name}: C̄ {} → {}", stats.initial_value, stats.final_value);
        set.push(name, clustering_series(&g));
    }
    let mut rng = StdRng::seed_from_u64(cfg.run_seed(0));
    set.push(
        "2K-random",
        clustering_series(&dk_random(&skitter, 2, &mut rng)),
    );
    set.push("skitter", clustering_series(&skitter));

    let path = cfg.out_dir.join("fig7.csv");
    set.write(&path, "degree").expect("write fig7");
    println!("wrote {}", path.display());
}

//! **perf_shard** — the sharded streaming layer's perf and memory
//! record: streamed vs in-memory fused traversal (bit-identity asserted,
//! both timed) at an oracle-feasible scale, and — with `--full` — the
//! 10⁶-node Barabási–Albert end-to-end run through `dk metrics`'
//! analyzer on the streaming route, with a hard per-worker memory
//! accounting and the process peak RSS.
//!
//! At 10⁶ nodes the *exact* all-pairs battery is a multi-hour
//! computation regardless of route (O(n·m) edge visits), so the large
//! run exercises the paper-default battery with its two exact all-pairs
//! columns replaced by their registry-sampled twins
//! (`distance_approx`/`betweenness_approx`, K = 64 Brandes–Pich pivots)
//! and the spectral solve omitted — every traversal-shaped pass still
//! goes through the streamed shard executor, which is what this binary
//! measures. The streamed-vs-oracle bit-identity at full exactness is
//! covered by the oracle stage here and by `tests/stream_equivalence.rs`.
//!
//! Appends `"bench": "shard_oracle"` / `"bench": "shard_large"` records
//! to the `BENCH_metrics.json` JSON-lines log.
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_shard -- \
//!     [--full] [--oracle-n N] [--threads N] [--seed N] [--out DIR]
//! ```

use dk_bench::append_json_line;
use dk_graph::CsrGraph;
use dk_metrics::{betweenness, json, stream, AnalysisCache, AnalyzeOptions, Analyzer};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Pivot budget of the large run's sampled metrics.
const SAMPLES: usize = 64;
/// Node count of the `--full` large-graph run.
const LARGE_N: usize = 1_000_000;

struct Args {
    full: bool,
    oracle_n: usize,
    threads: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        oracle_n: 5_000,
        threads: 0,
        seed: 20060911,
        out_dir: PathBuf::from("results"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "flags: --full (add the 10^6-node streaming run)  --oracle-n N (default 5000)\n       --threads N (0 = all cores)  --seed N  --out DIR (default results/)"
        );
        std::process::exit(2)
    };
    while i < raw.len() {
        let flag = raw[i].as_str();
        match flag {
            "--full" => args.full = true,
            "--oracle-n" | "--threads" | "--seed" | "--out" => {
                i += 1;
                let Some(value) = raw.get(i) else {
                    eprintln!("error: {flag} needs a value");
                    usage()
                };
                match flag {
                    "--oracle-n" => {
                        args.oracle_n = value.parse().unwrap_or_else(|_| usage());
                    }
                    "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.out_dir = PathBuf::from(value),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Process peak RSS in bytes (Linux `VmHWM`; `None` elsewhere).
fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current process RSS in bytes (Linux `VmRSS`; `None` elsewhere).
fn rss_now_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

fn proc_status_bytes(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with(key))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn ba(n: usize, seed: u64) -> dk_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    )
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), out)
}

/// Streamed vs in-memory fused pass at oracle-feasible scale:
/// bit-identity asserted at the default and at a non-default shard
/// count, both routes timed.
fn oracle_stage(args: &Args, threads: usize) {
    let g = ba(args.oracle_n, args.seed);
    let csr = CsrGraph::from_graph(&g);
    println!(
        "oracle: BA n = {}, m = {}, threads = {threads}",
        g.node_count(),
        g.edge_count()
    );

    let (streamed_s, streamed) = time_s(|| {
        betweenness::betweenness_and_distances_streamed(&csr, stream::DEFAULT_SHARDS, threads)
    });
    println!(
        "fused streamed  (S = {:>3})  {streamed_s:>8.2} s",
        stream::DEFAULT_SHARDS
    );
    let (in_memory_s, in_memory) = time_s(|| {
        betweenness::betweenness_and_distances_sharded(&csr, stream::DEFAULT_SHARDS, threads)
    });
    println!(
        "fused in-memory (S = {:>3})  {in_memory_s:>8.2} s",
        stream::DEFAULT_SHARDS
    );
    assert_eq!(
        streamed.betweenness, in_memory.betweenness,
        "streamed route must be bit-identical to the in-memory oracle"
    );
    assert_eq!(streamed.distances, in_memory.distances);
    assert_eq!(streamed.max_depth, in_memory.max_depth);

    // a non-default shard count changes the merge tree but never the
    // streamed-vs-oracle agreement
    let odd = 7;
    let s7 = betweenness::betweenness_and_distances_streamed(&csr, odd, threads);
    let m7 = betweenness::betweenness_and_distances_sharded(&csr, odd, threads);
    assert_eq!(s7.betweenness, m7.betweenness, "shards = {odd}");
    assert_eq!(s7.distances, m7.distances);
    println!(
        "bit-identity: streamed == in-memory at S = {} and S = {odd}",
        stream::DEFAULT_SHARDS
    );

    let doc = json::object([
        ("bench".into(), "\"shard_oracle\"".into()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("shards".into(), stream::DEFAULT_SHARDS.to_string()),
        ("streamed_s".into(), json::number(streamed_s)),
        ("in_memory_s".into(), json::number(in_memory_s)),
        ("bit_identical".into(), "true".into()),
        (
            "per_worker_mb".into(),
            json::number(stream::per_worker_bytes(g.node_count()) as f64 / (1 << 20) as f64),
        ),
        (
            "csr_mb".into(),
            json::number(csr.size_bytes() as f64 / (1 << 20) as f64),
        ),
    ]);
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &doc).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

/// The 10⁶-node end-to-end streaming run: paper-default battery with the
/// exact all-pairs columns swapped for their sampled twins (see the
/// module docs), every traversal pass on the streamed route.
fn large_stage(args: &Args, threads: usize) {
    let battery =
        "n,m,gcc_fraction,k_avg,r,c_mean,s,s2,kcore_max,distance_approx,betweenness_approx";
    let (gen_s, g) = time_s(|| ba(LARGE_N, args.seed));
    println!(
        "large: BA n = {}, m = {}, generated in {gen_s:.1} s",
        g.node_count(),
        g.edge_count()
    );
    // the plan the analyzer actually resolves for these options (GCC
    // policy applied, post-extraction node count) — read back through
    // the cache rather than re-derived, so the bench record cannot
    // drift from the route taken
    let plan = AnalysisCache::build(
        &g,
        &[],
        &AnalyzeOptions {
            threads,
            samples: SAMPLES,
            ..Default::default()
        },
    )
    .exec_plan();
    assert!(
        plan.streamed,
        "10^6 nodes must auto-select the streamed route"
    );

    // memory-model check: the per-worker accounting
    // (`stream::per_worker_bytes`, Brandes scratch + the two
    // direction-optimizing frontier bitmaps) must stay an upper bound on
    // what a streamed pass actually adds to the process RSS
    let (rss_model_mb, rss_probe_mb) = {
        let csr = CsrGraph::from_graph(&g);
        let before = rss_now_bytes();
        let probe = std::hint::black_box(dk_metrics::sampled::sampled_traversal_streamed(
            &csr,
            SAMPLES,
            plan.shards,
            threads,
        ));
        drop(probe);
        let n = g.node_count();
        // workers × scratch + the O(n) global accumulator, plus slack
        // for allocator overhead and the pass's own output vectors
        let model = threads as u64 * stream::per_worker_bytes(n) + 8 * n as u64 + (64u64 << 20);
        match (before, rss_now_bytes()) {
            (Some(b), Some(a)) => {
                let grown = a.saturating_sub(b);
                assert!(
                    grown <= model,
                    "streamed pass grew RSS by {grown} B, over the {model} B model bound"
                );
                let mb = |x: u64| x as f64 / (1 << 20) as f64;
                println!(
                    "memory model: streamed sampled pass grew RSS by {:.0} MiB (model bound {:.0} MiB)",
                    mb(grown),
                    mb(model)
                );
                (Some(mb(model)), Some(mb(grown)))
            }
            _ => (None, None),
        }
    };

    let mk = |relabel: bool| {
        Analyzer::new()
            .metric_names(battery)
            .expect("battery names are registered")
            .threads(threads)
            .sample_sources(SAMPLES)
            .relabel(relabel)
    };
    let (analyze_s, report) = time_s(|| mk(false).analyze(&g));
    let scalar = |name: &str| report.scalar(name).unwrap_or(f64::NAN);
    println!(
        "analyzed in {analyze_s:.1} s (streamed route, S = {}, workers = {}): \
         d_avg_approx = {:.4}, b_max_approx = {:.6}, kcore_max = {}",
        plan.shards,
        plan.workers,
        scalar("distance_approx"),
        scalar("betweenness_approx"),
        scalar("kcore_max"),
    );
    // the locality-relabeled route must reproduce the report byte for
    // byte — the permutation is an internal detail
    let (relabel_s, relabel_report) = time_s(|| mk(true).analyze(&g));
    assert_eq!(
        report.to_json(),
        relabel_report.to_json(),
        "relabeled battery must be byte-identical to the external-id route"
    );
    println!("relabeled battery in {relabel_s:.1} s — report byte-identical");
    let peak = peak_rss_bytes();
    if let Some(p) = peak {
        println!("peak RSS {:.0} MiB", p as f64 / (1 << 20) as f64);
    }

    let mut fields = vec![
        ("bench".into(), "\"shard_large\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("samples".into(), SAMPLES.to_string()),
        ("shards".into(), plan.shards.to_string()),
        ("workers".into(), plan.workers.to_string()),
        ("streamed".into(), "true".into()),
        ("battery".into(), format!("\"{battery}\"")),
        ("gen_s".into(), json::number(gen_s)),
        ("analyze_s".into(), json::number(analyze_s)),
        (
            "per_worker_mb".into(),
            json::number(stream::per_worker_bytes(g.node_count()) as f64 / (1 << 20) as f64),
        ),
        (
            "fixed_mb".into(),
            json::number(
                stream::fixed_bytes(g.node_count(), g.edge_count()) as f64 / (1 << 20) as f64,
            ),
        ),
        (
            "d_avg_approx".into(),
            json::number(scalar("distance_approx")),
        ),
        (
            "b_max_approx".into(),
            json::number(scalar("betweenness_approx")),
        ),
        ("kcore_max".into(), json::number(scalar("kcore_max"))),
    ];
    if let (Some(model), Some(probe)) = (rss_model_mb, rss_probe_mb) {
        fields.push(("rss_model_mb".into(), json::number(model)));
        fields.push(("rss_probe_mb".into(), json::number(probe)));
    }
    if let Some(p) = peak {
        fields.push((
            "peak_rss_mb".into(),
            json::number(p as f64 / (1 << 20) as f64),
        ));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");

    // the relabeled run gets its own line so the locality speedup stays
    // traceable against the external-id history
    let relabel_fields = vec![
        ("bench".into(), "\"shard_large_relabel\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("samples".into(), SAMPLES.to_string()),
        ("shards".into(), plan.shards.to_string()),
        ("workers".into(), plan.workers.to_string()),
        ("streamed".into(), "true".into()),
        ("relabel".into(), "true".into()),
        ("battery".into(), format!("\"{battery}\"")),
        ("analyze_s".into(), json::number(relabel_s)),
        ("byte_identical".into(), "true".into()),
        (
            "d_avg_approx".into(),
            json::number(scalar("distance_approx")),
        ),
        (
            "b_max_approx".into(),
            json::number(scalar("betweenness_approx")),
        ),
    ];
    append_json_line(&out, &json::object(relabel_fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn main() {
    let args = parse_args();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };
    oracle_stage(&args, threads);
    if args.full {
        large_stage(&args, threads);
    }
}

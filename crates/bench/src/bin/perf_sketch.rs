//! **perf_sketch** — the HyperANF sketch estimator's accuracy and perf
//! record: sketch vs exact-oracle distance metrics at an oracle-feasible
//! scale (with the Brandes–Pich sampled twin measured alongside, so the
//! two estimator families stay comparable run over run), and — with
//! `--full` — the 10⁶-node Barabási–Albert end-to-end run of the sketch
//! battery through `dk metrics`' analyzer on the streaming route.
//!
//! At 10⁶ nodes the exact distance family is O(n·m) ≈ hours on any
//! route; the sketch battery covers it in `O(diameter)` sharded
//! register-union passes whose error `1.04/√2^b` is set by
//! `--sketch-bits`, with the `distance_approx` sampled twin (K = 64
//! pivots) recorded next to it for the accuracy-vs-cost comparison the
//! ROADMAP tracks.
//!
//! Appends `"bench": "sketch_oracle"` / `"bench": "sketch_large"`
//! records to the `BENCH_metrics.json` JSON-lines log.
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_sketch -- \
//!     [--full] [--oracle-n N] [--bits B] [--threads N] [--seed N] [--out DIR]
//! ```

use dk_bench::append_json_line;
use dk_graph::CsrGraph;
use dk_metrics::distance::DistanceDistribution;
use dk_metrics::{json, sketch, AnalysisCache, AnalyzeOptions, Analyzer};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Pivot budget of the sampled twin measured alongside the sketches.
const SAMPLES: usize = 64;
/// Node count of the `--full` large-graph run.
const LARGE_N: usize = 1_000_000;
/// Register bits of the oracle stage's accuracy sweep.
const ORACLE_BITS: [u32; 3] = [6, 8, 10];

struct Args {
    full: bool,
    oracle_n: usize,
    /// Register bits of the `--full` large run (default 6: 64 MiB of
    /// registers per file at 10⁶ nodes, ~13% per-counter error — the
    /// CI-budget point; raise for accuracy at n·2^b bytes).
    bits: u32,
    threads: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        oracle_n: 5_000,
        bits: 6,
        threads: 0,
        seed: 20060911,
        out_dir: PathBuf::from("results"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "flags: --full (add the 10^6-node streaming run)  --oracle-n N (default 5000)\n       --bits B (large-run register bits, 4..=16, default 6)\n       --threads N (0 = all cores)  --seed N  --out DIR (default results/)"
        );
        std::process::exit(2)
    };
    while i < raw.len() {
        let flag = raw[i].as_str();
        match flag {
            "--full" => args.full = true,
            "--oracle-n" | "--bits" | "--threads" | "--seed" | "--out" => {
                i += 1;
                let Some(value) = raw.get(i) else {
                    eprintln!("error: {flag} needs a value");
                    usage()
                };
                match flag {
                    "--oracle-n" => args.oracle_n = value.parse().unwrap_or_else(|_| usage()),
                    "--bits" => {
                        args.bits = value.parse().unwrap_or_else(|_| usage());
                        if !(sketch::MIN_SKETCH_BITS..=sketch::MAX_SKETCH_BITS).contains(&args.bits)
                        {
                            eprintln!("error: --bits must lie in 4..=16");
                            usage()
                        }
                    }
                    "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.out_dir = PathBuf::from(value),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Process peak RSS in bytes (Linux `VmHWM`; `None` elsewhere).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn ba(n: usize, seed: u64) -> dk_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    )
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), out)
}

/// Sketch vs exact oracle (and the sampled twin) at oracle-feasible
/// scale: relative error of `d̄` at each register-bit count, asserted
/// against the 3σ HLL bound, streamed-vs-in-memory bit-identity
/// asserted along the way.
fn oracle_stage(args: &Args, threads: usize) {
    let g = ba(args.oracle_n, args.seed);
    let csr = CsrGraph::from_graph(&g);
    println!(
        "oracle: BA n = {}, m = {}, threads = {threads}",
        g.node_count(),
        g.edge_count()
    );

    let (exact_s, exact) =
        time_s(|| DistanceDistribution::from_csr_streamed(&csr, stream_shards(), threads));
    let d_exact = exact.mean();
    println!("exact all-source BFS       {exact_s:>8.2} s   d_avg = {d_exact:.4}");

    // the sampled twin at the default pivot budget, for the running
    // sketch-vs-sampled accuracy comparison
    let (sampled_s, sampled) = time_s(|| {
        dk_metrics::sampled::sampled_traversal_csr(&csr, SAMPLES, threads)
            .distances
            .mean()
    });
    let sampled_err = (sampled - d_exact).abs() / d_exact;
    println!(
        "sampled twin (K = {SAMPLES})      {sampled_s:>8.2} s   d_avg = {sampled:.4}  rel err = {sampled_err:.4}"
    );

    let mut fields = vec![
        ("bench".into(), "\"sketch_oracle\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("d_exact".into(), json::number(d_exact)),
        ("exact_s".into(), json::number(exact_s)),
        ("sampled_err".into(), json::number(sampled_err)),
        ("sampled_s".into(), json::number(sampled_s)),
    ];
    for bits in ORACLE_BITS {
        let (sketch_s, anf) =
            time_s(|| sketch::hyper_anf_streamed(&csr, bits, 128, stream_shards(), threads));
        // the streamed pass is the one the analyzer plans at scale; the
        // in-memory collect is its equivalence oracle
        let in_memory = sketch::hyper_anf_sharded(&csr, bits, 128, stream_shards(), threads);
        assert_eq!(anf, in_memory, "streamed == in-memory at b = {bits}");
        let d_sketch = anf.avg_distance();
        let err = (d_sketch - d_exact).abs() / d_exact;
        let bound = 3.0 * sketch::standard_error(bits);
        println!(
            "sketch b = {bits:>2} ({:>5} regs)  {sketch_s:>8.2} s   d_avg = {d_sketch:.4}  rel err = {err:.4} (3σ bound {bound:.4})",
            1u32 << bits
        );
        assert!(
            err <= bound,
            "b = {bits}: sketch error {err} exceeds the 3σ HLL bound {bound}"
        );
        fields.push((format!("sketch_err_b{bits}"), json::number(err)));
        fields.push((format!("sketch_s_b{bits}"), json::number(sketch_s)));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn stream_shards() -> usize {
    dk_metrics::stream::DEFAULT_SHARDS
}

/// The 10⁶-node end-to-end run: the sketch distance battery (plus the
/// sampled twin for comparison) through the analyzer's streamed route.
fn large_stage(args: &Args, threads: usize) {
    let battery = "n,m,k_avg,distance_approx,avg_distance_sketch,effective_diameter_sketch";
    let (gen_s, g) = time_s(|| ba(LARGE_N, args.seed));
    println!(
        "large: BA n = {}, m = {}, generated in {gen_s:.1} s",
        g.node_count(),
        g.edge_count()
    );
    let plan = AnalysisCache::build(
        &g,
        &[],
        &AnalyzeOptions {
            threads,
            samples: SAMPLES,
            sketch_bits: args.bits,
            ..Default::default()
        },
    )
    .exec_plan();
    assert!(
        plan.streamed,
        "10^6 nodes must auto-select the streamed route"
    );
    let mk = |relabel: bool| {
        Analyzer::new()
            .metric_names(battery)
            .expect("battery names are registered")
            .threads(threads)
            .sample_sources(SAMPLES)
            .sketch_bits(args.bits)
            .relabel(relabel)
    };
    let (analyze_s, report) = time_s(|| mk(false).analyze(&g));
    let scalar = |name: &str| report.scalar(name).unwrap_or(f64::NAN);
    let d_sketch = scalar("avg_distance_sketch");
    let d_sampled = scalar("distance_approx");
    let twin_gap = (d_sketch - d_sampled).abs() / d_sampled;
    println!(
        "analyzed in {analyze_s:.1} s (streamed route, S = {}, workers = {}, b = {}): \
         d_avg_sketch = {d_sketch:.4}, d_avg_approx = {d_sampled:.4} (gap {twin_gap:.4}), \
         effective_diameter_sketch = {:.3}",
        plan.shards,
        plan.workers,
        args.bits,
        scalar("effective_diameter_sketch"),
    );
    // the locality-relabeled route must reproduce the report byte for
    // byte — hash seeding and N(t) sums are mapped through the
    // permutation, the registers themselves are set-determined
    let (relabel_s, relabel_report) = time_s(|| mk(true).analyze(&g));
    assert_eq!(
        report.to_json(),
        relabel_report.to_json(),
        "relabeled sketch battery must be byte-identical to the external-id route"
    );
    println!("relabeled battery in {relabel_s:.1} s — report byte-identical");
    let peak = peak_rss_bytes();
    if let Some(p) = peak {
        println!("peak RSS {:.0} MiB", p as f64 / (1 << 20) as f64);
    }

    let mut fields = vec![
        ("bench".into(), "\"sketch_large\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("bits".into(), args.bits.to_string()),
        ("samples".into(), SAMPLES.to_string()),
        ("shards".into(), plan.shards.to_string()),
        ("workers".into(), plan.workers.to_string()),
        ("streamed".into(), "true".into()),
        ("battery".into(), format!("\"{battery}\"")),
        ("gen_s".into(), json::number(gen_s)),
        ("analyze_s".into(), json::number(analyze_s)),
        ("d_avg_sketch".into(), json::number(d_sketch)),
        ("d_avg_approx".into(), json::number(d_sampled)),
        ("sketch_vs_sampled_gap".into(), json::number(twin_gap)),
        (
            "effective_diameter_sketch".into(),
            json::number(scalar("effective_diameter_sketch")),
        ),
        (
            "register_file_mb".into(),
            json::number(sketch::sketch_bytes(g.node_count(), args.bits) as f64 / (1 << 20) as f64),
        ),
    ];
    if let Some(p) = peak {
        fields.push((
            "peak_rss_mb".into(),
            json::number(p as f64 / (1 << 20) as f64),
        ));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");

    let relabel_fields = vec![
        ("bench".into(), "\"sketch_large_relabel\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("bits".into(), args.bits.to_string()),
        ("samples".into(), SAMPLES.to_string()),
        ("shards".into(), plan.shards.to_string()),
        ("workers".into(), plan.workers.to_string()),
        ("streamed".into(), "true".into()),
        ("relabel".into(), "true".into()),
        ("battery".into(), format!("\"{battery}\"")),
        ("analyze_s".into(), json::number(relabel_s)),
        ("byte_identical".into(), "true".into()),
        ("d_avg_sketch".into(), json::number(d_sketch)),
        (
            "effective_diameter_sketch".into(),
            json::number(scalar("effective_diameter_sketch")),
        ),
    ];
    append_json_line(&out, &json::object(relabel_fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn main() {
    let args = parse_args();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };
    oracle_stage(&args, threads);
    if args.full {
        large_stage(&args, threads);
    }
}

//! **Figure 5** — comparison of 2K- and 3K-graph-constructing algorithms:
//!
//! * (a) clustering `C(k)` in skitter for the five 2K algorithms,
//! * (b) distance distribution in HOT for the five 2K algorithms,
//! * (c) distance distribution in HOT for 3K randomizing vs targeting.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig5 -- [--seeds N] [--full]
//! # → results/fig5{a,b,c}.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{clustering_series, distance_series, SeriesAccumulator};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::{build_2k, build_3k, Algo2K};
use dk_bench::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let hot = inputs::load(&cfg, Input::HotLike);

    // (a) clustering in skitter per 2K algorithm
    let mut a = SeriesSet::new();
    for algo in Algo2K::ALL {
        let mut acc = SeriesAccumulator::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(i));
            acc.add(&clustering_series(&build_2k(&skitter, algo, &mut rng)));
        }
        a.push(algo.label(), acc.mean());
    }
    a.push("skitter", clustering_series(&skitter));
    let path = cfg.out_dir.join("fig5a.csv");
    a.write(&path, "degree").expect("write fig5a");
    println!("wrote {}", path.display());

    // (b) distance distribution in HOT per 2K algorithm
    let mut b = SeriesSet::new();
    for algo in Algo2K::ALL {
        let mut acc = SeriesAccumulator::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(i));
            acc.add(&distance_series(&build_2k(&hot, algo, &mut rng)));
        }
        b.push(algo.label(), acc.mean());
    }
    b.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig5b.csv");
    b.write(&path, "distance").expect("write fig5b");
    println!("wrote {}", path.display());

    // (c) distance distribution in HOT, 3K randomizing vs targeting
    let mut c = SeriesSet::new();
    for (name, randomizing) in [("3K-rand", true), ("3K-targ", false)] {
        let mut acc = SeriesAccumulator::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(i));
            acc.add(&distance_series(&build_3k(&hot, randomizing, &mut rng)));
        }
        c.push(name, acc.mean());
    }
    c.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig5c.csv");
    c.write(&path, "distance").expect("write fig5c");
    println!("wrote {}", path.display());
}

//! **Figure 5** — comparison of 2K- and 3K-graph-constructing algorithms:
//!
//! * (a) clustering `C(k)` in skitter for the five 2K algorithms,
//! * (b) distance distribution in HOT for the five 2K algorithms,
//! * (c) distance distribution in HOT for 3K randomizing vs targeting.
//!
//! Ensembles dispatch through the `Analyzer` facade by metric name
//! (`c_k`, `d_x`). Each panel writes the plotted means as CSV plus the
//! full per-key ensemble statistics (and the original's reference
//! series) as JSON.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig5 -- [--seeds N] [--full]
//! # → results/fig5{a,b,c}.csv + results/fig5{a,b,c}.json
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{clustering_series, distance_series, series_ensemble_summary};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::{build_2k, build_3k, label_2k, ALGOS_2K};
use dk_bench::{emit_series, series_json, Config};

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let hot = inputs::load(&cfg, Input::HotLike);

    // (a) clustering in skitter per 2K algorithm
    let mut a = SeriesSet::new();
    let mut a_json: Vec<(String, String)> = Vec::new();
    for method in ALGOS_2K {
        let summary = series_ensemble_summary(&cfg, "c_k", |rng| build_2k(&skitter, method, rng));
        a.push(label_2k(method), summary.series_means("c_k").expect("c_k"));
        a_json.push((label_2k(method).to_string(), summary.to_json()));
    }
    let orig = clustering_series(&skitter);
    a_json.push(("skitter".into(), series_json(&orig)));
    a.push("skitter", orig);
    emit_series(&cfg, "fig5a", "degree", &a, a_json);

    // (b) distance distribution in HOT per 2K algorithm
    let mut b = SeriesSet::new();
    let mut b_json: Vec<(String, String)> = Vec::new();
    for method in ALGOS_2K {
        let summary = series_ensemble_summary(&cfg, "d_x", |rng| build_2k(&hot, method, rng));
        b.push(label_2k(method), summary.series_means("d_x").expect("d_x"));
        b_json.push((label_2k(method).to_string(), summary.to_json()));
    }
    let orig = distance_series(&hot);
    b_json.push(("origHOT".into(), series_json(&orig)));
    b.push("origHOT", orig);
    emit_series(&cfg, "fig5b", "distance", &b, b_json);

    // (c) distance distribution in HOT, 3K randomizing vs targeting
    let mut c = SeriesSet::new();
    let mut c_json: Vec<(String, String)> = Vec::new();
    for (name, randomizing) in [("3K-rand", true), ("3K-targ", false)] {
        let summary = series_ensemble_summary(&cfg, "d_x", |rng| build_3k(&hot, randomizing, rng));
        c.push(name, summary.series_means("d_x").expect("d_x"));
        c_json.push((name.to_string(), summary.to_json()));
    }
    let orig = distance_series(&hot);
    c_json.push(("origHOT".into(), series_json(&orig)));
    c.push("origHOT", orig);
    emit_series(&cfg, "fig5c", "distance", &c, c_json);
}

//! **Figure 5** — comparison of 2K- and 3K-graph-constructing algorithms:
//!
//! * (a) clustering `C(k)` in skitter for the five 2K algorithms,
//! * (b) distance distribution in HOT for the five 2K algorithms,
//! * (c) distance distribution in HOT for 3K randomizing vs targeting.
//!
//! Ensembles dispatch through the `Analyzer` facade by metric name
//! (`c_k`, `d_x`).
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig5 -- [--seeds N] [--full]
//! # → results/fig5{a,b,c}.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{clustering_series, distance_series, series_ensemble};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::{build_2k, build_3k, label_2k, ALGOS_2K};
use dk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let hot = inputs::load(&cfg, Input::HotLike);

    // (a) clustering in skitter per 2K algorithm
    let mut a = SeriesSet::new();
    for method in ALGOS_2K {
        let mean = series_ensemble(&cfg, "c_k", |rng| build_2k(&skitter, method, rng));
        a.push(label_2k(method), mean);
    }
    a.push("skitter", clustering_series(&skitter));
    let path = cfg.out_dir.join("fig5a.csv");
    a.write(&path, "degree").expect("write fig5a");
    println!("wrote {}", path.display());

    // (b) distance distribution in HOT per 2K algorithm
    let mut b = SeriesSet::new();
    for method in ALGOS_2K {
        let mean = series_ensemble(&cfg, "d_x", |rng| build_2k(&hot, method, rng));
        b.push(label_2k(method), mean);
    }
    b.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig5b.csv");
    b.write(&path, "distance").expect("write fig5b");
    println!("wrote {}", path.display());

    // (c) distance distribution in HOT, 3K randomizing vs targeting
    let mut c = SeriesSet::new();
    for (name, randomizing) in [("3K-rand", true), ("3K-targ", false)] {
        let mean = series_ensemble(&cfg, "d_x", |rng| build_3k(&hot, randomizing, rng));
        c.push(name, mean);
    }
    c.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig5c.csv");
    c.write(&path, "distance").expect("write fig5c");
    println!("wrote {}", path.display());
}

//! **Figure 9** — normalized node betweenness by degree for dK-random
//! (d = 0..3) vs the HOT graph.
//!
//! The qualitative signature this must reproduce (paper §5.2): from
//! d = 2 on, *low*-degree nodes form the core — betweenness at degree
//! ≈ 10 rivals that of the highest-degree nodes.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig9 -- [--seeds N]
//! # → results/fig9.csv + results/fig9.json
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{betweenness_series, series_ensemble_summary};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::{emit_series, series_json, Config};

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let mut set = SeriesSet::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for d in 0..=3u8 {
        let summary = series_ensemble_summary(&cfg, "b_k", |rng| dk_random(&hot, d, rng));
        set.push(
            format!("{d}K-random"),
            summary.series_means("b_k").expect("b_k"),
        );
        entries.push((format!("{d}K-random"), summary.to_json()));
    }
    let orig = betweenness_series(&hot);
    entries.push(("origHOT".into(), series_json(&orig)));
    set.push("origHOT", orig);
    emit_series(&cfg, "fig9", "degree", &set, entries);
}

//! **Figure 9** — normalized node betweenness by degree for dK-random
//! (d = 0..3) vs the HOT graph.
//!
//! The qualitative signature this must reproduce (paper §5.2): from
//! d = 2 on, *low*-degree nodes form the core — betweenness at degree
//! ≈ 10 rivals that of the highest-degree nodes.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig9 -- [--seeds N]
//! # → results/fig9.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{betweenness_series, series_ensemble};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let mut set = SeriesSet::new();
    for d in 0..=3u8 {
        let mean = series_ensemble(&cfg, "b_k", |rng| dk_random(&hot, d, rng));
        set.push(format!("{d}K-random"), mean);
    }
    set.push("origHOT", betweenness_series(&hot));
    let path = cfg.out_dir.join("fig9.csv");
    set.write(&path, "degree").expect("write fig9");
    println!("wrote {}", path.display());
}

//! **Figure 8** — distance distribution for dK-random (d = 0..3) vs the
//! HOT graph.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig8 -- [--seeds N]
//! # → results/fig8.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{distance_series, series_ensemble};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let mut set = SeriesSet::new();
    for d in 0..=3u8 {
        let mean = series_ensemble(&cfg, "d_x", |rng| dk_random(&hot, d, rng));
        set.push(format!("{d}K-random"), mean);
    }
    set.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig8.csv");
    set.write(&path, "distance").expect("write fig8");
    println!("wrote {}", path.display());
}

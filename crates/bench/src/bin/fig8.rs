//! **Figure 8** — distance distribution for dK-random (d = 0..3) vs the
//! HOT graph.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig8 -- [--seeds N]
//! # → results/fig8.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{distance_series, SeriesAccumulator};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let mut set = SeriesSet::new();
    for d in 0..=3u8 {
        let mut acc = SeriesAccumulator::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(i));
            acc.add(&distance_series(&dk_random(&hot, d, &mut rng)));
        }
        set.push(format!("{d}K-random"), acc.mean());
    }
    set.push("origHOT", distance_series(&hot));
    let path = cfg.out_dir.join("fig8.csv");
    set.write(&path, "distance").expect("write fig8");
    println!("wrote {}", path.display());
}

//! **Figure 8** — distance distribution for dK-random (d = 0..3) vs the
//! HOT graph.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig8 -- [--seeds N]
//! # → results/fig8.csv + results/fig8.json
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{distance_series, series_ensemble_summary};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::{emit_series, series_json, Config};

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let mut set = SeriesSet::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for d in 0..=3u8 {
        let summary = series_ensemble_summary(&cfg, "d_x", |rng| dk_random(&hot, d, rng));
        set.push(
            format!("{d}K-random"),
            summary.series_means("d_x").expect("d_x"),
        );
        entries.push((format!("{d}K-random"), summary.to_json()));
    }
    let orig = distance_series(&hot);
    entries.push(("origHOT".into(), series_json(&orig)));
    set.push("origHOT", orig);
    emit_series(&cfg, "fig8", "distance", &set, entries);
}

//! **Table 3** — scalar metrics for 2K-random HOT graphs generated using
//! different techniques (stochastic, pseudograph, matching,
//! 2K-randomizing, 2K-targeting) vs the original.
//!
//! ```text
//! cargo run -p dk-bench --release --bin table3 -- [--seeds N] [--full]
//! ```

use dk_bench::ensemble::scalar_ensemble;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::{build_2k, label_2k, ALGOS_2K};
use dk_bench::Config;
use dk_metrics::{Analyzer, MetricTable};

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    // Table 3 reports k̄, r, d̄, σd — no spectral columns
    let analyzer = Analyzer::new()
        .metric_names("n,m,gcc_fraction,k_avg,r,c_mean,d_avg,d_std,s,s2")
        .expect("registered metrics");
    let mut table = MetricTable::new();
    for method in ALGOS_2K {
        let summary = scalar_ensemble(&cfg, &analyzer, |rng| build_2k(&hot, method, rng));
        table.push_summary(label_2k(method), &summary);
    }
    table.push("origHOT", analyzer.analyze(&hot));

    println!(
        "Table 3: scalar metrics for 2K-random HOT-like graphs ({} seeds)",
        cfg.seeds
    );
    println!("{}", table.render());
    dk_bench::emit_table(&cfg, "table3", &table);
}

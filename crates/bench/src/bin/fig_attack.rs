//! **fig_attack** — comparative resilience of dK-random ensembles:
//! GCC fraction vs removal fraction under seeded random failure and
//! degree-ranked targeted attack, for 0K..3K reconstructions of the
//! skitter-like input against the original.
//!
//! The paper's companion robustness question: which dK level captures
//! how the topology *breaks*? Degree-preserving levels reproduce the
//! scale-free signature — near-immune to random failure, fragile under
//! degree attack — but the attack threshold keeps sharpening as the dK
//! order rises and the correlation/clustering structure locks in.
//!
//! Emits `results/fig_attack.csv` (per-level mean curves on a
//! percent-removed grid, random vs degree) and `results/fig_attack.json`
//! (per-level interpolated halving thresholds, mean ± std across the
//! ensemble).
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig_attack -- [--full] [--seeds N]
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::{emit_series, Config};
use dk_graph::{ensemble, Graph};
use dk_metrics::attack::{AttackOptions, Strategy, DEFAULT_ATTACK_SEED};
use dk_metrics::{json, Analyzer};

/// Percent-removed grid the per-replica curves are resampled onto so
/// replicas with different GCC sizes average pointwise.
const GRID: usize = 100;

/// Resampled GCC-fraction curve plus the interpolated halving threshold.
type Resilience = (Vec<f64>, Option<f64>);

/// One sweep on the replica's GCC.
fn resilience(g: &Graph, strategy: Strategy, seed: u64) -> Resilience {
    let rep = Analyzer::new().threads(1).attack(
        g,
        &AttackOptions {
            strategy,
            seed,
            checkpoints: Vec::new(),
        },
    );
    let n = rep.nodes;
    let curve = (0..=GRID)
        .map(|p| rep.gcc_fraction_at((p * n / GRID).min(n)))
        .collect();
    (curve, rep.threshold(0.5))
}

/// Mean and population std of a sample (skipping nothing; callers
/// filter undefined thresholds first).
fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Averages per-replica outputs into (mean curve, threshold stats).
struct LevelSummary {
    failure_curve: Vec<f64>,
    attack_curve: Vec<f64>,
    failure_thresholds: Vec<f64>,
    attack_thresholds: Vec<f64>,
}

impl LevelSummary {
    fn from_runs(runs: Vec<(Resilience, Resilience)>) -> Self {
        let replicas = runs.len() as f64;
        let mut out = LevelSummary {
            failure_curve: vec![0.0; GRID + 1],
            attack_curve: vec![0.0; GRID + 1],
            failure_thresholds: Vec::new(),
            attack_thresholds: Vec::new(),
        };
        for ((f_curve, f_t), (a_curve, a_t)) in runs {
            for (acc, y) in out.failure_curve.iter_mut().zip(f_curve) {
                *acc += y / replicas;
            }
            for (acc, y) in out.attack_curve.iter_mut().zip(a_curve) {
                *acc += y / replicas;
            }
            out.failure_thresholds.extend(f_t);
            out.attack_thresholds.extend(a_t);
        }
        out
    }

    fn json_entry(&self, replicas: u64) -> String {
        let stat = |xs: &[f64], key: &str| -> Vec<(String, String)> {
            if xs.is_empty() {
                return vec![(format!("{key}_mean"), "null".into())];
            }
            let (mean, std) = mean_std(xs);
            vec![
                (format!("{key}_mean"), json::number(mean)),
                (format!("{key}_std"), json::number(std)),
            ]
        };
        let mut fields = vec![("replicas".to_string(), replicas.to_string())];
        fields.extend(stat(&self.attack_thresholds, "attack_threshold"));
        fields.extend(stat(&self.failure_thresholds, "random_failure_threshold"));
        json::object(fields)
    }
}

fn grid_series(curve: &[f64]) -> Vec<(usize, f64)> {
    curve.iter().copied().enumerate().collect()
}

fn main() {
    let cfg = Config::from_args();
    let original = inputs::load(&cfg, Input::SkitterLike);
    println!(
        "fig_attack: skitter-like n = {}, m = {}, {} replicas per dK level",
        original.node_count(),
        original.edge_count(),
        cfg.seeds
    );
    let mut set = SeriesSet::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for d in 0..=3u8 {
        let runs = ensemble::run(
            cfg.seeds,
            cfg.master_seed ^ u64::from(d),
            cfg.threads,
            |i, rng| {
                let g = dk_random(&original, d, rng);
                let failure = resilience(&g, Strategy::Random, DEFAULT_ATTACK_SEED.wrapping_add(i));
                let attack = resilience(&g, Strategy::Degree, 0);
                (failure, attack)
            },
        );
        let level = LevelSummary::from_runs(runs);
        let label = format!("{d}K-random");
        println!(
            "  {label}: attack_threshold = {}, random_failure_threshold = {}",
            level
                .attack_thresholds
                .first()
                .map_or("undefined".into(), |_| format!(
                    "{:.4}",
                    mean_std(&level.attack_thresholds).0
                )),
            level
                .failure_thresholds
                .first()
                .map_or("undefined".into(), |_| format!(
                    "{:.4}",
                    mean_std(&level.failure_thresholds).0
                )),
        );
        set.push(
            format!("{label} failure"),
            grid_series(&level.failure_curve),
        );
        set.push(format!("{label} attack"), grid_series(&level.attack_curve));
        entries.push((label, level.json_entry(cfg.seeds)));
    }
    // the original topology as the single-graph reference row
    let (orig_failure, orig_ft) = resilience(&original, Strategy::Random, DEFAULT_ATTACK_SEED);
    let (orig_attack, orig_at) = resilience(&original, Strategy::Degree, 0);
    set.push("orig failure", grid_series(&orig_failure));
    set.push("orig attack", grid_series(&orig_attack));
    entries.push((
        "original".into(),
        json::object([
            (
                "attack_threshold".into(),
                orig_at.map_or_else(|| "null".into(), json::number),
            ),
            (
                "random_failure_threshold".into(),
                orig_ft.map_or_else(|| "null".into(), json::number),
            ),
        ]),
    ));
    emit_series(&cfg, "fig_attack", "percent_removed", &set, entries);
}

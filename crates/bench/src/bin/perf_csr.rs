//! **perf_csr** — the repo's traversal perf baseline: CSR snapshot vs
//! legacy `Vec<Vec<_>>` adjacency, and sampled (Brandes–Pich, K = 64)
//! vs exact all-pairs, on a power-law (Barabási–Albert) graph.
//!
//! Prints a human-readable comparison and appends a machine-readable
//! record (`"bench": "csr"`) to the `BENCH_metrics.json` JSON-lines log
//! next to the other artifacts, so the perf trajectory of the hot path
//! accumulates run over run (CI smokes the emitter at small n; `--full`
//! runs the ≥10⁵-node configuration the acceptance criteria reference).
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_csr -- [--full] [--threads N]
//! # → results/BENCH_metrics.json
//! ```

use dk_bench::{append_json_line, Config};
use dk_graph::CsrGraph;
use dk_metrics::sampled::sampled_traversal_csr;
use dk_metrics::{betweenness, json};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Pivot budget of the sampled pass (the acceptance criterion's K).
const SAMPLES: usize = 64;

fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let value = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

fn main() {
    let cfg = Config::from_args();
    // --full is the acceptance-scale configuration; the default keeps CI
    // smoke runs (and the exact all-pairs baseline) to a few seconds
    let n = if cfg.full { 100_000 } else { 5_000 };
    let reps = if cfg.full { 1 } else { 3 };
    let mut rng = StdRng::seed_from_u64(cfg.master_seed);
    let g = barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    );
    // the raw pass entry points clamp a 0 thread count to 1 (only the
    // analyzer facade maps 0 to all cores), so resolve it here and
    // record the *actual* worker count in the baseline
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        cfg.threads
    };
    println!(
        "perf_csr: BA power-law n = {}, m = {}, threads = {threads}, reps = {reps}",
        g.node_count(),
        g.edge_count(),
    );

    let (snapshot_ms, csr) = time_ms(reps, || CsrGraph::from_graph(&g));
    println!("CSR snapshot build        {snapshot_ms:>10.2} ms");

    // the seed memory layout: fused Brandes+distance walk over Vec<Vec<_>>
    let (legacy_ms, exact) = time_ms(reps, || {
        betweenness::betweenness_and_distances_adjacency(&g, threads)
    });
    println!("exact fused, legacy adj   {legacy_ms:>10.2} ms");

    // the ported pass over the prepared snapshot
    let (csr_ms, csr_exact) = time_ms(reps, || {
        betweenness::betweenness_and_distances_csr(&csr, threads)
    });
    println!(
        "exact fused, CSR          {csr_ms:>10.2} ms   ({:.2}x vs legacy)",
        legacy_ms / csr_ms
    );
    assert_eq!(
        exact.betweenness, csr_exact.betweenness,
        "CSR port must be bit-identical"
    );
    assert_eq!(exact.distances, csr_exact.distances);

    let (sampled_ms, sampled) = time_ms(reps, || sampled_traversal_csr(&csr, SAMPLES, threads));
    println!(
        "sampled fused, K = {SAMPLES:<4}   {sampled_ms:>10.2} ms   ({:.1}x vs exact CSR)",
        csr_ms / sampled_ms
    );

    // estimator quality at this scale, recorded alongside the timings
    let d_exact = exact.distances.mean();
    let d_sampled = sampled.distances.mean();
    let norm_max = |b: &[f64]| {
        betweenness::normalize_raw(b.to_vec(), g.node_count())
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let b_exact = norm_max(&exact.betweenness);
    let b_sampled = norm_max(&sampled.betweenness);
    let rel = |approx: f64, exact: f64| (approx - exact).abs() / exact.abs().max(1e-300);
    println!(
        "d_avg exact {d_exact:.4} vs sampled {d_sampled:.4} (rel err {:.4})",
        rel(d_sampled, d_exact)
    );
    println!(
        "b_max exact {b_exact:.6} vs sampled {b_sampled:.6} (rel err {:.4})",
        rel(b_sampled, b_exact)
    );

    let doc = json::object([
        ("bench".into(), "\"csr\"".into()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("samples".into(), SAMPLES.to_string()),
        ("snapshot_build_ms".into(), json::number(snapshot_ms)),
        ("exact_legacy_ms".into(), json::number(legacy_ms)),
        ("exact_csr_ms".into(), json::number(csr_ms)),
        ("csr_speedup".into(), json::number(legacy_ms / csr_ms)),
        ("sampled_ms".into(), json::number(sampled_ms)),
        (
            "sampled_speedup_vs_exact".into(),
            json::number(csr_ms / sampled_ms),
        ),
        ("d_avg_exact".into(), json::number(d_exact)),
        ("d_avg_sampled".into(), json::number(d_sampled)),
        (
            "d_avg_rel_err".into(),
            json::number(rel(d_sampled, d_exact)),
        ),
        ("b_max_exact".into(), json::number(b_exact)),
        ("b_max_sampled".into(), json::number(b_sampled)),
        (
            "b_max_rel_err".into(),
            json::number(rel(b_sampled, b_exact)),
        ),
    ]);
    let out = cfg.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &doc).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

//! **Figure 6** — dK-random vs skitter (d = 0..3):
//! (a) distance distribution, (b) normalized betweenness by degree,
//! (c) clustering by degree.
//!
//! Each panel is one series metric from the analyzer registry (`d_x`,
//! `b_k`, `c_k`), averaged over the ensemble by
//! `dk_bench::ensemble::series_ensemble_summary`; the plotted means go
//! to CSV, the full per-key ensemble statistics to JSON.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig6 -- [--seeds N] [--full]
//! # → results/fig6{a,b,c}.csv + results/fig6{a,b,c}.json
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::series_ensemble_summary;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::{emit_series, series_json, Config};
use dk_graph::Graph;
use dk_metrics::Analyzer;

fn panel(
    cfg: &Config,
    original: &Graph,
    original_name: &str,
    metric: &str,
) -> (SeriesSet, Vec<(String, String)>) {
    let mut set = SeriesSet::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for d in 0..=3u8 {
        let summary = series_ensemble_summary(cfg, metric, |rng| dk_random(original, d, rng));
        set.push(
            format!("{d}K-random"),
            summary.series_means(metric).expect("series metric"),
        );
        entries.push((format!("{d}K-random"), summary.to_json()));
    }
    let original_series = Analyzer::new()
        .metric_names(metric)
        .expect("registered series metric")
        .analyze(original)
        .series(metric)
        .expect("series metric")
        .to_vec();
    entries.push((original_name.to_string(), series_json(&original_series)));
    set.push(original_name, original_series);
    (set, entries)
}

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);

    for (suffix, metric, x_label) in [
        ("a", "d_x", "distance"),
        ("b", "b_k", "degree"),
        ("c", "c_k", "degree"),
    ] {
        let (set, entries) = panel(&cfg, &skitter, "skitter", metric);
        emit_series(&cfg, &format!("fig6{suffix}"), x_label, &set, entries);
    }
}

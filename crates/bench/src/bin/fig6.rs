//! **Figure 6** — dK-random vs skitter (d = 0..3):
//! (a) distance distribution, (b) normalized betweenness by degree,
//! (c) clustering by degree.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig6 -- [--seeds N] [--full]
//! # → results/fig6{a,b,c}.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::{betweenness_series, clustering_series, distance_series, series_ensemble};
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_graph::Graph;

fn panel(
    cfg: &Config,
    original: &Graph,
    original_name: &str,
    series_of: impl Fn(&Graph) -> Vec<(usize, f64)> + Sync,
) -> SeriesSet {
    let mut set = SeriesSet::new();
    for d in 0..=3u8 {
        let mean = series_ensemble(cfg, |rng| dk_random(original, d, rng), &series_of);
        set.push(format!("{d}K-random"), mean);
    }
    set.push(original_name, series_of(original));
    set
}

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);

    let a = panel(&cfg, &skitter, "skitter", distance_series);
    let path = cfg.out_dir.join("fig6a.csv");
    a.write(&path, "distance").expect("write fig6a");
    println!("wrote {}", path.display());

    let b = panel(&cfg, &skitter, "skitter", betweenness_series);
    let path = cfg.out_dir.join("fig6b.csv");
    b.write(&path, "degree").expect("write fig6b");
    println!("wrote {}", path.display());

    let c = panel(&cfg, &skitter, "skitter", clustering_series);
    let path = cfg.out_dir.join("fig6c.csv");
    c.write(&path, "degree").expect("write fig6c");
    println!("wrote {}", path.display());
}

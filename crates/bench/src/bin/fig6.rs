//! **Figure 6** — dK-random vs skitter (d = 0..3):
//! (a) distance distribution, (b) normalized betweenness by degree,
//! (c) clustering by degree.
//!
//! Each panel is one series metric from the analyzer registry (`d_x`,
//! `b_k`, `c_k`), averaged over the ensemble by
//! `dk_bench::ensemble::series_ensemble`.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig6 -- [--seeds N] [--full]
//! # → results/fig6{a,b,c}.csv
//! ```

use dk_bench::csv::SeriesSet;
use dk_bench::ensemble::series_ensemble;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_graph::Graph;
use dk_metrics::Analyzer;

fn panel(cfg: &Config, original: &Graph, original_name: &str, metric: &str) -> SeriesSet {
    let mut set = SeriesSet::new();
    for d in 0..=3u8 {
        let mean = series_ensemble(cfg, metric, |rng| dk_random(original, d, rng));
        set.push(format!("{d}K-random"), mean);
    }
    let original_series = Analyzer::new()
        .metric_names(metric)
        .expect("registered series metric")
        .analyze(original)
        .series(metric)
        .expect("series metric")
        .to_vec();
    set.push(original_name, original_series);
    set
}

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);

    let a = panel(&cfg, &skitter, "skitter", "d_x");
    let path = cfg.out_dir.join("fig6a.csv");
    a.write(&path, "distance").expect("write fig6a");
    println!("wrote {}", path.display());

    let b = panel(&cfg, &skitter, "skitter", "b_k");
    let path = cfg.out_dir.join("fig6b.csv");
    b.write(&path, "degree").expect("write fig6b");
    println!("wrote {}", path.display());

    let c = panel(&cfg, &skitter, "skitter", "c_k");
    let path = cfg.out_dir.join("fig6c.csv");
    c.write(&path, "degree").expect("write fig6c");
    println!("wrote {}", path.display());
}

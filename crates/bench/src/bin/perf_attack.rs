//! **perf_attack** — the reverse union-find attack engine's perf and
//! correctness record: every strategy's incremental trajectory checked
//! bit for bit against a per-step component recompute oracle at an
//! oracle-feasible scale, and — with `--full` — full 10⁶-node
//! Barabási–Albert removal trajectories (degree, degree-adaptive,
//! random) with their interpolated halving thresholds.
//!
//! The naive sweep is `O(n·(n + m))` — at 10⁶ nodes, a million
//! component recomputes. The engine replays the removal order backwards
//! as union-find insertions and reads the whole trajectory out of one
//! `O(m·α)` pass (see `dk_metrics::attack`), so the full curve at 10⁶
//! nodes lands in seconds.
//!
//! Appends `"bench": "attack"` records (stages `oracle` / `large`) to
//! the `BENCH_metrics.json` JSON-lines log.
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_attack -- \
//!     [--full] [--oracle-n N] [--threads N] [--seed N] [--out DIR]
//! ```

use dk_bench::append_json_line;
use dk_graph::{traversal, CsrGraph, Graph, NodeId};
use dk_metrics::attack::{gcc_trajectory, removal_order, threshold_from_sizes, Strategy};
use dk_metrics::json;
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Node count of the `--full` large-graph runs.
const LARGE_N: usize = 1_000_000;
/// Pivot budget of the oracle stage's betweenness ranking.
const RANK_SAMPLES: usize = 16;

struct Args {
    full: bool,
    oracle_n: usize,
    threads: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        oracle_n: 2_000,
        threads: 0,
        seed: 20060911,
        out_dir: PathBuf::from("results"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "flags: --full (add the 10^6-node trajectories)  --oracle-n N (default 2000)\n       --threads N (0 = all cores)  --seed N  --out DIR (default results/)"
        );
        std::process::exit(2)
    };
    while i < raw.len() {
        let flag = raw[i].as_str();
        match flag {
            "--full" => args.full = true,
            "--oracle-n" | "--threads" | "--seed" | "--out" => {
                i += 1;
                let Some(value) = raw.get(i) else {
                    eprintln!("error: {flag} needs a value");
                    usage()
                };
                match flag {
                    "--oracle-n" => args.oracle_n = value.parse().unwrap_or_else(|_| usage()),
                    "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.out_dir = PathBuf::from(value),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Process peak RSS in bytes (Linux `VmHWM`; `None` elsewhere).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn ba(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    )
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), out)
}

/// The `O(n·(n + m))` baseline: recompute the component structure from
/// scratch after every removal prefix.
fn oracle_trajectory(g: &Graph, order: &[NodeId]) -> (Vec<u32>, Vec<u32>) {
    let n = g.node_count();
    let mut alive = vec![true; n];
    let mut gcc_sizes = Vec::with_capacity(n + 1);
    let mut component_counts = Vec::with_capacity(n + 1);
    let snapshot = |alive: &[bool]| {
        let keep: Vec<NodeId> = (0..n as NodeId).filter(|&u| alive[u as usize]).collect();
        let (sub, _) = g.subgraph(&keep).expect("live nodes are valid");
        let sizes = traversal::component_sizes(&sub);
        (
            sizes.iter().copied().max().unwrap_or(0) as u32,
            sizes.len() as u32,
        )
    };
    let (s, c) = snapshot(&alive);
    gcc_sizes.push(s);
    component_counts.push(c);
    for &u in order {
        alive[u as usize] = false;
        let (s, c) = snapshot(&alive);
        gcc_sizes.push(s);
        component_counts.push(c);
    }
    (gcc_sizes, component_counts)
}

/// Engine vs per-step oracle for every strategy: bit-identical
/// trajectories, speedup recorded.
fn oracle_stage(args: &Args, threads: usize) {
    let g = ba(args.oracle_n, args.seed);
    let csr = CsrGraph::from_graph(&g);
    println!(
        "oracle: BA n = {}, m = {}, threads = {threads}",
        g.node_count(),
        g.edge_count()
    );
    let mut fields = vec![
        ("bench".into(), "\"attack\"".to_string()),
        ("stage".into(), "\"oracle\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
    ];
    for strategy in Strategy::all() {
        let order = removal_order(&csr, strategy, args.seed, RANK_SAMPLES, threads);
        let (engine_s, engine) = time_s(|| gcc_trajectory(&csr, &order));
        let (oracle_s, oracle) = time_s(|| oracle_trajectory(&g, &order));
        assert_eq!(
            engine, oracle,
            "{strategy}: engine trajectory diverged from the per-step oracle"
        );
        let threshold = threshold_from_sizes(&engine.0, g.node_count(), 0.5);
        println!(
            "{strategy:>16}: engine {engine_s:>9.4} s, oracle {oracle_s:>8.2} s ({:>6.0}x), threshold = {}",
            oracle_s / engine_s.max(1e-9),
            threshold.map_or("undefined".into(), |t| format!("{t:.4}")),
        );
        let key = strategy.name().replace('-', "_");
        fields.push((format!("engine_s_{key}"), json::number(engine_s)));
        fields.push((format!("oracle_s_{key}"), json::number(oracle_s)));
        if let Some(t) = threshold {
            fields.push((format!("threshold_{key}"), json::number(t)));
        }
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

/// The 10⁶-node trajectories: ranking + one reverse sweep per strategy.
fn large_stage(args: &Args, threads: usize) {
    let (gen_s, g) = time_s(|| ba(LARGE_N, args.seed));
    println!(
        "large: BA n = {}, m = {}, generated in {gen_s:.1} s",
        g.node_count(),
        g.edge_count()
    );
    let (csr_s, csr) = time_s(|| CsrGraph::from_graph(&g));
    let mut fields = vec![
        ("bench".into(), "\"attack\"".to_string()),
        ("stage".into(), "\"large\"".to_string()),
        ("n".into(), g.node_count().to_string()),
        ("m".into(), g.edge_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("gen_s".into(), json::number(gen_s)),
        ("csr_s".into(), json::number(csr_s)),
    ];
    for strategy in [Strategy::Degree, Strategy::DegreeAdaptive, Strategy::Random] {
        let (rank_s, order) =
            time_s(|| removal_order(&csr, strategy, args.seed, RANK_SAMPLES, threads));
        let (sweep_s, (sizes, _counts)) = time_s(|| gcc_trajectory(&csr, &order));
        let threshold = threshold_from_sizes(&sizes, g.node_count(), 0.5);
        println!(
            "{strategy:>16}: rank {rank_s:>6.2} s + sweep {sweep_s:>6.2} s, threshold = {}",
            threshold.map_or("undefined".into(), |t| format!("{t:.4}")),
        );
        let key = strategy.name().replace('-', "_");
        fields.push((format!("rank_s_{key}"), json::number(rank_s)));
        fields.push((format!("sweep_s_{key}"), json::number(sweep_s)));
        if let Some(t) = threshold {
            fields.push((format!("threshold_{key}"), json::number(t)));
        }
    }
    if let Some(p) = peak_rss_bytes() {
        println!("peak RSS {:.0} MiB", p as f64 / (1 << 20) as f64);
        fields.push((
            "peak_rss_mb".into(),
            json::number(p as f64 / (1 << 20) as f64),
        ));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn main() {
    let args = parse_args();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };
    oracle_stage(&args, threads);
    if args.full {
        large_stage(&args, threads);
    }
}

//! **Figure 3** — picturizations of 0K/1K/2K/3K-random graphs and the
//! original HOT graph (force-directed layout, SVG).
//!
//! Node size/color scale with degree, so the paper's visual narrative —
//! high-degree nodes migrating from the crowded 1K core out to the 2K/3K
//! periphery — is visible directly in the output files.
//!
//! ```text
//! cargo run -p dk-bench --release --bin fig3
//! # → results/fig3_{0k,1k,2k,3k,original}.svg
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_graph::layout::{fruchterman_reingold, LayoutOptions};
use dk_graph::svg::{render_svg, SvgOptions};
use dk_graph::{traversal, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn render(cfg: &Config, g: &Graph, name: &str, title: &str) {
    let (gcc, _) = traversal::giant_component(g);
    let mut rng = StdRng::seed_from_u64(cfg.master_seed ^ 0xf163);
    let layout_opts = LayoutOptions {
        size: 1000.0,
        iterations: 200,
        // exact repulsion up to HOT scale; sampled above (full skitter
        // picturization is not part of the paper's Figure 3)
        repulsion_sample: if gcc.node_count() > 2500 {
            Some(32)
        } else {
            None
        },
    };
    let pos = fruchterman_reingold(&gcc, &layout_opts, &mut rng);
    let svg = render_svg(
        &gcc,
        &pos,
        &SvgOptions {
            title: title.to_string(),
            ..SvgOptions::default()
        },
    );
    let path = cfg.out_dir.join(format!("fig3_{name}.svg"));
    std::fs::write(&path, svg).expect("write svg");
    println!(
        "wrote {} (n = {}, m = {})",
        path.display(),
        gcc.node_count(),
        gcc.edge_count()
    );
}

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    for d in 0..=3u8 {
        let mut rng = StdRng::seed_from_u64(cfg.run_seed(d as u64));
        let g = dk_random(&hot, d, &mut rng);
        render(
            &cfg,
            &g,
            &format!("{d}k"),
            &format!("{d}K-random HOT-like graph"),
        );
    }
    render(&cfg, &hot, "original", "original HOT-like graph");
}

//! **Table 6** — scalar metrics for dK-random (d = 0..3) vs the skitter
//! graph: `k̄, r, C̄, d̄, σ_d, λ1, λ_{n−1}` on GCCs.
//!
//! ```text
//! cargo run -p dk-bench --release --bin table6 -- [--full] [--seeds N]
//! ```

use dk_bench::ensemble::scalar_ensemble;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_metrics::{Analyzer, MetricTable};

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let analyzer = Analyzer::new(); // the paper's full battery incl. spectral
    let mut table = MetricTable::new();
    for d in 0..=3u8 {
        let summary = scalar_ensemble(&cfg, &analyzer, |rng| dk_random(&skitter, d, rng));
        table.push_summary(format!("{d}K"), &summary);
    }
    table.push("skitter", analyzer.analyze(&skitter));

    println!(
        "Table 6: dK-random vs skitter-like (n = {}, m = {}, {} seeds{})",
        skitter.node_count(),
        skitter.edge_count(),
        cfg.seeds,
        if cfg.full {
            ", paper scale"
        } else {
            ", CI scale"
        }
    );
    println!("{}", table.render());
    dk_bench::emit_table(&cfg, "table6", &table);
}

//! **Ablations** of the reproduction's design choices (DESIGN.md §6):
//!
//! 1. **Swap budget** — the paper prescribes `10 × census` rewirings;
//!    we default to `50·m` attempts following Gkantsidis et al. \[15\].
//!    Sweep the per-edge factor and measure residual metric drift (the
//!    paper's own convergence criterion): the curve should flatten well
//!    before 50, validating the default.
//! 2. **Targeting bootstrap** — matching (exact degrees) vs pseudograph
//!    (paper-literal, cleanup perturbs degrees): compare reachable `D2`.
//! 3. **Neutral-move acceptance** — plateau moves on vs off for
//!    2K-targeting: effect on final distance and acceptance counts.
//!
//! ```text
//! cargo run -p dk-bench --release --bin ablation
//! # → results/ablation_{budget,bootstrap,neutral}.csv
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::Config;
use dk_core::dist::{Dist1K, Dist2K};
use dk_core::generate::rewire::{verify_randomization, RewireOptions, SwapBudget};
use dk_core::generate::target::{generate_2k_random, Bootstrap, TargetOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);

    // --- 1. budget ablation -------------------------------------------
    println!("budget ablation: residual drift after randomizing with k·m attempts (d = 1, 2)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "factor", "d1_C_drift", "d1_r_drift", "d2_C_drift", "d2_r_drift"
    );
    let mut csv = String::from("factor,d1_clustering_drift,d1_assortativity_drift,d2_clustering_drift,d2_assortativity_drift\n");
    for factor in [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let opts = RewireOptions {
            budget: SwapBudget::AttemptsPerEdge(factor),
        };
        let mut row = vec![factor.to_string()];
        let mut cells = Vec::new();
        for d in [1u8, 2] {
            // randomize with the factor, then probe with the same factor:
            // drift ≈ 0 means the chain had already mixed.
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(d as u64));
            let mut g = hot.clone();
            dk_core::generate::rewire::randomize(&mut g, d, &opts, &mut rng);
            let probe = verify_randomization(&g, d, &opts, &mut rng);
            cells.push(probe.clustering_drift);
            cells.push(probe.assortativity_drift);
        }
        println!(
            "{:>8} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            factor, cells[0], cells[1], cells[2], cells[3]
        );
        row.extend(cells.iter().map(|c| c.to_string()));
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    std::fs::write(cfg.out_dir.join("ablation_budget.csv"), csv).expect("write");

    // --- 2. bootstrap ablation ----------------------------------------
    println!("\nbootstrap ablation: 2K-targeting final D2 by bootstrap family (5 seeds)");
    let target = Dist2K::from_graph(&hot);
    let mut csv = String::from("bootstrap,seed,final_d2,accepted\n");
    for (name, bootstrap) in [
        ("matching", Bootstrap::Matching),
        ("pseudograph", Bootstrap::Pseudograph),
    ] {
        let mut final_d2 = Vec::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(i));
            let (_, stats) =
                generate_2k_random(&target, bootstrap, &TargetOptions::default(), &mut rng)
                    .expect("HOT JDD realizable");
            csv.push_str(&format!(
                "{name},{i},{},{}\n",
                stats.final_distance, stats.accepted
            ));
            final_d2.push(stats.final_distance);
        }
        let mean: f64 = final_d2.iter().sum::<f64>() / final_d2.len() as f64;
        println!("  {name:<12} mean final D2 = {mean:.1}  (0 = exact JDD reached)");
    }
    std::fs::write(cfg.out_dir.join("ablation_bootstrap.csv"), csv).expect("write");

    // --- 3. neutral-move ablation --------------------------------------
    println!("\nneutral-move ablation: 2K-targeting with/without plateau acceptance");
    let d1 = Dist1K::from_graph(&hot);
    let mut csv = String::from("accept_neutral,seed,final_d2,accepted\n");
    for accept_neutral in [true, false] {
        let mut vals = Vec::new();
        for i in 0..cfg.seeds {
            let mut rng = StdRng::seed_from_u64(cfg.run_seed(100 + i));
            let mut g = dk_core::generate::matching::generate_1k(&d1, &mut rng)
                .expect("graphical")
                .graph;
            let opts = TargetOptions {
                accept_neutral,
                max_attempts: 1_500_000,
                patience: Some(150_000),
                ..Default::default()
            };
            let stats =
                dk_core::generate::target::target_2k_from_1k(&mut g, &target, &opts, &mut rng);
            csv.push_str(&format!(
                "{accept_neutral},{i},{},{}\n",
                stats.final_distance, stats.accepted
            ));
            vals.push(stats.final_distance);
        }
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        println!("  accept_neutral = {accept_neutral:<5} mean final D2 = {mean:.1}");
    }
    std::fs::write(cfg.out_dir.join("ablation_neutral.csv"), csv).expect("write");
    println!("\nwrote results/ablation_{{budget,bootstrap,neutral}}.csv");
}

//! **perf_mcmc** — the incremental-move MCMC engine's perf record:
//! 2K generation through `dk-mcmc` (1K-scramble a Barabási–Albert graph,
//! then 2K-target it back to the original JDD through the chain), with
//! moves/s, acceptance rate, and the D₂ descent recorded — and, with
//! `--full`, the same pipeline at 10⁶ nodes verified against the target
//! JDD with the sketch/sampled distance battery.
//!
//! The scramble-then-recover shape guarantees the target JDD is feasible
//! (the original graph realizes it), so the run measures the engine, not
//! the realizability of a synthetic target.
//!
//! Appends `"bench": "mcmc_2k"` / `"bench": "mcmc_2k_large"` records to
//! the `BENCH_metrics.json` JSON-lines log.
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_mcmc -- \
//!     [--full] [--n N] [--threads N] [--seed N] [--out DIR]
//! ```

use dk_bench::append_json_line;
use dk_core::dist::Dist2K;
use dk_core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_core::generate::target::{target_2k_from_1k, TargetOptions};
use dk_graph::Graph;
use dk_metrics::{json, Analyzer};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// Node count of the `--full` large-graph run.
const LARGE_N: usize = 1_000_000;
/// Pivot budget of the sampled-distance verification metric.
const SAMPLES: usize = 64;
/// Register bits of the sketch verification metric (matches the
/// perf_sketch CI-budget point).
const SKETCH_BITS: u32 = 6;

struct Args {
    full: bool,
    n: usize,
    threads: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        n: 5_000,
        threads: 0,
        seed: 20060911,
        out_dir: PathBuf::from("results"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "flags: --full (add the 10^6-node run)  --n N (small-stage nodes, default 5000)\n       --threads N (0 = all cores)  --seed N  --out DIR (default results/)"
        );
        std::process::exit(2)
    };
    while i < raw.len() {
        let flag = raw[i].as_str();
        match flag {
            "--full" => args.full = true,
            "--n" | "--threads" | "--seed" | "--out" => {
                i += 1;
                let Some(value) = raw.get(i) else {
                    eprintln!("error: {flag} needs a value");
                    usage()
                };
                match flag {
                    "--n" => args.n = value.parse().unwrap_or_else(|_| usage()),
                    "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.out_dir = PathBuf::from(value),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Process peak RSS in bytes (Linux `VmHWM`; `None` elsewhere).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn ba(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    )
}

fn time_s<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), out)
}

/// One scramble-then-recover run: 1K-randomize `original` through the
/// chain, 2K-target it back to `original`'s JDD, and append the record.
///
/// Returns the recovered graph for downstream verification.
fn mcmc_stage(args: &Args, bench: &str, original: &Graph, max_attempts: u64) -> Graph {
    let m = original.edge_count() as u64;
    let target = Dist2K::from_graph(original);
    let mut g = original.clone();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x2b);

    let scramble_budget = RewireOptions {
        budget: SwapBudget::Attempts(2 * m),
    };
    let (scramble_s, scramble) = time_s(|| randomize(&mut g, 1, &scramble_budget, &mut rng));
    let d2_scrambled = Dist2K::from_graph(&g).distance_sq(&target);
    println!(
        "{bench}: scrambled in {scramble_s:.2} s ({} accepted / {} attempts), D2 = {d2_scrambled:.3e}",
        scramble.accepted, scramble.attempts
    );

    let opts = TargetOptions {
        max_attempts,
        patience: Some((max_attempts / 10).max(200_000)),
        ..Default::default()
    };
    let (target_s, stats) = time_s(|| target_2k_from_1k(&mut g, &target, &opts, &mut rng));
    let moves_s = stats.attempts as f64 / target_s.max(1e-9);
    let acceptance = stats.accepted as f64 / stats.attempts.max(1) as f64;
    println!(
        "{bench}: 2K-targeted in {target_s:.2} s — {:.2e} attempts ({moves_s:.3e} moves/s, acceptance {acceptance:.3}), D2 {:.3e} → {:.3e}",
        stats.attempts as f64, stats.initial_distance, stats.final_distance
    );
    assert!(
        stats.final_distance < stats.initial_distance * 0.05,
        "2K targeting must recover most of the JDD distance: {} → {}",
        stats.initial_distance,
        stats.final_distance
    );

    let mut fields = vec![
        ("bench".into(), format!("\"{bench}\"")),
        ("n".into(), original.node_count().to_string()),
        ("m".into(), original.edge_count().to_string()),
        // the chain is serial by construction (one rng, one graph)
        ("threads".into(), "1".to_string()),
        ("scramble_attempts".into(), scramble.attempts.to_string()),
        ("scramble_accepted".into(), scramble.accepted.to_string()),
        ("scramble_s".into(), json::number(scramble_s)),
        ("target_attempts".into(), stats.attempts.to_string()),
        ("target_accepted".into(), stats.accepted.to_string()),
        ("target_s".into(), json::number(target_s)),
        ("moves_s".into(), json::number(moves_s)),
        ("acceptance".into(), json::number(acceptance)),
        ("d2_initial".into(), json::number(stats.initial_distance)),
        ("d2_final".into(), json::number(stats.final_distance)),
    ];
    if let Some(p) = peak_rss_bytes() {
        fields.push((
            "peak_rss_mb".into(),
            json::number(p as f64 / (1 << 20) as f64),
        ));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
    g
}

/// Verifies a recovered 10⁶-node graph against the original with the
/// sketch/sampled battery: assortativity `r` is a direct function of the
/// JDD the chain targeted (tight assert); the distance estimators are
/// 2K-correlated but not pinned (recorded, loose assert).
fn verify_large(args: &Args, threads: usize, original: &Graph, recovered: &Graph) {
    let battery = "r,distance_approx,avg_distance_sketch";
    let analyzer = Analyzer::new()
        .metric_names(battery)
        .expect("battery names are registered")
        .threads(threads)
        .sample_sources(SAMPLES)
        .sketch_bits(SKETCH_BITS);
    let (orig_s, orig) = time_s(|| analyzer.analyze(original));
    let (rec_s, rec) = time_s(|| analyzer.analyze(recovered));
    let scalar = |r: &dk_metrics::Report, name: &str| r.scalar(name).unwrap_or(f64::NAN);
    let r_orig = scalar(&orig, "r");
    let r_rec = scalar(&rec, "r");
    let d_orig = scalar(&orig, "avg_distance_sketch");
    let d_rec = scalar(&rec, "avg_distance_sketch");
    let d_gap = (d_rec - d_orig).abs() / d_orig;
    println!(
        "verify: battery on original in {orig_s:.1} s, recovered in {rec_s:.1} s — \
         r {r_orig:.4} vs {r_rec:.4}, d_avg_sketch {d_orig:.4} vs {d_rec:.4} (gap {d_gap:.4})"
    );
    assert!(
        (r_rec - r_orig).abs() < 0.02,
        "assortativity must be pinned by the recovered JDD: {r_orig} vs {r_rec}"
    );
    assert!(
        d_gap < 0.25,
        "sketch distance should stay 2K-correlated: {d_orig} vs {d_rec}"
    );
    let fields = vec![
        ("bench".into(), "\"mcmc_2k_verify\"".to_string()),
        ("n".into(), original.node_count().to_string()),
        ("threads".into(), threads.to_string()),
        ("battery".into(), format!("\"{battery}\"")),
        ("r_original".into(), json::number(r_orig)),
        ("r_recovered".into(), json::number(r_rec)),
        (
            "d_approx_original".into(),
            json::number(scalar(&orig, "distance_approx")),
        ),
        (
            "d_approx_recovered".into(),
            json::number(scalar(&rec, "distance_approx")),
        ),
        ("d_sketch_original".into(), json::number(d_orig)),
        ("d_sketch_recovered".into(), json::number(d_rec)),
        ("d_sketch_gap".into(), json::number(d_gap)),
        ("analyze_s".into(), json::number(orig_s + rec_s)),
    ];
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn main() {
    let args = parse_args();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };
    let (gen_s, small) = time_s(|| ba(args.n, args.seed));
    println!(
        "small: BA n = {}, m = {}, generated in {gen_s:.2} s",
        small.node_count(),
        small.edge_count()
    );
    mcmc_stage(&args, "mcmc_2k", &small, 4_000_000);
    if args.full {
        let (gen_s, large) = time_s(|| ba(LARGE_N, args.seed));
        println!(
            "large: BA n = {}, m = {}, generated in {gen_s:.1} s",
            large.node_count(),
            large.edge_count()
        );
        let recovered = mcmc_stage(&args, "mcmc_2k_large", &large, 60_000_000);
        verify_large(&args, threads, &large, &recovered);
    }
}

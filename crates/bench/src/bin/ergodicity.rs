//! **Ergodicity check** (paper §4.1.4, after Maslov et al. \[21\]):
//! dK-targeting rewiring at temperature `T` interpolates between pure
//! randomizing (`T → ∞`) and strict targeting (`T → 0`). "To verify
//! ergodicity, we can start with a high temperature and then gradually
//! cool the system while monitoring any metric known to have different
//! values in dK- and d'K-graphs. If this metric's value forms a
//! continuous function of the temperature, then our rewiring process is
//! ergodic."
//!
//! This binary performs exactly that experiment for d' = 1, d = 2 on the
//! HOT-like graph, monitoring assortativity `r` (which differs sharply
//! between 1K-random and 2K-graphs of HOT): the output series should be
//! continuous in `log T`, reproducing the Maslov-style conclusion that
//! zero-temperature targeting is safe.
//!
//! ```text
//! cargo run -p dk-bench --release --bin ergodicity
//! # → results/ergodicity.csv
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::Config;
use dk_core::dist::{Dist1K, Dist2K};
use dk_core::generate::matching;
use dk_core::generate::target::{target_2k_from_1k, TargetOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let target = Dist2K::from_graph(&hot);
    let d1 = Dist1K::from_graph(&hot);

    // Temperatures from hot to cold (log-spaced), plus T = 0.
    let mut temps: Vec<f64> = (0..=12)
        .map(|i| 10f64.powf(6.0 - 0.75 * i as f64))
        .collect();
    temps.push(0.0);

    println!("ergodicity sweep: 2K-targeting 1K-preserving rewiring on HOT-like");
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "temperature", "r", "D2_final", "accept_rate"
    );
    let mut csv = String::from("temperature,r,d2_final,accept_rate\n");
    for (i, &t) in temps.iter().enumerate() {
        // fresh 1K bootstrap per temperature, same seed lane
        let mut rng = StdRng::seed_from_u64(cfg.run_seed(i as u64));
        let mut g = matching::generate_1k(&d1, &mut rng)
            .expect("HOT degree sequence is graphical")
            .graph;
        let opts = TargetOptions {
            max_attempts: 400_000,
            temperature: t,
            stop_at_zero: true,
            patience: Some(100_000),
            ..Default::default()
        };
        let stats = target_2k_from_1k(&mut g, &target, &opts, &mut rng);
        let r = dk_metrics::jdd::assortativity(&g);
        let rate = stats.accepted as f64 / stats.attempts.max(1) as f64;
        println!(
            "{:>12.3e} {:>10.4} {:>12.1} {:>12.4}",
            t, r, stats.final_distance, rate
        );
        csv.push_str(&format!("{t},{r},{},{rate}\n", stats.final_distance));
    }
    let out = cfg.out_dir.join("ergodicity.csv");
    std::fs::write(&out, csv).expect("write ergodicity.csv");
    println!(
        "\nwrote {} — `r` should vary continuously from the 1K-random value\n\
         to the original's {:.3} as T cools (no discontinuity ⇒ ergodic).",
        out.display(),
        dk_metrics::jdd::assortativity(&hot)
    );
}

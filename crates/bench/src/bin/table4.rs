//! **Table 4** — scalar metrics for 3K-random HOT graphs:
//! 3K-randomizing rewiring vs 3K-targeting rewiring vs original.
//!
//! ```text
//! cargo run -p dk-bench --release --bin table4 -- [--seeds N]
//! ```

use dk_bench::ensemble::scalar_ensemble;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::build_3k;
use dk_bench::Config;
use dk_metrics::{Analyzer, MetricTable};

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let analyzer = Analyzer::new()
        .metric_names("n,m,gcc_fraction,k_avg,r,c_mean,d_avg,d_std,s,s2")
        .expect("registered metrics");
    let mut table = MetricTable::new();
    let rand = scalar_ensemble(&cfg, &analyzer, |rng| build_3k(&hot, true, rng));
    table.push_summary("3K-rand", &rand);
    let targ = scalar_ensemble(&cfg, &analyzer, |rng| build_3k(&hot, false, rng));
    table.push_summary("3K-targ", &targ);
    table.push("origHOT", analyzer.analyze(&hot));

    println!(
        "Table 4: scalar metrics for 3K-random HOT-like graphs ({} seeds)",
        cfg.seeds
    );
    println!("{}", table.render());
    dk_bench::emit_table(&cfg, "table4", &table);
}

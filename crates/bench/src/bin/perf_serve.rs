//! **perf_serve** — throughput and tail-latency record of the `dk
//! serve` daemon under concurrent mixed load.
//!
//! Spawns an in-process daemon on a Unix socket, loads a Barabási–
//! Albert graph, and drives ≥ 1000 concurrent requests from a pool of
//! client connections: warm metric lookups (memo hits), distinct-knob
//! metric passes, `stats` polls, and deliberately over-budget requests
//! (which must come back as structured `over_budget` errors, not
//! allocations). A separate cold-cache barrage fires identical
//! expensive requests from every client at once to measure request
//! coalescing — the `computed`/`coalesced` counters prove the collapse.
//!
//! Appends `"bench": "serve"` records (stages `mixed` / `coalesce`,
//! plus `large` with `--full`) to the `BENCH_metrics.json` JSON-lines
//! log: throughput, p50/p95/p99 latency, and the scheduler counters.
//!
//! ```text
//! cargo run -p dk-bench --release --bin perf_serve -- \
//!     [--full] [--n N] [--clients C] [--requests R] [--threads N] [--seed N] [--out DIR]
//! ```

use dk_bench::append_json_line;
use dk_graph::{io as graph_io, Graph};
use dk_json::JsonValue;
use dk_metrics::json;
use dk_serve::{Client, Counters, Server, ServerConfig};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Node count of the `--full` large-graph stage.
const LARGE_N: usize = 200_000;

struct Args {
    full: bool,
    n: usize,
    clients: usize,
    requests: usize,
    threads: usize,
    seed: u64,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        full: false,
        n: 20_000,
        clients: 8,
        requests: 150,
        threads: 0,
        seed: 20060911,
        out_dir: PathBuf::from("results"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "flags: --full (add the {LARGE_N}-node stage)  --n N (default 20000)\n       --clients C (default 8)  --requests R per client (default 150)\n       --threads N (0 = all cores)  --seed N  --out DIR (default results/)"
        );
        std::process::exit(2)
    };
    while i < raw.len() {
        let flag = raw[i].as_str();
        match flag {
            "--full" => args.full = true,
            "--n" | "--clients" | "--requests" | "--threads" | "--seed" | "--out" => {
                i += 1;
                let Some(value) = raw.get(i) else {
                    eprintln!("error: {flag} needs a value");
                    usage()
                };
                match flag {
                    "--n" => args.n = value.parse().unwrap_or_else(|_| usage()),
                    "--clients" => args.clients = value.parse().unwrap_or_else(|_| usage()),
                    "--requests" => args.requests = value.parse().unwrap_or_else(|_| usage()),
                    "--threads" => args.threads = value.parse().unwrap_or_else(|_| usage()),
                    "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
                    _ => args.out_dir = PathBuf::from(value),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    args
}

/// Process peak RSS in bytes (Linux `VmHWM`; `None` elsewhere).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn ba(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    barabasi_albert(
        &BaParams {
            nodes: n,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    )
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("perf_serve_{}_{tag}.sock", std::process::id()))
}

fn is_ok(response: &str) -> bool {
    JsonValue::parse(response)
        .ok()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        == Some(true)
}

fn error_code(response: &str) -> Option<String> {
    let v = JsonValue::parse(response).ok()?;
    Some(v.get("error")?.get("code")?.as_str()?.to_string())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client's slice of the mixed workload. Returns per-request
/// latencies in seconds and the number of `over_budget` rejections it
/// observed (which are expected, deliberate probes).
fn client_workload(socket: &Path, requests: usize, id: usize) -> (Vec<f64>, u64) {
    let mut client = Client::connect(socket).expect("connect to daemon");
    let mut latencies = Vec::with_capacity(requests);
    let mut rejected = 0u64;
    for i in 0..requests {
        // a 16-request cycle: mostly warm lookups, a few distinct-knob
        // passes, stats polls, and one over-budget probe
        let request = match i % 16 {
            0..=9 => r#"{"op":"metric","graph":"g","metrics":"cheap"}"#.to_string(),
            10 | 11 => r#"{"op":"metric","graph":"g","metrics":"k_avg,r"}"#.to_string(),
            12 => format!(
                r#"{{"op":"metric","graph":"g","metrics":"cheap","samples":{}}}"#,
                32 + (id % 4) * 16
            ),
            13 | 14 => r#"{"op":"stats"}"#.to_string(),
            _ => r#"{"op":"metric","graph":"g","memory_budget":64}"#.to_string(),
        };
        let t0 = Instant::now();
        let response = client.request(&request).expect("request");
        latencies.push(t0.elapsed().as_secs_f64());
        if i % 16 == 15 {
            assert_eq!(
                error_code(&response).as_deref(),
                Some("over_budget"),
                "budget probe must be rejected: {response}"
            );
            rejected += 1;
        } else {
            assert!(is_ok(&response), "request failed: {response}");
        }
    }
    (latencies, rejected)
}

fn snapshot(c: &Counters) -> (u64, u64, u64, u64, u64) {
    (
        Counters::get(&c.served),
        Counters::get(&c.computed),
        Counters::get(&c.coalesced),
        Counters::get(&c.memo_hits),
        Counters::get(&c.rejected),
    )
}

/// The concurrent mixed-load stage: `clients × requests` requests, tail
/// latencies, throughput, counter accounting.
fn mixed_stage(args: &Args, threads: usize) {
    let g = ba(args.n, args.seed);
    let (n, m) = (g.node_count(), g.edge_count());
    let edges = std::env::temp_dir().join(format!("perf_serve_{}_g.edges", std::process::id()));
    graph_io::save_edge_list(&g, &edges).expect("write edge list");
    let config = ServerConfig {
        socket: sock_path("mixed"),
        memory_budget: None,
        threads,
    };
    let server = Server::spawn(&config).expect("bind socket");
    let mut boot = Client::connect(&config.socket).expect("connect");
    let load = boot
        .request(&format!(
            r#"{{"op":"load","graph":"g","path":"{}"}}"#,
            edges.display()
        ))
        .expect("load");
    assert!(is_ok(&load), "{load}");

    let total = args.clients * args.requests;
    println!(
        "mixed: BA n = {n}, m = {m}, {} clients x {} requests = {total}, threads = {threads}",
        args.clients, args.requests
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|id| {
            let socket = config.socket.clone();
            let requests = args.requests;
            std::thread::spawn(move || client_workload(&socket, requests, id))
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut probe_rejections = 0u64;
    for handle in handles {
        let (lats, rejected) = handle.join().expect("client thread");
        latencies.extend(lats);
        probe_rejections += rejected;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let throughput = total as f64 / wall_s.max(1e-9);
    let (served, computed, coalesced, memo_hits, rejected) = snapshot(&server.registry().counters);
    assert!(rejected >= probe_rejections, "rejection counter accounting");
    assert!(
        computed + coalesced + memo_hits + rejected > 0,
        "scheduler counters must move under load"
    );
    println!(
        "{total} requests in {wall_s:.2} s = {throughput:.0} req/s; p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3
    );
    println!(
        "counters: served {served}, computed {computed}, coalesced {coalesced}, memo_hits {memo_hits}, rejected {rejected}"
    );
    server.stop();
    let _ = std::fs::remove_file(&edges);

    let fields = vec![
        ("bench".into(), "\"serve\"".to_string()),
        ("stage".into(), "\"mixed\"".to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
        ("threads".into(), threads.to_string()),
        ("clients".into(), args.clients.to_string()),
        ("requests".into(), total.to_string()),
        ("time_s".into(), json::number(wall_s)),
        ("throughput_rps".into(), json::number(throughput)),
        ("p50_ms".into(), json::number(p50 * 1e3)),
        ("p95_ms".into(), json::number(p95 * 1e3)),
        ("p99_ms".into(), json::number(p99 * 1e3)),
        ("served".into(), served.to_string()),
        ("computed".into(), computed.to_string()),
        ("coalesced".into(), coalesced.to_string()),
        ("memo_hits".into(), memo_hits.to_string()),
        ("rejected".into(), rejected.to_string()),
    ];
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

/// The coalescing barrage: every client fires the *same* cold-cache
/// request at once; the counters prove most of them collapsed onto the
/// leader's computation (or replayed its memoized result).
fn coalesce_stage(args: &Args, threads: usize) {
    let g = ba(args.n, args.seed + 1);
    let (n, m) = (g.node_count(), g.edge_count());
    let edges = std::env::temp_dir().join(format!("perf_serve_{}_c.edges", std::process::id()));
    graph_io::save_edge_list(&g, &edges).expect("write edge list");
    let config = ServerConfig {
        socket: sock_path("coalesce"),
        memory_budget: None,
        threads,
    };
    let server = Server::spawn(&config).expect("bind socket");
    let mut boot = Client::connect(&config.socket).expect("connect");
    let load = boot
        .request(&format!(
            r#"{{"op":"load","graph":"g","path":"{}"}}"#,
            edges.display()
        ))
        .expect("load");
    assert!(is_ok(&load), "{load}");

    // an expensive distinct key nothing has warmed: sampled distances
    let barrage = r#"{"op":"metric","graph":"g","metrics":"cheap","samples":48}"#;
    let clients = args.clients.max(4);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let socket = config.socket.clone();
            let request = barrage.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let response = client.request(&request).expect("request");
                assert!(is_ok(&response), "{response}");
                response
            })
        })
        .collect();
    let bodies: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "coalesced responses must be byte-identical"
    );
    let (_, computed, coalesced, memo_hits, _) = snapshot(&server.registry().counters);
    // every client got the same body from ONE computation: the rest
    // parked on the flight or replayed the memo
    assert_eq!(computed, 1, "exactly one computation for {clients} clients");
    assert_eq!(
        coalesced + memo_hits,
        clients as u64 - 1,
        "all other requests collapsed"
    );
    println!(
        "coalesce: {clients} identical requests in {wall_s:.2} s -> computed {computed}, coalesced {coalesced}, memo_hits {memo_hits}"
    );
    server.stop();
    let _ = std::fs::remove_file(&edges);

    let fields = vec![
        ("bench".into(), "\"serve\"".to_string()),
        ("stage".into(), "\"coalesce\"".to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
        ("threads".into(), threads.to_string()),
        ("clients".into(), clients.to_string()),
        ("time_s".into(), json::number(wall_s)),
        ("computed".into(), computed.to_string()),
        ("coalesced".into(), coalesced.to_string()),
        ("memo_hits".into(), memo_hits.to_string()),
    ];
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

/// The `--full` stage: a 200k-node graph behind the daemon — cold
/// cheap-battery pass, warm repeat, and one attack sweep.
fn large_stage(args: &Args, threads: usize) {
    let t_gen = Instant::now();
    let g = ba(LARGE_N, args.seed);
    let gen_s = t_gen.elapsed().as_secs_f64();
    let (n, m) = (g.node_count(), g.edge_count());
    let edges = std::env::temp_dir().join(format!("perf_serve_{}_l.edges", std::process::id()));
    graph_io::save_edge_list(&g, &edges).expect("write edge list");
    println!("large: BA n = {n}, m = {m}, generated in {gen_s:.1} s");
    let config = ServerConfig {
        socket: sock_path("large"),
        memory_budget: None,
        threads,
    };
    let server = Server::spawn(&config).expect("bind socket");
    let mut client = Client::connect(&config.socket).expect("connect");
    let mut timed = |label: &str, request: String| -> f64 {
        let t0 = Instant::now();
        let response = client.request(&request).expect("request");
        let dt = t0.elapsed().as_secs_f64();
        assert!(is_ok(&response), "{label}: {response}");
        println!("{label:>12}: {dt:.2} s");
        dt
    };
    let load_s = timed(
        "load",
        format!(
            r#"{{"op":"load","graph":"g","path":"{}"}}"#,
            edges.display()
        ),
    );
    let cold_s = timed(
        "cold cheap",
        r#"{"op":"metric","graph":"g","metrics":"cheap"}"#.to_string(),
    );
    let warm_s = timed(
        "warm cheap",
        r#"{"op":"metric","graph":"g","metrics":"cheap"}"#.to_string(),
    );
    assert!(
        warm_s < cold_s,
        "memoized repeat must beat the cold pass ({warm_s:.3} s vs {cold_s:.3} s)"
    );
    let attack_s = timed(
        "attack",
        r#"{"op":"attack","graph":"g","strategy":"degree","checkpoints":[0.05,0.25],"samples":16}"#
            .to_string(),
    );
    server.stop();
    let _ = std::fs::remove_file(&edges);

    let mut fields = vec![
        ("bench".into(), "\"serve\"".to_string()),
        ("stage".into(), "\"large\"".to_string()),
        ("n".into(), n.to_string()),
        ("m".into(), m.to_string()),
        ("threads".into(), threads.to_string()),
        ("gen_s".into(), json::number(gen_s)),
        ("load_s".into(), json::number(load_s)),
        ("cold_cheap_s".into(), json::number(cold_s)),
        ("warm_cheap_s".into(), json::number(warm_s)),
        ("attack_s".into(), json::number(attack_s)),
    ];
    if let Some(p) = peak_rss_bytes() {
        println!("peak RSS {:.0} MiB", p as f64 / (1 << 20) as f64);
        fields.push((
            "peak_rss_mb".into(),
            json::number(p as f64 / (1 << 20) as f64),
        ));
    }
    let out = args.out_dir.join("BENCH_metrics.json");
    append_json_line(&out, &json::object(fields)).expect("append to BENCH_metrics.json");
    println!("appended to {}", out.display());
}

fn main() {
    let args = parse_args();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        args.threads
    };
    mixed_stage(&args, threads);
    coalesce_stage(&args, threads);
    if args.full {
        large_stage(&args, threads);
    }
}

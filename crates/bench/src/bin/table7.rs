//! **Table 7** — 2K-space explorations for skitter: columns are
//! clustering-minimized, clustering-maximized, S2-minimized,
//! S2-maximized, 2K-random, and the original; plus the `S2/S2max` row.
//!
//! `S2max` is, as in the paper's normalization, the largest S2 observed
//! across all columns (attained by the Max-S2 exploration).
//!
//! ```text
//! cargo run -p dk-bench --release --bin table7 -- [--full]
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_core::explore::{explore_2k, Direction, ExploreOptions, Objective2K};
use dk_metrics::{Analyzer, MetricTable, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let analyzer = Analyzer::new(); // default battery includes s2
    let explore_opts = ExploreOptions {
        max_attempts: if cfg.full { 3_000_000 } else { 600_000 },
        patience: Some(if cfg.full { 400_000 } else { 120_000 }),
    };

    // exploration columns are single runs (they are deterministic hill
    // climbs, not random ensembles — the paper reports one per direction)
    let mut cols: Vec<(String, Report)> = Vec::new();
    let runs: [(&str, Objective2K, Direction); 4] = [
        ("minC", Objective2K::MeanClustering, Direction::Minimize),
        ("maxC", Objective2K::MeanClustering, Direction::Maximize),
        (
            "minS2",
            Objective2K::SecondOrderLikelihood,
            Direction::Minimize,
        ),
        (
            "maxS2",
            Objective2K::SecondOrderLikelihood,
            Direction::Maximize,
        ),
    ];
    for (name, objective, dir) in runs {
        let mut g = skitter.clone();
        let mut rng = StdRng::seed_from_u64(cfg.run_seed(hash_name(name)));
        let stats = explore_2k(&mut g, objective, dir, &explore_opts, &mut rng);
        eprintln!(
            "{name}: {} → {} ({} accepted / {} attempts)",
            stats.initial_value, stats.final_value, stats.accepted, stats.attempts
        );
        cols.push((name.to_string(), analyzer.analyze(&g)));
    }
    // 2K-random column
    let mut rng = StdRng::seed_from_u64(cfg.run_seed(999));
    cols.push((
        "2K-rand".into(),
        analyzer.analyze(&dk_random(&skitter, 2, &mut rng)),
    ));
    // original
    cols.push(("skitter".into(), analyzer.analyze(&skitter)));

    let s2_of = |rep: &Report| rep.scalar("s2").expect("s2 selected");
    let s2_max = cols
        .iter()
        .map(|(_, rep)| s2_of(rep))
        .fold(f64::NEG_INFINITY, f64::max);
    let ratios: Vec<Option<f64>> = cols
        .iter()
        .map(|(_, rep)| Some(s2_of(rep) / s2_max))
        .collect();
    let mut table = MetricTable::new();
    for (name, rep) in cols {
        table.push(name, rep);
    }
    table.push_row("S2/S2max", ratios);

    println!(
        "Table 7: 2K-space explorations for skitter-like (n = {}, m = {})",
        skitter.node_count(),
        skitter.edge_count()
    );
    println!("{}", table.render());
    dk_bench::emit_table(&cfg, "table7", &table);
}

/// Stable small hash so every exploration column gets its own seed lane.
fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(7u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

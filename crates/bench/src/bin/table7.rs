//! **Table 7** — 2K-space explorations for skitter: columns are
//! clustering-minimized, clustering-maximized, S2-minimized,
//! S2-maximized, 2K-random, and the original; plus the `S2/S2max` row.
//!
//! `S2max` is, as in the paper's normalization, the largest S2 observed
//! across all columns (attained by the Max-S2 exploration).
//!
//! ```text
//! cargo run -p dk-bench --release --bin table7 -- [--full]
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::table::MetricTable;
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_core::explore::{explore_2k, Direction, ExploreOptions, Objective2K};
use dk_metrics::report::{MetricReport, ReportOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = Config::from_args();
    let skitter = inputs::load(&cfg, Input::SkitterLike);
    let opts = ReportOptions::default();
    let explore_opts = ExploreOptions {
        max_attempts: if cfg.full { 3_000_000 } else { 600_000 },
        patience: Some(if cfg.full { 400_000 } else { 120_000 }),
    };

    // exploration columns are single runs (they are deterministic hill
    // climbs, not random ensembles — the paper reports one per direction)
    let mut cols: Vec<(String, MetricReport, f64)> = Vec::new();
    let runs: [(&str, Objective2K, Direction); 4] = [
        ("minC", Objective2K::MeanClustering, Direction::Minimize),
        ("maxC", Objective2K::MeanClustering, Direction::Maximize),
        (
            "minS2",
            Objective2K::SecondOrderLikelihood,
            Direction::Minimize,
        ),
        (
            "maxS2",
            Objective2K::SecondOrderLikelihood,
            Direction::Maximize,
        ),
    ];
    for (name, objective, dir) in runs {
        let mut g = skitter.clone();
        let mut rng = StdRng::seed_from_u64(cfg.run_seed(hash_name(name)));
        let stats = explore_2k(&mut g, objective, dir, &explore_opts, &mut rng);
        eprintln!(
            "{name}: {} → {} ({} accepted / {} attempts)",
            stats.initial_value, stats.final_value, stats.accepted, stats.attempts
        );
        let rep = MetricReport::compute_with(&g, &opts);
        let s2 = rep.likelihood_s2;
        cols.push((name.to_string(), rep, s2));
    }
    // 2K-random column
    let mut rng = StdRng::seed_from_u64(cfg.run_seed(999));
    let rep2k = MetricReport::compute_with(&dk_random(&skitter, 2, &mut rng), &opts);
    let s2_rand = rep2k.likelihood_s2;
    cols.push(("2K-rand".into(), rep2k, s2_rand));
    // original
    let rep_orig = MetricReport::compute_with(&skitter, &opts);
    let s2_orig = rep_orig.likelihood_s2;
    cols.push(("skitter".into(), rep_orig, s2_orig));

    let s2_max = cols
        .iter()
        .map(|&(_, _, s2)| s2)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut table = MetricTable::new();
    let ratios: Vec<Option<f64>> = cols.iter().map(|&(_, _, s2)| Some(s2 / s2_max)).collect();
    for (name, rep, _) in cols {
        table.push(name, rep);
    }
    table.push_row("S2/S2max", ratios);

    println!(
        "Table 7: 2K-space explorations for skitter-like (n = {}, m = {})",
        skitter.node_count(),
        skitter.edge_count()
    );
    println!("{}", table.render());
    let out = cfg.out_dir.join("table7.csv");
    std::fs::write(&out, table.to_csv()).expect("write table7.csv");
    println!("wrote {}", out.display());
}

/// Stable small hash so every exploration column gets its own seed lane.
fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(7u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

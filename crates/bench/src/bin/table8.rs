//! **Table 8** — scalar metrics for dK-random (d = 0..3) vs the HOT
//! graph (the paper's hard case: slow dK convergence).
//!
//! ```text
//! cargo run -p dk-bench --release --bin table8 -- [--seeds N]
//! ```

use dk_bench::ensemble::scalar_ensemble;
use dk_bench::inputs::{self, Input};
use dk_bench::variants::dk_random;
use dk_bench::Config;
use dk_metrics::{Analyzer, MetricTable};

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    let analyzer = Analyzer::new();
    let mut table = MetricTable::new();
    for d in 0..=3u8 {
        let summary = scalar_ensemble(&cfg, &analyzer, |rng| dk_random(&hot, d, rng));
        table.push_summary(format!("{d}K"), &summary);
    }
    table.push("origHOT", analyzer.analyze(&hot));

    println!(
        "Table 8: dK-random vs HOT-like (n = {}, m = {}, {} seeds)",
        hot.node_count(),
        hot.edge_count(),
        cfg.seeds
    );
    println!("{}", table.render());
    dk_bench::emit_table(&cfg, "table8", &table);
}

//! **Table 5** — numbers of possible initial dK-randomizing rewirings
//! for the HOT graph, with and without the obvious-isomorphism discount.
//!
//! ```text
//! cargo run -p dk-bench --release --bin table5
//! ```

use dk_bench::inputs::{self, Input};
use dk_bench::Config;
use dk_core::census::count_initial_rewirings;

fn main() {
    let cfg = Config::from_args();
    let hot = inputs::load(&cfg, Input::HotLike);
    println!(
        "Table 5: possible initial dK-randomizing rewirings (HOT-like, n = {}, m = {})",
        hot.node_count(),
        hot.edge_count()
    );
    println!(
        "{:>3} {:>18} {:>26}",
        "d", "possible", "ignoring obvious isos"
    );
    let mut csv = String::from("d,possible,ignoring_obvious_isomorphisms\n");
    for d in 0..=3u8 {
        let c = count_initial_rewirings(&hot, d);
        let ex = c
            .excluding_obvious_isomorphic
            .map_or("-".to_string(), |v| v.to_string());
        println!("{d:>3} {:>18} {ex:>26}", c.total);
        csv.push_str(&format!(
            "{d},{},{}\n",
            c.total,
            c.excluding_obvious_isomorphic
                .map_or(String::new(), |v| v.to_string())
        ));
    }
    let out = cfg.out_dir.join("table5.csv");
    std::fs::write(&out, csv).expect("write table5.csv");
    println!("wrote {}", out.display());
}

//! Evaluation inputs: the skitter-like and HOT-like graphs, disk-cached.
//!
//! Generating the full-scale skitter substitute involves a multi-million
//! step clustering anneal; caching the generated edge list under
//! `results/cache/` makes every experiment binary start from the *same*
//! input instantly (and makes the inputs inspectable with external
//! tools).

use crate::Config;
use dk_graph::{io, Graph};
use dk_topologies::{as_like, hot_like};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Which evaluation input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Input {
    /// Skitter-like AS topology (paper's measured extreme).
    SkitterLike,
    /// HOT-like router topology (paper's designed extreme).
    HotLike,
}

impl Input {
    fn tag(self) -> &'static str {
        match self {
            Input::SkitterLike => "skitter_like",
            Input::HotLike => "hot_like",
        }
    }
}

fn cache_path(cfg: &Config, input: Input) -> PathBuf {
    let scale = if cfg.full { "full" } else { "ci" };
    cfg.out_dir.join("cache").join(format!(
        "{}_{}_{:x}.edges",
        input.tag(),
        scale,
        cfg.master_seed
    ))
}

/// Loads (or generates and caches) an evaluation input.
///
/// The input's generation seed is derived from the master seed but *not*
/// from the per-run seeds, so all ensemble members rewire the same input
/// — matching the paper's protocol of 100 random graphs per one original.
pub fn load(cfg: &Config, input: Input) -> Graph {
    let path = cache_path(cfg, input);
    if let Ok(g) = io::load_edge_list(&path) {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(cfg.master_seed ^ 0xd15c_0b01);
    let g = match (input, cfg.full) {
        (Input::SkitterLike, true) => {
            as_like::skitter_like(&as_like::AsLikeParams::default(), &mut rng)
        }
        (Input::SkitterLike, false) => {
            as_like::skitter_like(&as_like::AsLikeParams::small(), &mut rng)
        }
        // HOT is small by nature; "full" and CI use the published scale
        (Input::HotLike, true) => hot_like::hot_like(&hot_like::HotLikeParams::default(), &mut rng),
        (Input::HotLike, false) => {
            hot_like::hot_like(&hot_like::HotLikeParams::default(), &mut rng)
        }
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = io::save_edge_list(&g, &path) {
        eprintln!("warning: could not cache input at {}: {e}", path.display());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(name: &str) -> Config {
        Config {
            out_dir: std::env::temp_dir().join("dk_bench_inputs_test").join(name),
            ..Config::default()
        }
    }

    #[test]
    fn hot_like_loads_and_caches() {
        let cfg = test_cfg("hot");
        let a = load(&cfg, Input::HotLike);
        assert_eq!(a.node_count(), 939);
        // second load hits the cache and is identical
        let b = load(&cfg, Input::HotLike);
        assert_eq!(a, b);
        assert!(cache_path(&cfg, Input::HotLike).exists());
        std::fs::remove_dir_all(&cfg.out_dir).ok();
    }

    #[test]
    fn cache_paths_distinguish_scale_and_seed() {
        let ci = test_cfg("x");
        let full = Config {
            full: true,
            ..ci.clone()
        };
        let other_seed = Config {
            master_seed: 42,
            ..ci.clone()
        };
        assert_ne!(
            cache_path(&ci, Input::SkitterLike),
            cache_path(&full, Input::SkitterLike)
        );
        assert_ne!(
            cache_path(&ci, Input::SkitterLike),
            cache_path(&other_seed, Input::SkitterLike)
        );
        assert_ne!(
            cache_path(&ci, Input::SkitterLike),
            cache_path(&ci, Input::HotLike)
        );
    }
}

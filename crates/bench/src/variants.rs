//! Graph-variant constructors shared by the table/figure binaries.
//!
//! Each experiment compares an *original* (skitter-like or HOT-like)
//! against dK-random counterparts produced by the §4.1 algorithm
//! families. Construction goes through the capability-checked
//! [`Generator`] facade — the only `(d, method)` dispatch in the
//! workspace lives in `dk-core`, and this module merely configures it
//! with experiment-appropriate defaults.

use dk_core::dist::{AnyDist, Dist2K, Dist3K};
use dk_core::generate::target::TargetOptions;
use dk_core::generate::{Generator, Method};
use dk_graph::Graph;
use rand::Rng;

/// The five 2K construction algorithms of the paper's §5.1 comparison
/// (Table 3, Figure 5), in the paper's column order.
pub const ALGOS_2K: [Method; 5] = [
    Method::Stochastic,
    Method::Pseudograph,
    Method::Matching,
    Method::Rewiring,
    Method::Targeting,
];

/// Paper-style column label for a 2K-comparison method.
pub fn label_2k(method: Method) -> &'static str {
    match method {
        Method::Stochastic => "stochastic",
        Method::Pseudograph => "pseudogr",
        Method::Matching => "matching",
        Method::Rewiring => "2K-rand",
        Method::Targeting => "2K-targ",
    }
}

/// Default targeting options for experiment runs.
pub fn targeting_opts() -> TargetOptions {
    TargetOptions {
        max_attempts: 3_000_000,
        patience: Some(300_000),
        ..Default::default()
    }
}

/// Configures the facade for `original`'s order-`d` distribution with
/// the experiment defaults (rewiring reference attached, long targeting
/// budget).
fn generator_for(original: &Graph, method: Method) -> Generator {
    let mut gen = Generator::new(method).target_options(targeting_opts());
    if method.needs_reference() {
        gen = gen.reference(original);
    }
    gen
}

/// Builds a 2K-graph of `original`'s JDD with the chosen algorithm.
pub fn build_2k<R: Rng + ?Sized>(original: &Graph, method: Method, rng: &mut R) -> Graph {
    let dist = AnyDist::D2(Dist2K::from_graph(original));
    generator_for(original, method)
        .build_with_rng(&dist, rng)
        .expect("JDD extracted from a graph is realizable")
        .graph
}

/// Builds a 3K-graph of `original` via randomizing (`true`) or the
/// targeting chain (`false`) — Table 4 / Figure 5(c).
pub fn build_3k<R: Rng + ?Sized>(original: &Graph, randomizing: bool, rng: &mut R) -> Graph {
    if randomizing {
        // distribution-free: rewiring preserves the reference's own 3K,
        // so skip the O(Σ deg²) census that build() would extract
        return generator_for(original, Method::Rewiring)
            .build_randomized_with_rng(3, rng)
            .expect("rewiring with a reference cannot fail")
            .graph;
    }
    let dist = AnyDist::D3(Dist3K::from_graph(original));
    generator_for(original, Method::Targeting)
        .build_with_rng(&dist, rng)
        .expect("3K extracted from a graph is realizable")
        .graph
}

/// dK-random counterpart of `original` via dK-randomizing rewiring —
/// "the simplest one" the paper picks for its §5.2 topology comparisons.
///
/// Runs once per ensemble replica, so it uses the facade's
/// distribution-free rewiring entry instead of extracting (and
/// discarding) a full order-`d` census each call.
pub fn dk_random<R: Rng + ?Sized>(original: &Graph, d: u8, rng: &mut R) -> Graph {
    generator_for(original, Method::Rewiring)
        .build_randomized_with_rng(d, rng)
        .expect("rewiring with a reference cannot fail")
        .graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_2k_algorithms_produce_graphs() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        for method in ALGOS_2K {
            let mut rng = StdRng::seed_from_u64(1);
            let g = build_2k(&original, method, &mut rng);
            assert!(g.node_count() > 0, "{method:?}");
            // exact-JDD families must match exactly
            if matches!(method, Method::Matching | Method::Rewiring) {
                assert_eq!(Dist2K::from_graph(&g), target, "{method:?}");
            }
        }
    }

    #[test]
    fn three_k_variants() {
        let original = builders::karate_club();
        let mut rng = StdRng::seed_from_u64(2);
        let a = build_3k(&original, true, &mut rng);
        assert_eq!(Dist3K::from_graph(&a), Dist3K::from_graph(&original));
        let b = build_3k(&original, false, &mut rng);
        assert_eq!(b.edge_count(), original.edge_count());
    }

    #[test]
    fn dk_random_changes_graph_but_keeps_level() {
        let original = builders::karate_club();
        let mut rng = StdRng::seed_from_u64(3);
        let g1 = dk_random(&original, 1, &mut rng);
        assert_eq!(g1.degrees(), original.degrees());
        assert_ne!(g1, original);
    }

    #[test]
    fn labels_cover_paper_columns() {
        let labels: Vec<&str> = ALGOS_2K.iter().map(|&m| label_2k(m)).collect();
        assert_eq!(
            labels,
            ["stochastic", "pseudogr", "matching", "2K-rand", "2K-targ"]
        );
    }
}

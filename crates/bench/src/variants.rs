//! Graph-variant constructors shared by the table/figure binaries.
//!
//! Each experiment compares an *original* (skitter-like or HOT-like)
//! against dK-random counterparts produced by the §4.1 algorithm
//! families; this module wires the `dk-core` generators into one-call
//! constructors with the experiment-appropriate defaults.

use dk_core::dist::{Dist2K, Dist3K};
use dk_core::generate::rewire::{randomize, RewireOptions};
use dk_core::generate::target::{
    generate_2k_random, generate_3k_random, Bootstrap, TargetOptions,
};
use dk_core::generate::{matching, pseudograph, stochastic};
use dk_graph::Graph;
use rand::Rng;

/// The five 2K construction algorithms of the paper's §5.1 comparison
/// (Table 3, Figure 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo2K {
    /// §4.1.1 stochastic (hidden-variable block model).
    Stochastic,
    /// §4.1.2 pseudograph with cleanup.
    Pseudograph,
    /// §4.1.3 matching.
    Matching,
    /// §4.1.4 2K-randomizing rewiring of the original.
    Randomizing,
    /// §4.1.4 2K-targeting 1K-preserving rewiring from a 1K bootstrap.
    Targeting,
}

impl Algo2K {
    /// All five, in the paper's column order.
    pub const ALL: [Algo2K; 5] = [
        Algo2K::Stochastic,
        Algo2K::Pseudograph,
        Algo2K::Matching,
        Algo2K::Randomizing,
        Algo2K::Targeting,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Algo2K::Stochastic => "stochastic",
            Algo2K::Pseudograph => "pseudogr",
            Algo2K::Matching => "matching",
            Algo2K::Randomizing => "2K-rand",
            Algo2K::Targeting => "2K-targ",
        }
    }
}

/// Default targeting options for experiment runs.
pub fn targeting_opts() -> TargetOptions {
    TargetOptions {
        max_attempts: 3_000_000,
        patience: Some(300_000),
        ..Default::default()
    }
}

/// Builds a 2K-graph of `original`'s JDD with the chosen algorithm.
pub fn build_2k<R: Rng + ?Sized>(original: &Graph, algo: Algo2K, rng: &mut R) -> Graph {
    let jdd = Dist2K::from_graph(original);
    match algo {
        Algo2K::Stochastic => stochastic::generate_2k(&jdd, rng)
            .expect("JDD extracted from a graph is consistent")
            .graph,
        Algo2K::Pseudograph => pseudograph::generate_2k(&jdd, rng)
            .expect("JDD extracted from a graph is consistent")
            .graph,
        Algo2K::Matching => matching::generate_2k(&jdd, rng)
            .expect("JDD extracted from a graph is realizable")
            .graph,
        Algo2K::Randomizing => {
            let mut g = original.clone();
            randomize(&mut g, 2, &RewireOptions::default(), rng);
            g
        }
        Algo2K::Targeting => {
            generate_2k_random(&jdd, Bootstrap::Matching, &targeting_opts(), rng)
                .expect("JDD extracted from a graph is realizable")
                .0
        }
    }
}

/// Builds a 3K-graph of `original` via randomizing (`true`) or the
/// targeting chain (`false`) — Table 4 / Figure 5(c).
pub fn build_3k<R: Rng + ?Sized>(original: &Graph, randomizing: bool, rng: &mut R) -> Graph {
    if randomizing {
        let mut g = original.clone();
        randomize(&mut g, 3, &RewireOptions::default(), rng);
        g
    } else {
        let d3 = Dist3K::from_graph(original);
        generate_3k_random(&d3, Bootstrap::Matching, &targeting_opts(), rng)
            .expect("3K extracted from a graph is realizable")
            .0
    }
}

/// dK-random counterpart of `original` via dK-randomizing rewiring —
/// "the simplest one" the paper picks for its §5.2 topology comparisons.
pub fn dk_random<R: Rng + ?Sized>(original: &Graph, d: u8, rng: &mut R) -> Graph {
    let mut g = original.clone();
    randomize(&mut g, d, &RewireOptions::default(), rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_2k_algorithms_produce_graphs() {
        let original = builders::karate_club();
        let target = Dist2K::from_graph(&original);
        for algo in Algo2K::ALL {
            let mut rng = StdRng::seed_from_u64(1);
            let g = build_2k(&original, algo, &mut rng);
            assert!(g.node_count() > 0, "{algo:?}");
            // exact-JDD families must match exactly
            if matches!(algo, Algo2K::Matching | Algo2K::Randomizing) {
                assert_eq!(Dist2K::from_graph(&g), target, "{algo:?}");
            }
        }
    }

    #[test]
    fn three_k_variants() {
        let original = builders::karate_club();
        let mut rng = StdRng::seed_from_u64(2);
        let a = build_3k(&original, true, &mut rng);
        assert_eq!(Dist3K::from_graph(&a), Dist3K::from_graph(&original));
        let b = build_3k(&original, false, &mut rng);
        assert_eq!(b.edge_count(), original.edge_count());
    }

    #[test]
    fn dk_random_changes_graph_but_keeps_level() {
        let original = builders::karate_club();
        let mut rng = StdRng::seed_from_u64(3);
        let g1 = dk_random(&original, 1, &mut rng);
        assert_eq!(g1.degrees(), original.degrees());
        assert_ne!(g1, original);
    }
}

//! # dk-bench — reproduction harness for every table and figure
//!
//! One binary per experiment (`cargo run -p dk-bench --release --bin
//! table6`), each printing the paper-format rows to stdout and writing
//! machine-readable series under `results/`. Shared infrastructure lives
//! here:
//!
//! * [`Config`] — common CLI flags (`--full`, `--seeds N`, `--out DIR`);
//! * [`inputs`] — the two evaluation inputs (skitter-like, HOT-like) at
//!   CI or paper scale, disk-cached per (kind, scale, seed) so repeated
//!   experiment runs reuse identical inputs;
//! * [`ensemble`] — seed fan-out through `dk_metrics::Analyzer`
//!   (per-metric mean/std/min/max, per-degree / per-distance series
//!   means);
//! * [`csv`] — series CSV output (tables use the shared
//!   `dk_metrics::MetricTable` formatter).
//!
//! Paper-scale notes: the paper averages over 100 graphs; the default
//! here is 5 seeds at CI scale so every experiment finishes in minutes —
//! `--full --seeds 100` reproduces the paper's protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod ensemble;
pub mod inputs;
pub mod variants;

use std::path::PathBuf;

/// Common experiment configuration, parsed from CLI arguments.
#[derive(Clone, Debug)]
pub struct Config {
    /// Paper-scale inputs (skitter-like n = 9204) instead of CI scale.
    pub full: bool,
    /// Ensemble size (paper: 100).
    pub seeds: u64,
    /// Output directory for CSV/SVG artifacts.
    pub out_dir: PathBuf,
    /// Master seed; per-run seeds derive from it.
    pub master_seed: u64,
    /// Ensemble worker threads (`0` = all available cores). Any value
    /// produces identical results — see [`ensemble::run`].
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            full: false,
            seeds: 5,
            out_dir: PathBuf::from("results"),
            master_seed: 20060911, // SIGCOMM'06 started Sept 11, 2006
            threads: 0,
        }
    }
}

impl Config {
    /// Parses flags: `--full`, `--seeds N`, `--out DIR`, `--seed N`,
    /// `--threads N`.
    ///
    /// Unknown flags abort with a usage message (misspelled flags
    /// silently ignored would corrupt experiments).
    pub fn from_args() -> Config {
        let mut cfg = Config::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cfg.full = true,
                "--seeds" => {
                    i += 1;
                    cfg.seeds = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seeds needs a number"));
                }
                "--seed" => {
                    i += 1;
                    cfg.master_seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--threads" => {
                    i += 1;
                    cfg.threads = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs a number"));
                }
                "--out" => {
                    i += 1;
                    cfg.out_dir = args
                        .get(i)
                        .map(PathBuf::from)
                        .unwrap_or_else(|| usage("--out needs a path"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full (paper scale)  --seeds N (ensemble size, default 5)\n       --seed N (master seed)   --out DIR (default results/)\n       --threads N (ensemble workers, default 0 = all cores)"
                    );
                    std::process::exit(0);
                }
                other => usage(&format!("unknown flag {other:?}")),
            }
            i += 1;
        }
        std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
        cfg
    }

    /// Derives the i-th run seed from the master seed. Delegates to
    /// [`dk_core::ensemble::derive_seed`] so hand-rolled loops and the
    /// parallel runner agree replica by replica.
    pub fn run_seed(&self, i: u64) -> u64 {
        dk_core::ensemble::derive_seed(self.master_seed, i)
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nrun with --help for flags");
    std::process::exit(2)
}

/// Writes a text artifact, creating parent dirs — so every emitter is
/// self-sufficient even when the caller built a [`Config`] directly
/// (only [`Config::from_args`] pre-creates the output dir).
fn write_text(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, text)
}

/// Writes a machine-readable JSON artifact next to the CSVs (creating
/// parent dirs) — every experiment binary persists its
/// `Report`/`EnsembleSummary` data this way so runs are diffable without
/// re-parsing the human-facing tables.
pub fn write_json(path: &std::path::Path, json: &str) -> std::io::Result<()> {
    write_text(path, json)
}

/// Appends one JSON record to a JSON-lines log (creating parent dirs).
///
/// `results/BENCH_metrics.json` is such a log: one self-contained bench
/// record per line (each tagged with a `"bench"` key), so the perf
/// trajectory of the hot paths **accumulates** run over run instead of
/// each binary overwriting the last one's point. Tolerates a legacy
/// record written without a trailing newline.
pub fn append_json_line(path: &std::path::Path, record: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let needs_newline = match std::fs::read(path) {
        Ok(existing) => !existing.is_empty() && !existing.ends_with(b"\n"),
        Err(_) => false,
    };
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if needs_newline {
        f.write_all(b"\n")?;
    }
    f.write_all(record.as_bytes())?;
    f.write_all(b"\n")
}

/// JSON form of an integer-keyed series: `[[x, y], ...]` — used by the
/// figure binaries for their original-graph reference series.
pub fn series_json(s: &[(usize, f64)]) -> String {
    use dk_metrics::json;
    json::array(
        s.iter()
            .map(|&(x, y)| json::array([x.to_string(), json::number(y)])),
    )
}

/// Persists one table experiment: `<name>.csv` (means + `_std` rows) and
/// `<name>.json` (full column reports) under `cfg.out_dir`, announcing
/// both paths — the one artifact convention every table binary shares.
pub fn emit_table(cfg: &Config, name: &str, table: &dk_metrics::MetricTable) {
    let out = cfg.out_dir.join(format!("{name}.csv"));
    write_text(&out, &table.to_csv()).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
    let out = cfg.out_dir.join(format!("{name}.json"));
    write_json(&out, &table.to_json()).unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}

/// Persists one figure panel: the plotted means as `<name>.csv` and the
/// per-variant JSON entries (ensemble summaries / reference series) as
/// `<name>.json` — the figure-binary counterpart of [`emit_table`].
pub fn emit_series(
    cfg: &Config,
    name: &str,
    x_label: &str,
    set: &csv::SeriesSet,
    entries: Vec<(String, String)>,
) {
    let out = cfg.out_dir.join(format!("{name}.csv"));
    set.write(&out, x_label)
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
    let out = cfg.out_dir.join(format!("{name}.json"));
    write_json(&out, &dk_metrics::json::object(entries))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seeds_are_distinct() {
        let cfg = Config::default();
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| cfg.run_seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn append_json_line_accumulates_and_repairs_missing_newline() {
        let dir = std::env::temp_dir().join("dk_bench_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.json");
        let _ = std::fs::remove_file(&path);
        append_json_line(&path, "{\"bench\":\"a\"}").unwrap();
        append_json_line(&path, "{\"bench\":\"b\"}").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"bench\":\"a\"}\n{\"bench\":\"b\"}\n"
        );
        // a legacy record without a trailing newline stays on its own line
        std::fs::write(&path, "{\"legacy\":1}").unwrap();
        append_json_line(&path, "{\"bench\":\"c\"}").unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"legacy\":1}\n{\"bench\":\"c\"}\n"
        );
    }

    #[test]
    fn run_seed_depends_on_master() {
        let a = Config::default();
        let b = Config {
            master_seed: 1,
            ..Config::default()
        };
        assert_ne!(a.run_seed(0), b.run_seed(0));
    }
}

//! Criterion: metric-suite costs (the per-ensemble-member price of every
//! reproduction table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use dk_topologies::{as_like, er};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn inputs() -> Vec<(&'static str, dk_graph::Graph)> {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    let as_small = as_like::skitter_like(
        &as_like::AsLikeParams {
            nodes: 2000,
            anneal_attempts: 0,
            ..as_like::AsLikeParams::small()
        },
        &mut rng,
    );
    let er = er::gnm(2000, 6000, &mut rng);
    vec![("hot939", hot), ("as2000", as_small), ("er2000", er)]
}

fn bench_metrics(c: &mut Criterion) {
    let graphs = inputs();
    let mut group = c.benchmark_group("metrics");
    for (name, g) in &graphs {
        group.bench_with_input(
            BenchmarkId::new("distance_distribution", name),
            g,
            |b, g| b.iter(|| dk_metrics::distance::DistanceDistribution::from_graph(g)),
        );
        group.bench_with_input(BenchmarkId::new("betweenness", name), g, |b, g| {
            b.iter(|| dk_metrics::betweenness::node_betweenness(g))
        });
        group.bench_with_input(BenchmarkId::new("clustering", name), g, |b, g| {
            b.iter(|| dk_metrics::clustering::mean_clustering(g))
        });
        group.bench_with_input(BenchmarkId::new("assortativity", name), g, |b, g| {
            b.iter(|| dk_metrics::jdd::assortativity(g))
        });
        group.bench_with_input(BenchmarkId::new("spectral_extremes", name), g, |b, g| {
            let (gcc, _) = dk_graph::giant_component(g);
            b.iter(|| dk_metrics::spectral::spectral_extremes(&gcc))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_metrics
}
criterion_main!(benches);

//! Criterion: streamed vs in-memory sharded execution of the fused
//! distance+betweenness pass (and the sampled pivot pass) — the streaming
//! layer must cost ~nothing over collect-then-merge at bench scale while
//! bounding memory at 10⁶-node scale (measured by `perf_shard`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_graph::CsrGraph;
use dk_metrics::{betweenness, sampled, stream};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_shard(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = barabasi_albert(
        &BaParams {
            nodes: 4000,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    );
    let csr = CsrGraph::from_graph(&g);
    let name = format!("ba{}", g.node_count());
    let mut group = c.benchmark_group("shard_exec");

    for shards in [stream::DEFAULT_SHARDS, 256] {
        group.bench_with_input(
            BenchmarkId::new(format!("fused_in_memory_s{shards}"), &name),
            &csr,
            |b, csr| b.iter(|| betweenness::betweenness_and_distances_sharded(csr, shards, 1)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("fused_streamed_s{shards}"), &name),
            &csr,
            |b, csr| b.iter(|| betweenness::betweenness_and_distances_streamed(csr, shards, 1)),
        );
    }
    group.bench_with_input(
        BenchmarkId::new("sampled_streamed_k64", &name),
        &csr,
        |b, csr| b.iter(|| sampled::sampled_traversal_streamed(csr, 64, stream::DEFAULT_SHARDS, 1)),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shard
}
criterion_main!(benches);

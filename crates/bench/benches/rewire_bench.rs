//! Criterion: dK-randomizing rewiring throughput per d.
//!
//! Measures attempted-swap throughput at fixed budget on the HOT-scale
//! graph — the d = 3 line shows the price of exact wedge/triangle
//! preservation (tentative apply + revert per candidate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dk_core::generate::rewire::{randomize, RewireOptions, SwapBudget};
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rewiring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    const ATTEMPTS: u64 = 5_000;
    let opts = RewireOptions {
        budget: SwapBudget::Attempts(ATTEMPTS),
    };
    let mut group = c.benchmark_group("randomizing_rewiring");
    group.throughput(Throughput::Elements(ATTEMPTS));
    for d in 0..=3u8 {
        group.bench_with_input(BenchmarkId::new("hot939", format!("d{d}")), &d, |b, &d| {
            b.iter_batched(
                || (hot.clone(), StdRng::seed_from_u64(7)),
                |(mut g, mut rng)| randomize(&mut g, d, &opts, &mut rng),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rewiring
}
criterion_main!(benches);

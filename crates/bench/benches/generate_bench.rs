//! Criterion: 2K construction cost per algorithm family
//! (stochastic vs pseudograph vs matching vs targeting chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_core::dist::Dist2K;
use dk_core::generate::target::{generate_2k_random, Bootstrap, TargetOptions};
use dk_core::generate::{matching, pseudograph, stochastic};
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    let jdd = Dist2K::from_graph(&hot);
    let mut group = c.benchmark_group("generate_2k");

    group.bench_with_input(BenchmarkId::new("stochastic", "hot939"), &jdd, |b, jdd| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| stochastic::generate_2k(jdd, &mut rng).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_with_input(BenchmarkId::new("pseudograph", "hot939"), &jdd, |b, jdd| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| pseudograph::generate_2k(jdd, &mut rng).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_with_input(BenchmarkId::new("matching", "hot939"), &jdd, |b, jdd| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| matching::generate_2k(jdd, &mut rng).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    let topts = TargetOptions {
        max_attempts: 300_000,
        patience: Some(60_000),
        ..Default::default()
    };
    group.bench_with_input(BenchmarkId::new("targeting", "hot939"), &jdd, |b, jdd| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| generate_2k_random(jdd, Bootstrap::Matching, &topts, &mut rng).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation
}
criterion_main!(benches);

//! Criterion: the CSR snapshot vs the legacy `Vec<Vec<_>>` adjacency for
//! the fused distance+betweenness all-source pass, plus the sampled
//! (Brandes–Pich, K = 64) estimator vs the exact pass.
//!
//! The ISSUE-3 acceptance criteria live in the `perf_csr` binary at full
//! (10⁵-node) scale; this bench keeps the same comparisons continuously
//! measurable at `cargo bench` scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_graph::CsrGraph;
use dk_metrics::{betweenness, sampled};
use dk_topologies::ba::{barabasi_albert, BaParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_csr(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = barabasi_albert(
        &BaParams {
            nodes: 4000,
            edges_per_node: 2,
            seed_nodes: 3,
        },
        &mut rng,
    );
    let csr = CsrGraph::from_graph(&g);
    let name = format!("ba{}", g.node_count());
    let mut group = c.benchmark_group("csr_traversal");

    group.bench_with_input(BenchmarkId::new("snapshot_build", &name), &g, |b, g| {
        b.iter(|| CsrGraph::from_graph(g))
    });
    group.bench_with_input(BenchmarkId::new("fused_legacy_adj", &name), &g, |b, g| {
        b.iter(|| betweenness::betweenness_and_distances_adjacency(g, 1))
    });
    group.bench_with_input(BenchmarkId::new("fused_csr", &name), &csr, |b, csr| {
        b.iter(|| betweenness::betweenness_and_distances_csr(csr, 1))
    });
    group.bench_with_input(BenchmarkId::new("sampled_k64", &name), &csr, |b, csr| {
        b.iter(|| sampled::sampled_traversal_csr(csr, 64, 1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_csr
}
criterion_main!(benches);

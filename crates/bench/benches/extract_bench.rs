//! Criterion: dK-distribution extraction cost vs d and graph size.
//!
//! The paper's complexity story is that extraction/generation cost grows
//! sharply with d (§6); this bench quantifies it on the HOT-scale input
//! and on a mid-size AS-like input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_core::dist::{Dist0K, Dist1K, Dist2K, Dist3K};
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use dk_topologies::{as_like, ba};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn inputs() -> Vec<(&'static str, dk_graph::Graph)> {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    let as_small = as_like::skitter_like(
        &as_like::AsLikeParams {
            nodes: 2000,
            anneal_attempts: 100_000,
            ..as_like::AsLikeParams::small()
        },
        &mut rng,
    );
    let ba = ba::barabasi_albert(
        &ba::BaParams {
            nodes: 2000,
            edges_per_node: 3,
            seed_nodes: 4,
        },
        &mut rng,
    );
    vec![("hot939", hot), ("as2000", as_small), ("ba2000", ba)]
}

fn bench_extraction(c: &mut Criterion) {
    let graphs = inputs();
    let mut group = c.benchmark_group("extract");
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("0K", name), g, |b, g| {
            b.iter(|| Dist0K::from_graph(g))
        });
        group.bench_with_input(BenchmarkId::new("1K", name), g, |b, g| {
            b.iter(|| Dist1K::from_graph(g))
        });
        group.bench_with_input(BenchmarkId::new("2K", name), g, |b, g| {
            b.iter(|| Dist2K::from_graph(g))
        });
        group.bench_with_input(BenchmarkId::new("3K", name), g, |b, g| {
            b.iter(|| Dist3K::from_graph(g))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_extraction
}
criterion_main!(benches);

//! Criterion: serial vs parallel ensemble generation.
//!
//! The ensemble fan-out is the outermost loop of every reproduction
//! experiment ("averages over 100 graphs", §5), so its scaling is the
//! harness's scaling. This bench pits the deterministic parallel runner
//! against the serial loop on two workloads with opposite cost profiles:
//! cheap uniform replicas (2K pseudograph construction) and expensive
//! uneven replicas (2K randomizing rewiring).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dk_core::dist::{AnyDist, Dist2K};
use dk_core::generate::{Generator, Method};
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPLICAS: u64 = 16;

fn bench_ensemble(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    let jdd = AnyDist::D2(Dist2K::from_graph(&hot));

    let mut group = c.benchmark_group("ensemble_2k_pseudograph");
    group.throughput(Throughput::Elements(REPLICAS));
    let gen = Generator::new(Method::Pseudograph).seed(7);
    group.bench_with_input(BenchmarkId::new("serial", REPLICAS), &jdd, |b, jdd| {
        b.iter(|| gen.sample_ensemble(jdd, REPLICAS, 1))
    });
    group.bench_with_input(BenchmarkId::new("parallel", REPLICAS), &jdd, |b, jdd| {
        b.iter(|| gen.sample_ensemble(jdd, REPLICAS, 0))
    });
    group.finish();

    let mut group = c.benchmark_group("ensemble_2k_rewiring");
    group.throughput(Throughput::Elements(REPLICAS));
    let gen = Generator::new(Method::Rewiring).reference(&hot).seed(7);
    group.bench_with_input(BenchmarkId::new("serial", REPLICAS), &jdd, |b, jdd| {
        b.iter(|| gen.sample_ensemble(jdd, REPLICAS, 1))
    });
    group.bench_with_input(BenchmarkId::new("parallel", REPLICAS), &jdd, |b, jdd| {
        b.iter(|| gen.sample_ensemble(jdd, REPLICAS, 0))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ensemble
}
criterion_main!(benches);

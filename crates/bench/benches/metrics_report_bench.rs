//! Criterion: the analyzer's shared-computation cache vs the old
//! per-metric recomputation.
//!
//! The ISSUE-2 acceptance criterion: computing distances and betweenness
//! *together* (one fused all-source traversal in the cache) must cost
//! measurably less than computing them *separately* (two traversals —
//! what the pre-facade battery did).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_metrics::Analyzer;
use dk_topologies::hot_like::{hot_like, HotLikeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_report(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let hot = hot_like(&HotLikeParams::default(), &mut rng);
    let er = dk_topologies::er::gnm(2000, 6000, &mut rng);
    let mut group = c.benchmark_group("metrics_report");

    let fused = Analyzer::new()
        .metric_names("d_avg,d_std,b_max,b_k")
        .expect("registered");
    let d_only = Analyzer::new()
        .metric_names("d_avg,d_std")
        .expect("registered");
    let b_only = Analyzer::new()
        .metric_names("b_max,b_k")
        .expect("registered");
    for (name, g) in [("hot939", &hot), ("er2000", &er)] {
        group.bench_with_input(BenchmarkId::new("shared_cache", name), g, |b, g| {
            b.iter(|| fused.analyze(g))
        });
        group.bench_with_input(BenchmarkId::new("separate_passes", name), g, |b, g| {
            b.iter(|| (d_only.analyze(g), b_only.analyze(g)))
        });
    }

    // the whole default battery through the facade, for the record
    let battery = Analyzer::new();
    group.bench_with_input(
        BenchmarkId::new("default_battery", "hot939"),
        &hot,
        |b, g| b.iter(|| battery.analyze(g)),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_report
}
criterion_main!(benches);

//! Likelihood `S`, second-order likelihood `S2`, and wedge/triangle
//! censuses.
//!
//! * `S = Σ_{(i,j)∈E} k_i·k_j` (paper §2, ref \[19\]) — a scalar summary of
//!   the 2K-distribution, linearly related to assortativity. Used by
//!   1K-space exploration (§4.3).
//! * `S2 ~ Σ k_1·k_3 · P∧(k_1, k_2, k_3)` — the paper's §4.3 scalar summary
//!   of the wedge component of the 3K-distribution: the sum over all
//!   wedges (paths of length 2) of the product of the *endpoint* degrees.
//!   Used by 2K-space exploration.
//!
//! A **wedge** here is an *induced* path of length 2: the endpoints are at
//! distance exactly 2 ("S2 measures the properly normalized correlation of
//! degrees of nodes located at distance 2", §4.3) — a triangle contains no
//! wedge. The whole-graph computation is still near-O(m): all neighbor
//! pairs per center via `((Σ k_u)² − Σ k_u²)/2`, minus the closed
//! (triangle) pairs found by sorted-adjacency merges.

use dk_graph::Graph;

/// Likelihood `S = Σ_{(i,j)∈E} k_i·k_j`.
pub fn likelihood_s(g: &Graph) -> f64 {
    g.likelihood_s()
}

/// Second-order likelihood: `S2 = Σ_{induced wedges (u−v−w)} k_u·k_w`
/// (each unordered wedge counted once; endpoints at distance exactly 2).
pub fn likelihood_s2(g: &Graph) -> f64 {
    // all neighbor pairs (open + closed) per center
    let mut total = 0.0f64;
    for v in g.nodes() {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &u in g.neighbors(v) {
            let k = g.degree(u) as f64;
            sum += k;
            sum_sq += k * k;
        }
        total += (sum * sum - sum_sq) / 2.0;
    }
    // subtract closed pairs: for every edge (u,v) and common neighbor w,
    // the pair {u,v} is a triangle-closed neighbor pair of center w
    for &(u, v) in g.edges() {
        let t = g.common_neighbors(u, v) as f64;
        total -= t * (g.degree(u) as f64) * (g.degree(v) as f64);
    }
    total
}

/// Number of paths of 2 edges (open **and** closed), `Σ_v C(k_v, 2)` —
/// the denominator of global transitivity.
pub fn wedge_count(g: &Graph) -> u64 {
    g.nodes()
        .map(|v| {
            let k = g.degree(v) as u64;
            k * k.saturating_sub(1) / 2
        })
        .sum()
}

/// Number of *induced* wedges (endpoints at distance exactly 2):
/// `Σ_v C(k_v, 2) − 3·#triangles`. This is the paper's `P∧` total.
pub fn induced_wedge_count(g: &Graph) -> u64 {
    wedge_count(g) - 3 * crate::clustering::triangle_count(g) as u64
}

/// Upper bound on `S` over all simple graphs with the same degree
/// sequence, via the rearrangement inequality: sort the edge-endpoint
/// degree multiset and pair largest-with-largest.
///
/// This is the cheap analytic bound used to sanity-check the
/// rewiring-based `S_max` estimates (the true max over *simple connected*
/// graphs is generally lower).
pub fn likelihood_s_upper_bound(g: &Graph) -> f64 {
    // Each node of degree k contributes k "stubs" of weight k. Pairing the
    // sorted stub weights greedily maximizes Σ products.
    let mut stubs: Vec<f64> = Vec::with_capacity(2 * g.edge_count());
    for v in g.nodes() {
        let k = g.degree(v) as f64;
        for _ in 0..g.degree(v) {
            stubs.push(k);
        }
    }
    stubs.sort_by(|a, b| b.partial_cmp(a).expect("degrees are finite"));
    stubs
        .chunks(2)
        .map(|c| if c.len() == 2 { c[0] * c[1] } else { 0.0 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn s_on_star() {
        // S_k: k edges × (k·1)
        let g = builders::star(5);
        assert_eq!(likelihood_s(&g), 25.0);
    }

    #[test]
    fn s2_on_star_hand_computed() {
        // Star S4: wedges all centered at hub; C(4,2) = 6 wedges with
        // endpoint degrees 1·1 → S2 = 6.
        let g = builders::star(4);
        assert_eq!(likelihood_s2(&g), 6.0);
        assert_eq!(wedge_count(&g), 6);
    }

    #[test]
    fn s2_on_path_hand_computed() {
        // P4 wedges: centered at node1 (ends deg 1,2 → 2), node2 (ends
        // deg 2,1 → 2); S2 = 4.
        let g = builders::path(4);
        assert_eq!(likelihood_s2(&g), 4.0);
        assert_eq!(wedge_count(&g), 2);
    }

    #[test]
    fn s2_on_triangle_is_zero() {
        // K3: every neighbor pair is closed — no induced wedge at all.
        let g = builders::complete(3);
        assert_eq!(likelihood_s2(&g), 0.0);
    }

    #[test]
    fn s2_on_paw_graph() {
        // Triangle {0,1,2} + pendant 3 on node 0. Induced wedges:
        // 1−0−3 (deg 2·1), 2−0−3 (2·1) — the 1−0−2 pair is closed.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (0, 3)]).unwrap();
        assert_eq!(likelihood_s2(&g), 4.0);
    }

    #[test]
    fn s2_brute_force_cross_check() {
        // Compare the subtract-closed-pairs formula against explicit
        // induced-wedge enumeration.
        let g = builders::karate_club();
        let fast = likelihood_s2(&g);
        let mut slow = 0.0;
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    if !g.has_edge(nbrs[i], nbrs[j]) {
                        slow += (g.degree(nbrs[i]) as f64) * (g.degree(nbrs[j]) as f64);
                    }
                }
            }
        }
        assert!((fast - slow).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_dominates_actual() {
        for g in [
            builders::karate_club(),
            builders::petersen(),
            builders::star(7),
            builders::path(9),
        ] {
            assert!(likelihood_s_upper_bound(&g) >= likelihood_s(&g) - 1e-9);
        }
    }

    #[test]
    fn upper_bound_tight_for_regular_graphs() {
        // every pairing gives k² on a k-regular graph
        let g = builders::cycle(8);
        assert_eq!(likelihood_s_upper_bound(&g), likelihood_s(&g));
    }

    #[test]
    fn empty_graph_zeroes() {
        let g = Graph::new();
        assert_eq!(likelihood_s(&g), 0.0);
        assert_eq!(likelihood_s2(&g), 0.0);
        assert_eq!(wedge_count(&g), 0);
    }
}

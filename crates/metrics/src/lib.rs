//! # dk-metrics — the paper's topology metric suite (§2, Table 2)
//!
//! Implements every graph metric the paper uses to compare original and
//! dK-random topologies, behind one composable analysis API:
//!
//! * [`metric::Metric`] — a metric's name, cost class, shared-computation
//!   dependencies, and scalar/series output, with a type-erased registry
//!   ([`metric::AnyMetric`]: `FromStr`, capability listing) mirroring the
//!   generation side's `Method`;
//! * [`analyzer::Analyzer`] — builder facade: select metrics by name or
//!   set, fix the GCC policy (§5.2), and analyze one graph
//!   ([`analyzer::Analyzer::analyze`]) or a seeded ensemble
//!   ([`analyzer::Analyzer::run_ensemble`] → per-metric mean/std/min/max,
//!   the numbers the paper's Table 2 and figures 5–9 report);
//! * [`cache::AnalysisCache`] — shared computations (GCC extraction,
//!   triangle census, fused distance+betweenness traversal, spectral
//!   solve) computed once per graph and reused across metrics;
//! * [`report::Report`] / [`table::MetricTable`] — structured results
//!   with text and hand-rolled JSON rendering.
//!
//! ## Quickstart
//!
//! ```
//! use dk_metrics::analyzer::Analyzer;
//! use dk_graph::builders;
//!
//! // the paper's default battery on one graph
//! let report = Analyzer::new().analyze(&builders::karate_club());
//! assert_eq!(report.scalar("n"), Some(34.0));
//!
//! // custom selection by name — distances and betweenness share one
//! // fused all-source traversal in the cache
//! let report = Analyzer::new()
//!     .metric_names("d_avg,b_max,c_k")
//!     .unwrap()
//!     .analyze(&builders::karate_club());
//! assert!(report.scalar("b_max").unwrap() > 0.0);
//! println!("{}", report.to_json());
//! ```
//!
//! ## The metric modules
//!
//! | metric | module | paper notation |
//! |--------|--------|----------------|
//! | degree distribution | [`degree`] | `P(k)` |
//! | average degree | [`degree`] | `k̄` |
//! | joint degree distribution | [`jdd`] | `P(k1,k2)` |
//! | assortativity coefficient | [`jdd`] | `r` |
//! | likelihood | [`likelihood`] | `S` |
//! | second-order likelihood | [`likelihood`] | `S2` |
//! | clustering | [`clustering`] | `C(k)`, `C̄` |
//! | distance distribution | [`distance`] | `d(x)`, `d̄`, `σ_d` |
//! | betweenness | [`betweenness`] | — |
//! | Laplacian spectrum extremes | [`spectral`] | `λ1`, `λ_{n−1}` |
//! | k-core decomposition | [`kcore`] | — (beyond-paper check) |
//! | rich-club connectivity | [`richclub`] | — (beyond-paper check) |
//! | attack/failure percolation | [`attack`] | — (robustness study) |
//!
//! [`report::MetricReport`] — the historical fixed-field scalar battery —
//! survives as a thin wrapper over the analyzer.
//!
//! ## Conventions
//!
//! * All metrics are computed on the **giant connected component** by
//!   default; the paper extracts the GCC first (§5.2: "We report all the
//!   metrics calculated for the giant connected component"). Opt out with
//!   [`cache::GccPolicy::Whole`].
//! * All-pairs computations (distances, betweenness) run **exactly** by
//!   default and in parallel across BFS sources using scoped threads;
//!   every traversal-shaped pass reads a frozen
//!   [`dk_graph::CsrGraph`] snapshot built once per analyzer run. Graphs
//!   at paper scale (10⁴ nodes, 3×10⁴ edges) complete in seconds. For
//!   larger graphs the explicit `distance_approx`/`betweenness_approx`
//!   metrics ([`sampled`], `Cost::Sampled`) estimate from K pivot
//!   sources, and the `distance_sketch`/`avg_distance_sketch`/
//!   `effective_diameter_sketch` metrics ([`sketch`], `Cost::Sketch`)
//!   estimate the distance family from HyperANF neighborhood sketches
//!   whose error `1.04/√2^b` is set by the register count.
//! * Past ~10⁵ analyzed nodes the traversal passes switch to the
//!   **sharded streaming** route ([`stream`]): per-shard partials fold
//!   into `O(n)` reducers in shard order, bounding traversal memory by
//!   the worker count (`Analyzer::shards` / `Analyzer::memory_budget`;
//!   CLI `--shards` / `--memory-budget`) while staying bit-identical to
//!   the retained in-memory route.
//! * Results never depend on thread counts: parallel analysis is
//!   byte-identical to serial.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod attack;
pub mod betweenness;
pub mod cache;
pub mod clustering;
pub mod degree;
pub mod distance;
pub mod jdd;
pub mod json;
pub mod kcore;
pub mod likelihood;
pub mod metric;
pub mod report;
pub mod richclub;
pub mod sampled;
pub mod sketch;
pub mod spectral;
pub mod stream;
pub mod table;

pub use analyzer::{Analyzer, EnsembleSummary, ScalarSummary};
pub use attack::{AttackOptions, AttackReport, Checkpoint, Strategy};
pub use cache::{AnalysisCache, AnalyzeOptions, GccPolicy};
pub use metric::{AnyMetric, Metric, MetricValue};
pub use report::{MetricReport, Report};
pub use stream::{ExecMode, ExecPlan};
pub use table::MetricTable;

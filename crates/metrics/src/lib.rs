//! # dk-metrics — the paper's topology metric suite (§2, Table 2)
//!
//! Implements every graph metric the paper uses to compare original and
//! dK-random topologies:
//!
//! | metric | module | paper notation |
//! |--------|--------|----------------|
//! | degree distribution | [`degree`] | `P(k)` |
//! | average degree | [`degree`] | `k̄` |
//! | joint degree distribution | [`jdd`] | `P(k1,k2)` |
//! | assortativity coefficient | [`jdd`] | `r` |
//! | likelihood | [`likelihood`] | `S` |
//! | second-order likelihood | [`likelihood`] | `S2` |
//! | clustering | [`clustering`] | `C(k)`, `C̄` |
//! | distance distribution | [`distance`] | `d(x)`, `d̄`, `σ_d` |
//! | betweenness | [`betweenness`] | — |
//! | Laplacian spectrum extremes | [`spectral`] | `λ1`, `λ_{n−1}` |
//! | k-core decomposition | [`kcore`] | — (beyond-paper check) |
//! | rich-club connectivity | [`richclub`] | — (beyond-paper check) |
//!
//! [`report::MetricReport`] computes the full scalar battery in one call —
//! that is what every reproduction table prints.
//!
//! ## Conventions
//!
//! * All metrics are intended to be computed on **connected** graphs; the
//!   paper extracts the giant connected component first (§5.2) and so do
//!   the callers in `dk-bench`. Functions that require connectivity say so.
//! * All-pairs computations (distances, betweenness) run **exactly** (no
//!   sampling) and in parallel across BFS sources using scoped threads.
//!   Graphs at paper scale (10⁴ nodes, 3×10⁴ edges) complete in seconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod betweenness;
pub mod clustering;
pub mod degree;
pub mod distance;
pub mod jdd;
pub mod kcore;
pub mod likelihood;
pub mod report;
pub mod richclub;
pub mod spectral;

pub use report::MetricReport;

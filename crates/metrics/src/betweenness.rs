//! Node betweenness centrality (Brandes' algorithm, exact, parallel).
//!
//! Betweenness of `v` is the weighted sum over source/target pairs of the
//! fraction of shortest paths passing through `v` (paper §2: "it estimates
//! the potential traffic load on a node"). Brandes' algorithm computes it
//! exactly in O(n·m) on unweighted graphs — one BFS plus one dependency
//! back-propagation per source — and sources are embarrassingly parallel.

use crate::distance::{default_threads, DistanceDistribution};
use crate::stream::{run_sharded, run_sharded_fold, DEFAULT_SHARDS};
use dk_graph::{AdjacencyView, CsrGraph, Graph, NodeId, Relabeling};
use std::collections::VecDeque;

/// Joint result of the fused all-source traversal: Brandes' BFS already
/// discovers the distance of every reachable node from every source, so
/// the exact distance distribution falls out of the same pass for the
/// cost of a counter increment per visit.
///
/// This is the shared-computation path behind the analyzer cache: when a
/// metric battery requests both the distance family and the betweenness
/// family, one traversal serves both instead of two all-source sweeps.
#[derive(Clone, Debug)]
pub struct FusedTraversal {
    /// Exact node betweenness, unordered-pair convention (identical to
    /// [`node_betweenness`]).
    pub betweenness: Vec<f64>,
    /// Exact distance distribution (identical to
    /// [`DistanceDistribution::from_graph`]).
    pub distances: DistanceDistribution,
    /// Greatest finite distance discovered from any source — the
    /// max-merge of per-source eccentricities, one of the streamed
    /// pass's compact reducers. Always equals `distances.diameter()`;
    /// carried separately so the streamed route cross-checks its
    /// histogram against an independently merged reducer.
    pub max_depth: u32,
}

/// Fused all-source pass computing node betweenness **and** the distance
/// distribution in one sweep. See [`FusedTraversal`].
pub fn betweenness_and_distances(g: &Graph) -> FusedTraversal {
    betweenness_and_distances_with_threads(g, default_threads())
}

/// As [`betweenness_and_distances`] with an explicit worker count.
///
/// Takes a fresh [`CsrGraph`] snapshot and traverses that — the fused
/// pass reads every neighbor list `2n` times, so the flat-array layout
/// dominates the O(n + m) snapshot cost on anything but toy graphs.
/// Callers already holding a snapshot (the analyzer cache) use
/// [`betweenness_and_distances_csr`].
pub fn betweenness_and_distances_with_threads(g: &Graph, threads: usize) -> FusedTraversal {
    fused_traversal(&CsrGraph::from_graph(g), threads)
}

/// The fused pass over a prepared CSR snapshot.
pub fn betweenness_and_distances_csr(g: &CsrGraph, threads: usize) -> FusedTraversal {
    fused_traversal(g, threads)
}

/// The **in-memory** fused pass with an explicit shard count: collects
/// every shard's partial, then merges them in shard order. This is the
/// equivalence oracle for [`betweenness_and_distances_streamed`] — at
/// equal shard counts the two are bit-identical, and at
/// [`DEFAULT_SHARDS`] this is exactly [`betweenness_and_distances_csr`].
pub fn betweenness_and_distances_sharded(
    g: &CsrGraph,
    shards: usize,
    threads: usize,
) -> FusedTraversal {
    let n = g.node_count();
    if n == 0 {
        return FusedTraversal::empty();
    }
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    finish_fused(
        n,
        brandes_over_sources_sharded(g, &sources, shards, threads),
    )
}

/// The **streaming** fused pass: each worker streams its source shards
/// over the snapshot into a compact `BrandesSums` partial (betweenness
/// accumulation, distance-histogram merge, eccentricity max-merge) and
/// partials fold into one global accumulator in shard order — in-flight
/// memory `O(workers · n)` instead of `O(shards · n)`, with **no**
/// per-source n-vector ever materialized beyond the worker's reusable
/// scratch. Bit-identical to [`betweenness_and_distances_sharded`] at
/// the same shard count, for every thread count. This is the route the
/// analyzer plans for 10⁶-node graphs (see [`crate::stream`]).
pub fn betweenness_and_distances_streamed(
    g: &CsrGraph,
    shards: usize,
    threads: usize,
) -> FusedTraversal {
    let n = g.node_count();
    if n == 0 {
        return FusedTraversal::empty();
    }
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    finish_fused(
        n,
        brandes_over_sources_streamed(g, &sources, shards, threads),
    )
}

/// The fused pass over a **relabeled** snapshot
/// ([`CsrGraph::from_graph_relabeled`]), returning results in
/// **external** id space — bit-identical to the unpermuted sharded /
/// streamed routes at the same shard count.
///
/// Why the bits survive the permutation: Brandes' kernel never branches
/// on an id's *value* (only on distances, σ counts, and adjacency
/// order), and the relabeled snapshot preserves adjacency order under
/// renaming, so the sweep from `to_new[s]` performs the identical f64
/// operations in the identical order as the sweep from `s` on the plain
/// snapshot. Sources are listed in **external** order (`to_new[0],
/// to_new[1], …`), keeping the per-node accumulation order across
/// sources unchanged, and shard boundaries depend only on the source
/// *count* — the raw `bc` vector (internal id space) is then
/// inverse-permuted before leaving.
pub fn betweenness_and_distances_relabeled(
    g: &CsrGraph,
    relab: &Relabeling,
    shards: usize,
    threads: usize,
    streamed: bool,
) -> FusedTraversal {
    let n = g.node_count();
    if n == 0 {
        return FusedTraversal::empty();
    }
    // external source order, mapped into internal ids
    let sources: Vec<NodeId> = relab.forward().to_vec();
    let mut sums = if streamed {
        brandes_over_sources_streamed(g, &sources, shards, threads)
    } else {
        brandes_over_sources_sharded(g, &sources, shards, threads)
    };
    sums.bc = relab.invert_values(&sums.bc);
    finish_fused(n, sums)
}

/// The fused pass over `Graph`'s `Vec<Vec<_>>` adjacency directly, with
/// **no** CSR snapshot.
///
/// This is the seed implementation's memory-access pattern, retained
/// deliberately as (a) the baseline the `csr_bench`/`perf_csr` benches
/// measure the snapshot against and (b) the equivalence oracle for the
/// CSR port (results are bit-identical — same neighbor order, same
/// chunking, same merge order). Analysis code should not call this.
pub fn betweenness_and_distances_adjacency(g: &Graph, threads: usize) -> FusedTraversal {
    fused_traversal(g, threads)
}

/// Exact fused traversal over any adjacency view.
fn fused_traversal<V: AdjacencyView + ?Sized>(g: &V, threads: usize) -> FusedTraversal {
    let n = g.node_count();
    if n == 0 {
        return FusedTraversal::empty();
    }
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    finish_fused(n, brandes_over_sources(g, &sources, threads))
}

impl FusedTraversal {
    fn empty() -> Self {
        FusedTraversal {
            betweenness: Vec::new(),
            distances: DistanceDistribution {
                counts: vec![],
                nodes: 0,
                unreachable_pairs: 0,
            },
            max_depth: 0,
        }
    }
}

/// Applies the pair-convention halving and packages the reducer sums —
/// the step every fused entry point (in-memory, sharded, streamed)
/// shares after its Brandes pass.
fn finish_fused(n: usize, sums: BrandesSums) -> FusedTraversal {
    let BrandesSums {
        mut bc,
        counts,
        unreachable,
        depth,
    } = sums;
    // each unordered pair was counted from both endpoints
    for v in bc.iter_mut() {
        *v /= 2.0;
    }
    debug_assert_eq!(
        depth as usize,
        counts.len().saturating_sub(1),
        "eccentricity max-merge must agree with the histogram top bin"
    );
    FusedTraversal {
        betweenness: bc,
        distances: DistanceDistribution {
            counts,
            nodes: n,
            unreachable_pairs: unreachable,
        },
        max_depth: depth,
    }
}

/// Compact reducer state of a (possibly partial) Brandes traversal: the
/// raw dependency sums, the distance histogram, the unreached-pair
/// tally, and the max-merged source eccentricity. One of these per shard
/// is all the sharded routes ever hold — per-source vectors live only in
/// the worker's reusable scratch.
pub(crate) struct BrandesSums {
    /// Raw per-node dependency sums over the listed sources (no
    /// pair-convention halving, no sampling scale).
    pub bc: Vec<f64>,
    /// Per-distance visit counts over the listed sources.
    pub counts: Vec<u64>,
    /// Number of (source, node) pairs left unreached.
    pub unreachable: u64,
    /// Greatest finite distance from any listed source (max-merged
    /// per-source eccentricity).
    pub depth: u32,
}

impl BrandesSums {
    fn zero(n: usize) -> Self {
        BrandesSums {
            bc: vec![0.0f64; n],
            counts: Vec::new(),
            unreachable: 0,
            depth: 0,
        }
    }

    /// Shard-order merge — identical operations whether partials were
    /// collected first (in-memory route) or stream in one at a time
    /// (streamed route), so the two routes cannot diverge by a bit.
    fn merge(&mut self, p: BrandesSums) {
        for (acc, v) in self.bc.iter_mut().zip(p.bc) {
            *acc += v;
        }
        if self.counts.len() < p.counts.len() {
            self.counts.resize(p.counts.len(), 0);
        }
        for (x, v) in p.counts.into_iter().enumerate() {
            self.counts[x] += v;
        }
        self.unreachable += p.unreachable;
        self.depth = self.depth.max(p.depth);
    }
}

/// Per-node forward state packed into one 16-byte slot (`repr(C)`: the
/// i32 distance at offset 0, the f64 path count at offset 8) so each
/// neighbor probe in the hot loops — "is `v` on a shortest path?" plus
/// the `sigma`/`delta` accumulate that follows — lands on one cache
/// line instead of two. The kernel is memory-latency-bound at 10⁶
/// nodes, so halving the random lines touched per edge is the single
/// biggest lever; the arithmetic itself is untouched (same f64 adds in
/// the same order → bit-identical to the split-array layout).
#[derive(Clone, Copy)]
#[repr(C)]
struct PathState {
    dist: i32,
    sigma: f64,
}

const UNSEEN: PathState = PathState {
    dist: -1,
    sigma: 0.0,
};

/// One shard's worth of Brandes sources: BFS + dependency
/// back-propagation per source in `range`, accumulated into one compact
/// [`BrandesSums`] partial. The per-source buffers (`state`, `delta`,
/// `order`) are worker scratch reused across the shard; `order` doubles
/// as the FIFO queue (discovered nodes are appended and scanned by
/// cursor), so the vector left behind IS the BFS visit order the
/// reverse dependency sweep needs — one push per node, no ring buffer.
fn brandes_shard<V: AdjacencyView + ?Sized>(
    g: &V,
    sources: &[NodeId],
    range: std::ops::Range<u32>,
) -> BrandesSums {
    let n = g.node_count();
    let mut out = BrandesSums::zero(n);
    // reusable per-source buffers
    let mut state = vec![UNSEEN; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for idx in range {
        let s = sources[idx as usize];
        state.fill(UNSEEN);
        delta.fill(0.0);
        order.clear();
        state[s as usize] = PathState {
            dist: 0,
            sigma: 1.0,
        };
        order.push(s);
        let mut cursor = 0usize;
        while let Some(&u) = order.get(cursor) {
            cursor += 1;
            let du = state[u as usize].dist;
            let dx = du as usize;
            out.depth = out.depth.max(du as u32);
            if out.counts.len() <= dx {
                out.counts.resize(dx + 1, 0);
            }
            out.counts[dx] += 1;
            // sigma[u] is final once u is scanned — every contribution
            // comes from the previous BFS level, all scanned before u —
            // so hoist the read out of the neighbor loop (the aliasing
            // the compiler can't rule out never happens: a neighbor at
            // depth du+1 is never u itself)
            let su = state[u as usize].sigma;
            for &v in g.neighbors(u) {
                let st = &mut state[v as usize];
                if st.dist < 0 {
                    st.dist = du + 1;
                    order.push(v);
                }
                if st.dist == du + 1 {
                    st.sigma += su;
                }
            }
        }
        out.unreachable += n as u64 - order.len() as u64;
        // dependency accumulation in reverse BFS order
        for &w in order.iter().rev() {
            let wi = w as usize;
            let coeff = (1.0 + delta[wi]) / state[wi].sigma;
            let dw = state[wi].dist;
            for &v in g.neighbors(w) {
                let vi = v as usize;
                let st = state[vi];
                if st.dist + 1 == dw {
                    delta[vi] += st.sigma * coeff;
                }
            }
            if w != s {
                out.bc[wi] += delta[wi];
            }
        }
    }
    out
}

/// One Brandes BFS + dependency back-propagation per listed source,
/// parallelized over sources with deterministic sharding (boundaries are
/// a function of `sources.len()` only, so every thread count merges the
/// floating-point partials in the same order → bit-identical results).
///
/// Shared by the exact fused pass (sources = all nodes) and the
/// Brandes–Pich sampled estimator in [`crate::sampled`] (sources = K
/// pivots).
pub(crate) fn brandes_over_sources<V: AdjacencyView + ?Sized>(
    g: &V,
    sources: &[NodeId],
    threads: usize,
) -> BrandesSums {
    brandes_over_sources_sharded(g, sources, DEFAULT_SHARDS, threads)
}

/// As [`brandes_over_sources`] with an explicit shard count — the
/// in-memory route: collect all shard partials, merge in shard order.
pub(crate) fn brandes_over_sources_sharded<V: AdjacencyView + ?Sized>(
    g: &V,
    sources: &[NodeId],
    shards: usize,
    threads: usize,
) -> BrandesSums {
    let n = g.node_count();
    let k = sources.len();
    let threads = threads.clamp(1, k.max(1));
    let partials = run_sharded(k as u32, shards, threads, |range| {
        brandes_shard(g, sources, range)
    });
    let mut acc = BrandesSums::zero(n);
    for p in partials {
        acc.merge(p);
    }
    acc
}

/// As [`brandes_over_sources_sharded`], but partials fold into the
/// accumulator in shard order as workers finish — `O(workers · n)` in
/// flight, bit-identical to the in-memory route at the same shard count.
pub(crate) fn brandes_over_sources_streamed<V: AdjacencyView + ?Sized>(
    g: &V,
    sources: &[NodeId],
    shards: usize,
    threads: usize,
) -> BrandesSums {
    let n = g.node_count();
    let k = sources.len();
    let threads = threads.clamp(1, k.max(1));
    run_sharded_fold(
        k as u32,
        shards,
        threads,
        |range| brandes_shard(g, sources, range),
        BrandesSums::zero(n),
        |acc, p| acc.merge(p),
    )
}

/// Exact node betweenness, **unordered-pair convention**: each `{s, t}`
/// pair contributes once, endpoints excluded.
pub fn node_betweenness(g: &Graph) -> Vec<f64> {
    node_betweenness_with_threads(g, default_threads())
}

/// As [`node_betweenness`] with an explicit worker count.
///
/// Delegates to the fused pass — the distance counters it also maintains
/// cost one array increment per BFS visit, noise next to the Brandes
/// dependency accumulation.
pub fn node_betweenness_with_threads(g: &Graph, threads: usize) -> Vec<f64> {
    betweenness_and_distances_with_threads(g, threads).betweenness
}

/// Betweenness normalized to `\[0, 1\]` by the number of unordered pairs
/// excluding the node itself, `(n−1)(n−2)/2`.
///
/// This is the "normalized node betweenness" of the paper's Figures 6(b)
/// and 9. Returns zeros for `n < 3`.
pub fn normalized_betweenness(g: &Graph) -> Vec<f64> {
    normalize_raw(node_betweenness(g), g.node_count())
}

/// Normalizes raw per-node betweenness (unordered-pair convention) by the
/// `(n−1)(n−2)/2` pair count — the shared step between the whole-graph
/// entry point above, the analyzer cache (which holds raw values), and
/// the sampled estimator's `n/K`-scaled sums.
pub fn normalize_raw(raw: Vec<f64>, n: usize) -> Vec<f64> {
    if n < 3 {
        return vec![0.0; n];
    }
    let scale = 2.0 / ((n as f64 - 1.0) * (n as f64 - 2.0));
    raw.into_iter().map(|b| b * scale).collect()
}

/// Exact **edge** betweenness (paper §2: centrality "both for nodes and
/// links"; "link value \[29\]" is directly related), unordered-pair
/// convention, keyed by canonical edge.
///
/// Same Brandes pass as node betweenness; the dependency flowing across
/// each DAG edge is accumulated per graph edge.
pub fn edge_betweenness(g: &Graph) -> Vec<((NodeId, NodeId), f64)> {
    let n = g.node_count();
    let mut acc: std::collections::BTreeMap<(NodeId, NodeId), f64> =
        g.edges().iter().map(|&e| (e, 0.0)).collect();
    if n == 0 {
        return Vec::new();
    }
    // sequential: edge betweenness is used on small (HOT-scale) graphs
    let mut dist = vec![-1i32; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for s in 0..n as u32 {
        for i in 0..n {
            dist[i] = -1;
            sigma[i] = 0.0;
            delta[i] = 0.0;
        }
        order.clear();
        queue.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let du = dist[u as usize];
            for &v in g.neighbors(u) {
                let vi = v as usize;
                if dist[vi] < 0 {
                    dist[vi] = du + 1;
                    queue.push_back(v);
                }
                if dist[vi] == du + 1 {
                    sigma[vi] += sigma[u as usize];
                }
            }
        }
        for &w in order.iter().rev() {
            let wi = w as usize;
            let coeff = (1.0 + delta[wi]) / sigma[wi];
            let dw = dist[wi];
            for &v in g.neighbors(w) {
                let vi = v as usize;
                if dist[vi] + 1 == dw {
                    let flow = sigma[vi] * coeff;
                    delta[vi] += flow;
                    let key = if v < w { (v, w) } else { (w, v) };
                    *acc.get_mut(&key).expect("edge exists") += flow;
                }
            }
        }
    }
    // each unordered pair contributes from both endpoints
    acc.into_iter().map(|(e, b)| (e, b / 2.0)).collect()
}

/// Mean normalized betweenness of `k`-degree nodes, as `(k, b̄(k))` pairs —
/// the series plotted in the paper's betweenness figures.
pub fn betweenness_by_degree(g: &Graph) -> Vec<(usize, f64)> {
    by_degree_from(g, &normalized_betweenness(g))
}

/// `(k, b̄(k))` series from precomputed normalized betweenness values —
/// lets the analyzer cache reuse one traversal for `b_max` and `b_k`.
pub(crate) fn by_degree_from(g: &Graph, bc: &[f64]) -> Vec<(usize, f64)> {
    let kmax = g.max_degree();
    let mut sum = vec![0.0f64; kmax + 1];
    let mut cnt = vec![0usize; kmax + 1];
    for (v, b) in bc.iter().enumerate() {
        let k = g.degree(v as u32);
        sum[k] += b;
        cnt[k] += 1;
    }
    (0..=kmax)
        .filter(|&k| cnt[k] > 0)
        .map(|k| (k, sum[k] / cnt[k] as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn path_betweenness_hand_computed() {
        // P5: bc = [0, 3, 4, 3, 0] (pairs routed through each inner node)
        let g = builders::path(5);
        let bc = node_betweenness_with_threads(&g, 1);
        let want = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (b, w) in bc.iter().zip(want) {
            assert!((b - w).abs() < 1e-12, "{bc:?}");
        }
    }

    #[test]
    fn star_center_carries_everything() {
        // S_k: center lies on all (k choose 2) pairs.
        let g = builders::star(6);
        let bc = node_betweenness(&g);
        assert!((bc[0] - 15.0).abs() < 1e-12);
        for &leaf_bc in &bc[1..=6] {
            assert_eq!(leaf_bc, 0.0);
        }
        // normalized: center = 1, leaves = 0
        let nb = normalized_betweenness(&g);
        assert!((nb[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_zero_betweenness() {
        let g = builders::complete(6);
        for b in node_betweenness(&g) {
            assert!(b.abs() < 1e-12);
        }
    }

    #[test]
    fn cycle_betweenness_uniform() {
        // C6: by symmetry all equal; each node lies on... compute: exact
        // value for even cycle n: (n-2)²/8? For n=6: pairs at distance 3
        // have 2 shortest paths. Just assert uniformity and positivity.
        let g = builders::cycle(6);
        let bc = node_betweenness(&g);
        for b in &bc {
            assert!((b - bc[0]).abs() < 1e-12);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn multiple_shortest_paths_split_credit() {
        // 4-cycle: pairs (0,2) and (1,3) each have two shortest paths, so
        // each inner node gets 1/2 from the one pair it can serve.
        let g = builders::cycle(4);
        let bc = node_betweenness_with_threads(&g, 1);
        for b in bc {
            assert!((b - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = builders::karate_club();
        let a = node_betweenness_with_threads(&g, 1);
        let b = node_betweenness_with_threads(&g, 4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn karate_hubs_dominate() {
        let g = builders::karate_club();
        let bc = node_betweenness(&g);
        // node 0 has the highest betweenness in the karate club (known)
        let max_idx = bc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 0);
        // known value: 231.07 (Brandes' paper / networkx)
        assert!((bc[0] - 231.0714).abs() < 0.01, "bc[0] = {}", bc[0]);
    }

    #[test]
    fn by_degree_series_shape() {
        let g = builders::star(5);
        let series = betweenness_by_degree(&g);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 1);
        assert!((series[0].1).abs() < 1e-12);
        assert_eq!(series[1].0, 5);
        assert!((series[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_route_is_bit_identical() {
        // external-order sources + label-equivariant sweeps + inverse
        // permutation: the locality relabeling must not perturb a single
        // bit of the fused report.
        for g in [
            builders::karate_club(),
            builders::grid(4, 5),
            builders::star(8),
            Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let csr = CsrGraph::from_graph(&g);
            let (rcsr, relab) = CsrGraph::from_graph_relabeled(&g);
            for streamed in [false, true] {
                let plain = if streamed {
                    betweenness_and_distances_streamed(&csr, 3, 2)
                } else {
                    betweenness_and_distances_sharded(&csr, 3, 2)
                };
                let rel = betweenness_and_distances_relabeled(&rcsr, &relab, 3, 2, streamed);
                assert_eq!(plain.betweenness, rel.betweenness, "streamed = {streamed}");
                assert_eq!(plain.distances, rel.distances, "streamed = {streamed}");
                assert_eq!(plain.max_depth, rel.max_depth);
            }
        }
        let (e, r) = CsrGraph::from_graph_relabeled(&Graph::new());
        assert!(betweenness_and_distances_relabeled(&e, &r, 2, 1, false)
            .betweenness
            .is_empty());
    }

    #[test]
    fn fused_distances_match_distance_module() {
        // the fused pass must reproduce DistanceDistribution exactly,
        // including unreachable-pair accounting on disconnected graphs
        for g in [
            builders::karate_club(),
            builders::grid(5, 7),
            Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let fused = betweenness_and_distances_with_threads(&g, 3);
            assert_eq!(
                fused.distances,
                crate::distance::DistanceDistribution::from_graph_with_threads(&g, 1)
            );
        }
        let empty = betweenness_and_distances(&Graph::new());
        assert!(empty.betweenness.is_empty());
        assert_eq!(empty.distances.nodes, 0);
    }

    #[test]
    fn csr_pass_bit_identical_to_adjacency_pass() {
        // the CSR port must not change a single bit: same neighbor
        // order, same chunking, same merge order
        for g in [
            builders::karate_club(),
            builders::grid(5, 7),
            Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            for threads in [1, 3] {
                let csr = betweenness_and_distances_with_threads(&g, threads);
                let adj = betweenness_and_distances_adjacency(&g, threads);
                assert_eq!(csr.betweenness, adj.betweenness);
                assert_eq!(csr.distances, adj.distances);
            }
        }
    }

    #[test]
    fn streamed_bit_identical_to_in_memory_across_shard_counts() {
        for g in [
            builders::karate_club(),
            builders::grid(5, 7),
            Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let csr = CsrGraph::from_graph(&g);
            let n = g.node_count();
            for shards in [1, 2, 7, n] {
                let oracle = betweenness_and_distances_sharded(&csr, shards, 1);
                for threads in [1, 3] {
                    let streamed = betweenness_and_distances_streamed(&csr, shards, threads);
                    assert_eq!(
                        streamed.betweenness, oracle.betweenness,
                        "shards = {shards}"
                    );
                    assert_eq!(streamed.distances, oracle.distances);
                    assert_eq!(streamed.max_depth, oracle.max_depth);
                }
            }
            // the default shard count reproduces the historical route
            let historical = betweenness_and_distances_csr(&csr, 2);
            let default_sharded = betweenness_and_distances_sharded(&csr, DEFAULT_SHARDS, 1);
            assert_eq!(historical.betweenness, default_sharded.betweenness);
            assert_eq!(historical.distances, default_sharded.distances);
        }
    }

    #[test]
    fn max_depth_reducer_equals_diameter() {
        let g = builders::grid(4, 6);
        let csr = CsrGraph::from_graph(&g);
        let fused = betweenness_and_distances_streamed(&csr, 7, 2);
        assert_eq!(fused.max_depth as usize, fused.distances.diameter());
        assert_eq!(fused.max_depth, 8); // (4-1) + (6-1)
        let empty = betweenness_and_distances_streamed(&CsrGraph::from_graph(&Graph::new()), 3, 2);
        assert_eq!(empty.max_depth, 0);
        assert!(empty.betweenness.is_empty());
    }

    #[test]
    fn tiny_graphs() {
        assert!(node_betweenness(&Graph::new()).is_empty());
        assert_eq!(normalized_betweenness(&builders::path(2)), vec![0.0, 0.0]);
        assert!(edge_betweenness(&Graph::new()).is_empty());
    }

    #[test]
    fn edge_betweenness_on_path() {
        // P4 edges: (0,1) carries pairs {0,1},{0,2},{0,3} → 3;
        // (1,2) carries {0,2},{0,3},{1,2},{1,3} → 4; (2,3) symmetric 3.
        let g = builders::path(4);
        let eb = edge_betweenness(&g);
        let get = |u: u32, v: u32| eb.iter().find(|&&(e, _)| e == (u, v)).unwrap().1;
        assert!((get(0, 1) - 3.0).abs() < 1e-12);
        assert!((get(1, 2) - 4.0).abs() < 1e-12);
        assert!((get(2, 3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_betweenness_on_star_is_pairs_plus_one() {
        // S_k: each spoke carries its own leaf pair with the hub (1) plus
        // (k−1) leaf–leaf pairs split... no splitting: unique paths.
        // pairs through spoke (0,i): {i, hub} = 1 + {i, j≠i} = k−1 → k.
        let k = 5;
        let g = builders::star(k);
        for (_, b) in edge_betweenness(&g) {
            assert!((b - k as f64).abs() < 1e-12, "b = {b}");
        }
    }

    #[test]
    fn edge_betweenness_splits_over_shortest_paths() {
        // C4: each pair at distance 2 has two shortest paths → each edge
        // carries 4 adjacent pairs' single paths... by symmetry all equal.
        let g = builders::cycle(4);
        let eb = edge_betweenness(&g);
        for &(_, b) in &eb {
            assert!((b - eb[0].1).abs() < 1e-12);
        }
        // total edge betweenness = Σ over pairs of path length
        let total: f64 = eb.iter().map(|&(_, b)| b).sum();
        let dd = crate::distance::DistanceDistribution::from_graph(&g);
        let sum_dist: f64 = dd
            .counts
            .iter()
            .enumerate()
            .map(|(x, &c)| x as f64 * c as f64)
            .sum::<f64>()
            / 2.0;
        assert!((total - sum_dist).abs() < 1e-9);
    }

    #[test]
    fn edge_betweenness_total_equals_sum_of_distances() {
        // identity: Σ_e bc(e) = Σ_{pairs} d(u,v) (every shortest path of
        // length ℓ contributes ℓ edge-visits, split across ties)
        let g = builders::karate_club();
        let total: f64 = edge_betweenness(&g).iter().map(|&(_, b)| b).sum();
        let dd = crate::distance::DistanceDistribution::from_graph(&g);
        let sum_dist: f64 = dd
            .counts
            .iter()
            .enumerate()
            .map(|(x, &c)| x as f64 * c as f64)
            .sum::<f64>()
            / 2.0;
        assert!(
            (total - sum_dist).abs() < 1e-6,
            "Σ edge-bc {total} vs Σ distances {sum_dist}"
        );
    }
}

//! Spectral metrics: thin graph-facing wrapper over `dk-linalg`.
//!
//! Exists so that `dk-metrics` is the single dependency a caller needs for
//! the full Table 2 battery; the heavy lifting (Jacobi/Lanczos) lives in
//! [`dk_linalg`].

use dk_graph::Graph;
pub use dk_linalg::laplacian::{SpectralError, SpectralExtremes};

/// `λ1` and `λ_{n−1}` of the normalized Laplacian of a **connected** graph.
///
/// See [`dk_linalg::laplacian::spectral_extremes`] for strategy and
/// accuracy notes.
pub fn spectral_extremes(g: &Graph) -> Result<SpectralExtremes, SpectralError> {
    dk_linalg::spectral_extremes(g)
}

/// As [`spectral_extremes`] with an explicit Lanczos iteration budget for
/// large graphs.
pub fn spectral_extremes_with(
    g: &Graph,
    lanczos_iter: usize,
) -> Result<SpectralExtremes, SpectralError> {
    dk_linalg::laplacian::spectral_extremes_with(g, lanczos_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn wrapper_delegates() {
        let g = builders::complete(6);
        let s = spectral_extremes(&g).unwrap();
        assert!((s.lambda1 - 1.2).abs() < 1e-9);
        assert!((s.lambda_max - 1.2).abs() < 1e-9);
    }

    #[test]
    fn wrapper_propagates_errors() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(spectral_extremes(&g), Err(SpectralError::NotConnected));
    }
}

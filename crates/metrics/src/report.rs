//! Structured analysis reports (and the legacy scalar battery wrapper).
//!
//! A [`Report`] is what [`Analyzer::analyze`](crate::analyzer::Analyzer::analyze)
//! returns: a graph summary plus one [`MetricValue`] per selected metric,
//! in selection order. It renders as an aligned text block
//! ([`Report::to_text`]) or as machine-readable JSON ([`Report::to_json`],
//! hand-rolled — the workspace builds offline without serde).
//!
//! [`MetricReport`] — the fixed-field scalar battery every pre-facade
//! call site used — survives as a thin compatibility wrapper that runs
//! the analyzer and copies scalars out. New code should use
//! [`Analyzer`] directly.

use crate::analyzer::Analyzer;
use crate::json;
use crate::metric::{AnyMetric, MetricValue};

/// Bookkeeping about the analyzed graph carried by every [`Report`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphSummary {
    /// Nodes in the original input graph.
    pub nodes: usize,
    /// Edges in the original input graph.
    pub edges: usize,
    /// Nodes actually analyzed (the GCC under the default policy).
    pub analyzed_nodes: usize,
    /// Edges actually analyzed.
    pub analyzed_edges: usize,
    /// Fraction of original nodes retained (§5.2 GCC convention).
    pub gcc_fraction: f64,
    /// Whether GCC extraction was applied.
    pub gcc_applied: bool,
}

impl GraphSummary {
    pub(crate) fn to_json(&self) -> String {
        json::object([
            ("nodes".into(), self.nodes.to_string()),
            ("edges".into(), self.edges.to_string()),
            ("analyzed_nodes".into(), self.analyzed_nodes.to_string()),
            ("analyzed_edges".into(), self.analyzed_edges.to_string()),
            ("gcc_fraction".into(), json::number(self.gcc_fraction)),
            ("gcc".into(), self.gcc_applied.to_string()),
        ])
    }
}

/// One computed metric inside a [`Report`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRecord {
    /// The registry handle (name, kind, cost).
    pub metric: AnyMetric,
    /// Its value on this graph.
    pub value: MetricValue,
}

/// Analysis result: graph summary + metric values in selection order.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// What was analyzed.
    pub graph: GraphSummary,
    /// The computed metrics.
    pub records: Vec<MetricRecord>,
}

impl Report {
    /// Scalar value of metric `name` (canonical name or alias);
    /// `None` if absent or undefined on this graph.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.record(name).and_then(|r| r.value.as_scalar())
    }

    /// Series value of metric `name`; `None` if absent or not a series.
    pub fn series(&self, name: &str) -> Option<&[(usize, f64)]> {
        self.record(name).and_then(|r| r.value.as_series())
    }

    /// The full record for metric `name`.
    pub fn record(&self, name: &str) -> Option<&MetricRecord> {
        let m = AnyMetric::get(name)?;
        self.records.iter().find(|r| r.metric == m)
    }

    /// Aligned text rendering: one row per scalar, then one indented
    /// block per series.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "n = {}, m = {}{}\n",
            self.graph.nodes,
            self.graph.edges,
            if self.graph.gcc_applied {
                format!(
                    " (GCC: {} nodes, {} edges, fraction {:.3})",
                    self.graph.analyzed_nodes, self.graph.analyzed_edges, self.graph.gcc_fraction
                )
            } else {
                " (whole graph, no GCC extraction)".to_string()
            }
        );
        for rec in &self.records {
            if let MetricValue::Series(_) = rec.value {
                continue;
            }
            out.push_str(&format!(
                "{:<13} {}\n",
                rec.metric.name(),
                match rec.value {
                    MetricValue::Scalar(x) => fmt_scalar(x),
                    _ => "-".to_string(),
                }
            ));
        }
        for rec in &self.records {
            if let MetricValue::Series(s) = &rec.value {
                out.push_str(&format!("{}:\n", rec.metric.name()));
                for (x, y) in s {
                    out.push_str(&format!("  {x} {y}\n"));
                }
            }
        }
        out
    }

    /// Machine-readable JSON:
    /// `{"graph": {...}, "metrics": {"k_avg": 4.59, "d_x": [[1, 0.39], ...],
    /// "lambda1": null}}` — undefined metrics serialize as `null`.
    pub fn to_json(&self) -> String {
        json::object([
            ("graph".into(), self.graph.to_json()),
            (
                "metrics".into(),
                json::object(
                    self.records
                        .iter()
                        .map(|rec| (rec.metric.name().to_string(), metric_value_json(&rec.value))),
                ),
            ),
        ])
    }
}

fn metric_value_json(value: &MetricValue) -> String {
    match value {
        MetricValue::Scalar(x) => json::number(*x),
        MetricValue::Undefined => "null".to_string(),
        MetricValue::Series(s) => json::array(
            s.iter()
                .map(|&(x, y)| json::array([x.to_string(), json::number(y)])),
        ),
    }
}

fn fmt_scalar(x: f64) -> String {
    // integer-valued scalars (counts, diameters) and large magnitudes
    // print without a fractional part
    if (x.fract() == 0.0 && x.abs() < 1e15) || x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

// ---------------------------------------------------------------------
// Legacy fixed-field battery (thin wrapper over the analyzer)
// ---------------------------------------------------------------------

/// Which (potentially expensive) metric families to compute.
///
/// Legacy knob set, retained for the [`MetricReport`] wrapper; new code
/// selects metrics by name on [`Analyzer`].
#[derive(Clone, Copy, Debug)]
pub struct ReportOptions {
    /// Compute `λ1`/`λ_{n−1}` (Jacobi/Lanczos).
    pub spectral: bool,
    /// Lanczos budget for graphs above the dense cutoff.
    pub lanczos_iter: usize,
    /// Compute the exact distance distribution (all-source BFS).
    pub distances: bool,
    /// Compute max normalized betweenness (all-source Brandes).
    pub betweenness: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            spectral: true,
            lanczos_iter: 300,
            distances: true,
            betweenness: false,
        }
    }
}

impl ReportOptions {
    /// The equivalent analyzer (same metric selection, same GCC policy).
    pub fn to_analyzer(&self) -> Analyzer {
        let mut names = vec!["n", "m", "gcc_fraction", "k_avg", "r", "c_mean", "s", "s2"];
        if self.distances {
            names.extend(["d_avg", "d_std"]);
        }
        if self.spectral {
            names.extend(["lambda1", "lambda_n"]);
        }
        if self.betweenness {
            names.push("b_max");
        }
        Analyzer::new()
            .metrics(names.iter().map(|n| AnyMetric::get(n).expect("registered")))
            .lanczos_iter(self.lanczos_iter)
    }
}

/// Scalar metric battery of one graph (computed on its GCC).
///
/// Thin compatibility wrapper: construction dispatches through
/// [`Analyzer`] (shared-computation cache included) and copies the
/// scalars into the historical fixed fields.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReport {
    /// Nodes in the GCC.
    pub nodes: usize,
    /// Edges in the GCC.
    pub edges: usize,
    /// Fraction of the original nodes retained by the GCC.
    pub gcc_fraction: f64,
    /// Average degree `k̄` (of the GCC).
    pub k_avg: f64,
    /// Assortativity coefficient `r`.
    pub assortativity: f64,
    /// Mean clustering `C̄` (degree ≥ 2 convention).
    pub mean_clustering: f64,
    /// Average distance `d̄` (None if distances were not computed).
    pub avg_distance: Option<f64>,
    /// Distance standard deviation `σ_d`.
    pub distance_std: Option<f64>,
    /// Likelihood `S`.
    pub likelihood_s: f64,
    /// Second-order likelihood `S2`.
    pub likelihood_s2: f64,
    /// Smallest nonzero normalized-Laplacian eigenvalue `λ1`.
    pub lambda1: Option<f64>,
    /// Largest normalized-Laplacian eigenvalue `λ_{n−1}`.
    pub lambda_max: Option<f64>,
    /// Maximum normalized betweenness (None unless requested).
    pub max_betweenness: Option<f64>,
}

impl MetricReport {
    /// Full battery with default options.
    pub fn compute(g: &dk_graph::Graph) -> Self {
        Self::compute_with(g, &ReportOptions::default())
    }

    /// Battery with explicit options. The graph may be disconnected; the
    /// GCC is extracted internally.
    pub fn compute_with(g: &dk_graph::Graph, opts: &ReportOptions) -> Self {
        Self::from_report(&opts.to_analyzer().analyze(g))
    }

    /// Cheap subset (no distances/spectral/betweenness) — used inside
    /// rewiring convergence probes where the battery runs repeatedly.
    pub fn compute_cheap(g: &dk_graph::Graph) -> Self {
        Self::compute_with(
            g,
            &ReportOptions {
                spectral: false,
                distances: false,
                betweenness: false,
                lanczos_iter: 0,
            },
        )
    }

    /// Copies the battery scalars out of a structured [`Report`]
    /// (missing metrics become zeros/`None`s).
    pub fn from_report(rep: &Report) -> Self {
        let s = |name: &str| rep.scalar(name);
        MetricReport {
            nodes: s("n").map_or(0, |x| x as usize),
            edges: s("m").map_or(0, |x| x as usize),
            gcc_fraction: s("gcc_fraction").unwrap_or(1.0),
            k_avg: s("k_avg").unwrap_or(0.0),
            assortativity: s("r").unwrap_or(0.0),
            mean_clustering: s("c_mean").unwrap_or(0.0),
            avg_distance: s("d_avg"),
            distance_std: s("d_std"),
            likelihood_s: s("s").unwrap_or(0.0),
            likelihood_s2: s("s2").unwrap_or(0.0),
            lambda1: s("lambda1"),
            lambda_max: s("lambda_n"),
            max_betweenness: s("b_max"),
        }
    }

    /// Paper-style table row: `k̄  r  C̄  d̄  σd  λ1  λn-1`.
    pub fn table_row(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "-".into(), |x| format!("{x:.3}"))
        }
        format!(
            "{:>8.2} {:>8.3} {:>8.3} {:>8} {:>8} {:>8} {:>8}",
            self.k_avg,
            self.assortativity,
            self.mean_clustering,
            opt(self.avg_distance),
            opt(self.distance_std),
            opt(self.lambda1),
            opt(self.lambda_max),
        )
    }

    /// Header matching [`MetricReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "k_avg", "r", "C_mean", "d_avg", "d_std", "l1", "ln-1"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::{builders, Graph};

    #[test]
    fn full_battery_on_karate() {
        let r = MetricReport::compute(&builders::karate_club());
        assert_eq!(r.nodes, 34);
        assert_eq!(r.edges, 78);
        assert_eq!(r.gcc_fraction, 1.0);
        assert!((r.k_avg - 2.0 * 78.0 / 34.0).abs() < 1e-12);
        assert!(r.assortativity < -0.4);
        assert!(r.mean_clustering > 0.4); // known ≈ 0.59 (deg ≥ 2 nodes)
        assert!(r.avg_distance.unwrap() > 2.0 && r.avg_distance.unwrap() < 3.0);
        assert!(r.lambda1.unwrap() > 0.0);
        assert!(r.lambda_max.unwrap() <= 2.0);
        assert!(r.max_betweenness.is_none());
    }

    #[test]
    fn gcc_extraction_is_applied() {
        // path(4) plus 2 isolated nodes: metrics must describe the path
        let mut g = builders::path(4);
        g.add_node();
        g.add_node();
        let r = MetricReport::compute_cheap(&g);
        assert_eq!(r.nodes, 4);
        assert_eq!(r.edges, 3);
        assert!((r.gcc_fraction - 4.0 / 6.0).abs() < 1e-12);
        assert!((r.k_avg - 1.5).abs() < 1e-12);
        assert!(r.avg_distance.is_none());
    }

    #[test]
    fn betweenness_opt_in() {
        let opts = ReportOptions {
            betweenness: true,
            ..Default::default()
        };
        let r = MetricReport::compute_with(&builders::star(5), &opts);
        assert!((r.max_betweenness.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let r = MetricReport::compute_cheap(&builders::cycle(5));
        let row = r.table_row();
        assert!(row.contains("2.00"));
        assert!(row.contains('-')); // skipped metrics print as dashes
        assert_eq!(
            MetricReport::table_header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }

    #[test]
    fn empty_graph_report() {
        let r = MetricReport::compute(&Graph::new());
        assert_eq!(r.nodes, 0);
        assert_eq!(r.k_avg, 0.0);
        assert_eq!(r.gcc_fraction, 1.0);
    }

    #[test]
    fn report_text_and_json_render() {
        let rep = Analyzer::new()
            .metric_names("n,m,k_avg,d_x")
            .unwrap()
            .analyze(&builders::cycle(5));
        let text = rep.to_text();
        assert!(text.contains("k_avg         2\n"), "{text}");
        assert!(text.contains("d_x:"), "{text}");
        let js = rep.to_json();
        assert!(js.starts_with("{\"graph\":{\"nodes\":5,"), "{js}");
        assert!(js.contains("\"k_avg\":2"), "{js}");
        assert!(js.contains("\"d_x\":[[1,"), "{js}");
    }

    #[test]
    fn json_undefined_is_null() {
        let rep = Analyzer::new()
            .metric_names("lambda1")
            .unwrap()
            .analyze(&builders::path(1));
        assert!(rep.to_json().contains("\"lambda1\":null"));
        assert_eq!(rep.scalar("lambda1"), None);
    }

    #[test]
    fn report_lookup_accepts_aliases() {
        let rep = Analyzer::new().analyze(&builders::complete(4));
        assert_eq!(rep.scalar("avg_degree"), rep.scalar("k_avg"));
        assert!(rep.scalar("b_max").is_none()); // not selected
    }
}

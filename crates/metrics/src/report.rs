//! One-shot scalar metric battery (the paper's Table 2 notation).
//!
//! Every reproduction table in `dk-bench` is a set of [`MetricReport`]s
//! printed side by side. Metrics are computed on the **giant connected
//! component**, exactly as the paper does (§5.2: "We report all the
//! metrics calculated for the giant connected component"); the fraction of
//! nodes the GCC retains is part of the report so the `k̄`/`r`
//! discrepancies the paper attributes to GCC extraction stay visible.

use crate::{betweenness, clustering, distance, jdd, likelihood, spectral};
use dk_graph::{traversal, Graph};

/// Which (potentially expensive) metric families to compute.
#[derive(Clone, Copy, Debug)]
pub struct ReportOptions {
    /// Compute `λ1`/`λ_{n−1}` (Jacobi/Lanczos).
    pub spectral: bool,
    /// Lanczos budget for graphs above the dense cutoff.
    pub lanczos_iter: usize,
    /// Compute the exact distance distribution (all-source BFS).
    pub distances: bool,
    /// Compute max normalized betweenness (all-source Brandes).
    pub betweenness: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            spectral: true,
            lanczos_iter: 300,
            distances: true,
            betweenness: false,
        }
    }
}

/// Scalar metric battery of one graph (computed on its GCC).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricReport {
    /// Nodes in the GCC.
    pub nodes: usize,
    /// Edges in the GCC.
    pub edges: usize,
    /// Fraction of the original nodes retained by the GCC.
    pub gcc_fraction: f64,
    /// Average degree `k̄` (of the GCC).
    pub k_avg: f64,
    /// Assortativity coefficient `r`.
    pub assortativity: f64,
    /// Mean clustering `C̄` (degree ≥ 2 convention).
    pub mean_clustering: f64,
    /// Average distance `d̄` (None if distances were not computed).
    pub avg_distance: Option<f64>,
    /// Distance standard deviation `σ_d`.
    pub distance_std: Option<f64>,
    /// Likelihood `S`.
    pub likelihood_s: f64,
    /// Second-order likelihood `S2`.
    pub likelihood_s2: f64,
    /// Smallest nonzero normalized-Laplacian eigenvalue `λ1`.
    pub lambda1: Option<f64>,
    /// Largest normalized-Laplacian eigenvalue `λ_{n−1}`.
    pub lambda_max: Option<f64>,
    /// Maximum normalized betweenness (None unless requested).
    pub max_betweenness: Option<f64>,
}

impl MetricReport {
    /// Full battery with default options.
    pub fn compute(g: &Graph) -> Self {
        Self::compute_with(g, &ReportOptions::default())
    }

    /// Battery with explicit options. The graph may be disconnected; the
    /// GCC is extracted internally.
    pub fn compute_with(g: &Graph, opts: &ReportOptions) -> Self {
        let (gcc, _) = traversal::giant_component(g);
        let gcc_fraction = if g.node_count() == 0 {
            1.0
        } else {
            gcc.node_count() as f64 / g.node_count() as f64
        };
        let (avg_distance, distance_std) = if opts.distances && gcc.node_count() > 1 {
            let dd = distance::DistanceDistribution::from_graph(&gcc);
            (Some(dd.mean()), Some(dd.std_dev()))
        } else {
            (None, None)
        };
        let (lambda1, lambda_max) = if opts.spectral && gcc.node_count() >= 2 {
            match spectral::spectral_extremes_with(&gcc, opts.lanczos_iter) {
                Ok(s) => (Some(s.lambda1), Some(s.lambda_max)),
                Err(_) => (None, None),
            }
        } else {
            (None, None)
        };
        let max_betweenness = if opts.betweenness && gcc.node_count() >= 3 {
            betweenness::normalized_betweenness(&gcc)
                .into_iter()
                .max_by(|a, b| a.partial_cmp(b).expect("finite betweenness"))
        } else {
            None
        };
        MetricReport {
            nodes: gcc.node_count(),
            edges: gcc.edge_count(),
            gcc_fraction,
            k_avg: gcc.avg_degree(),
            assortativity: jdd::assortativity(&gcc),
            mean_clustering: clustering::mean_clustering(&gcc),
            avg_distance,
            distance_std,
            likelihood_s: likelihood::likelihood_s(&gcc),
            likelihood_s2: likelihood::likelihood_s2(&gcc),
            lambda1,
            lambda_max,
            max_betweenness,
        }
    }

    /// Cheap subset (no distances/spectral/betweenness) — used inside
    /// rewiring convergence probes where the battery runs repeatedly.
    pub fn compute_cheap(g: &Graph) -> Self {
        Self::compute_with(
            g,
            &ReportOptions {
                spectral: false,
                distances: false,
                betweenness: false,
                lanczos_iter: 0,
            },
        )
    }

    /// Paper-style table row: `k̄  r  C̄  d̄  σd  λ1  λn-1`.
    pub fn table_row(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "-".into(), |x| format!("{x:.3}"))
        }
        format!(
            "{:>8.2} {:>8.3} {:>8.3} {:>8} {:>8} {:>8} {:>8}",
            self.k_avg,
            self.assortativity,
            self.mean_clustering,
            opt(self.avg_distance),
            opt(self.distance_std),
            opt(self.lambda1),
            opt(self.lambda_max),
        )
    }

    /// Header matching [`MetricReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "k_avg", "r", "C_mean", "d_avg", "d_std", "l1", "ln-1"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn full_battery_on_karate() {
        let r = MetricReport::compute(&builders::karate_club());
        assert_eq!(r.nodes, 34);
        assert_eq!(r.edges, 78);
        assert_eq!(r.gcc_fraction, 1.0);
        assert!((r.k_avg - 2.0 * 78.0 / 34.0).abs() < 1e-12);
        assert!(r.assortativity < -0.4);
        assert!(r.mean_clustering > 0.4); // known ≈ 0.59 (deg ≥ 2 nodes)
        assert!(r.avg_distance.unwrap() > 2.0 && r.avg_distance.unwrap() < 3.0);
        assert!(r.lambda1.unwrap() > 0.0);
        assert!(r.lambda_max.unwrap() <= 2.0);
        assert!(r.max_betweenness.is_none());
    }

    #[test]
    fn gcc_extraction_is_applied() {
        // path(4) plus 2 isolated nodes: metrics must describe the path
        let mut g = builders::path(4);
        g.add_node();
        g.add_node();
        let r = MetricReport::compute_cheap(&g);
        assert_eq!(r.nodes, 4);
        assert_eq!(r.edges, 3);
        assert!((r.gcc_fraction - 4.0 / 6.0).abs() < 1e-12);
        assert!((r.k_avg - 1.5).abs() < 1e-12);
        assert!(r.avg_distance.is_none());
    }

    #[test]
    fn betweenness_opt_in() {
        let opts = ReportOptions {
            betweenness: true,
            ..Default::default()
        };
        let r = MetricReport::compute_with(&builders::star(5), &opts);
        assert!((r.max_betweenness.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let r = MetricReport::compute_cheap(&builders::cycle(5));
        let row = r.table_row();
        assert!(row.contains("2.00"));
        assert!(row.contains('-')); // skipped metrics print as dashes
        assert_eq!(
            MetricReport::table_header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }

    #[test]
    fn empty_graph_report() {
        let r = MetricReport::compute(&Graph::new());
        assert_eq!(r.nodes, 0);
        assert_eq!(r.k_avg, 0.0);
        assert_eq!(r.gcc_fraction, 1.0);
    }
}

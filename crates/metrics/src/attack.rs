//! Percolation and targeted-attack sweeps: full GCC-fraction
//! trajectories under node removal, in one near-linear pass.
//!
//! The paper's companion robustness study ("The effects of degree
//! correlations on network topologies and robustness", Zhao et al.)
//! asks which dK level captures *resilience*: how the giant connected
//! component shrinks as nodes are removed by random failure or by
//! targeted attack. This module makes that executable: a removal-order
//! strategy produces a permutation of the analyzed nodes, and the sweep
//! engine computes the GCC size and component count after **every**
//! removal step.
//!
//! ## The reverse-sweep invariant
//!
//! A naive sweep recomputes connected components after each removal —
//! `O(n·(n + m))`, hours at 10⁶ nodes. The engine never removes a node:
//! it processes the removal order **backwards**, re-inserting nodes
//! from last-removed to first into a [`UnionFind`] forest and
//! activating an edge exactly when both endpoints are live. Component
//! sizes only ever grow in that direction, so the largest-component
//! trajectory falls out of one `O(m·α)` pass. Merge order is fixed by
//! node id — each re-inserted node unions with its already-live
//! neighbors in ascending node-id order (sorted adjacency), and the
//! forest itself breaks every tie deterministically — so the whole
//! trajectory is a pure function of `(graph, removal order)`:
//! bit-identical across thread counts, shard counts, and execution
//! routes. Size ties for "the" giant component break toward the
//! component containing the smallest node id, the same rule
//! [`giant_component_nodes`](dk_graph::traversal::giant_component_nodes)
//! documents — so checkpoint snapshots here agree with a per-step
//! recompute oracle node for node (locked down by
//! `tests/attack_equivalence.rs`).
//!
//! ## Strategies
//!
//! * [`Strategy::Random`] — seeded uniform failure order (Fisher–Yates
//!   over the analyzed nodes).
//! * [`Strategy::Degree`] — descending degree on the intact graph, ties
//!   toward the smaller node id.
//! * [`Strategy::Betweenness`] — descending sampled betweenness (the
//!   existing Brandes–Pich twin, [`crate::sampled`]), ties toward the
//!   smaller node id.
//! * [`Strategy::DegreeAdaptive`] — re-ranks on the decremented graph:
//!   always removes the currently highest-degree node, ties toward the
//!   smaller node id. Runs on a bucket queue with lazy per-bucket
//!   min-heaps: `O((n + m) log n)` total, the log paying for the exact
//!   smallest-id tie-break.
//!
//! ## Outputs
//!
//! [`AttackReport`] carries the full trajectory (GCC size and component
//! count at every removal count `0..=n`), the interpolated
//! [`AttackReport::threshold`] where the GCC fraction crosses a level
//! (the registry metrics use 1/2), and optional [`Checkpoint`]s at
//! requested removal fractions — each with a sampled average-distance
//! estimate over the residual GCC (a subgraph CSR snapshot through
//! [`crate::sampled`]) and results keyed by original node ids via
//! [`dk_graph::SubgraphMap`].

use crate::cache::AnalysisCache;
use crate::distance::default_threads;
use crate::json;
use crate::metric::MetricValue;
use crate::sampled;
use dk_graph::{AdjacencyView, CsrGraph, Graph, NodeId, UnionFind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

/// Fixed seed of the registry metrics' internal sweeps (the paper's
/// SIGCOMM'06 date) — `attack_threshold` / `random_failure_threshold`
/// must be reproducible with no tuning knobs.
pub const DEFAULT_ATTACK_SEED: u64 = 20060911;

/// Random-failure replicas averaged by the `random_failure_threshold`
/// registry metric (seeds `DEFAULT_ATTACK_SEED..+8`).
pub const FAILURE_REPLICAS: u64 = 8;

/// Removal-order strategy for an attack sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded uniform random failure (Fisher–Yates).
    Random,
    /// Descending degree on the intact graph, ties toward smaller ids.
    #[default]
    Degree,
    /// Descending sampled betweenness (Brandes–Pich pivots), ties
    /// toward smaller ids.
    Betweenness,
    /// Highest degree on the *decremented* graph at every step, ties
    /// toward smaller ids (bucket queue).
    DegreeAdaptive,
}

impl Strategy {
    /// Every strategy, in listing order.
    pub const fn all() -> [Strategy; 4] {
        [
            Strategy::Random,
            Strategy::Degree,
            Strategy::Betweenness,
            Strategy::DegreeAdaptive,
        ]
    }

    /// Canonical lowercase name (the [`FromStr`] inverse).
    pub const fn name(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Degree => "degree",
            Strategy::Betweenness => "betweenness",
            Strategy::DegreeAdaptive => "degree-adaptive",
        }
    }

    /// One-line human description (CLI help).
    pub const fn description(self) -> &'static str {
        match self {
            Strategy::Random => "seeded uniform random failure order",
            Strategy::Degree => "descending degree on the intact graph",
            Strategy::Betweenness => "descending sampled betweenness (Brandes-Pich pivots)",
            Strategy::DegreeAdaptive => "highest current degree on the decremented graph",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "random" | "failure" => Ok(Strategy::Random),
            "degree" => Ok(Strategy::Degree),
            "betweenness" => Ok(Strategy::Betweenness),
            "degree-adaptive" | "degree_adaptive" | "adaptive" => Ok(Strategy::DegreeAdaptive),
            other => Err(format!(
                "unknown attack strategy {other:?} (random|degree|betweenness|degree-adaptive)"
            )),
        }
    }
}

/// Options for an attack sweep. Sampling/threading budgets come from
/// the [`Analyzer`](crate::analyzer::Analyzer) that runs the sweep.
#[derive(Clone, Debug)]
pub struct AttackOptions {
    /// Removal-order strategy.
    pub strategy: Strategy,
    /// Seed of the [`Strategy::Random`] order (ignored by the ranked
    /// strategies, which are fully deterministic).
    pub seed: u64,
    /// Removal fractions in `0.0..=1.0` at which to take distance
    /// checkpoints on the residual GCC. Order and duplicates are
    /// irrelevant; the report sorts ascending.
    pub checkpoints: Vec<f64>,
}

impl Default for AttackOptions {
    fn default() -> Self {
        AttackOptions {
            strategy: Strategy::Degree,
            seed: DEFAULT_ATTACK_SEED,
            checkpoints: Vec::new(),
        }
    }
}

/// One distance probe of the residual graph at a removal fraction.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Requested removal fraction.
    pub fraction: f64,
    /// Actual removal count `⌊fraction·n⌋` the probe ran at.
    pub removed: usize,
    /// Nodes in the residual giant component.
    pub gcc_nodes: usize,
    /// `gcc_nodes / n` (n = analyzed node count before removals).
    pub gcc_fraction: f64,
    /// Components among the surviving nodes.
    pub components: usize,
    /// Sampled average distance over the residual GCC (`None` when it
    /// has fewer than two nodes).
    pub avg_distance_estimate: Option<f64>,
    /// Highest-degree node of the residual GCC, keyed by **original**
    /// (pre-subgraph) node id via [`dk_graph::SubgraphMap`]; ties
    /// toward the smaller id. `None` when the residual GCC is empty.
    pub hub: Option<NodeId>,
}

/// Full result of one attack sweep. See the [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct AttackReport {
    /// Strategy that produced the removal order.
    pub strategy: Strategy,
    /// Seed used (meaningful for [`Strategy::Random`] only).
    pub seed: u64,
    /// Analyzed node count `n`.
    pub nodes: usize,
    /// Analyzed edge count.
    pub edges: usize,
    /// The removal order (a permutation of `0..n`).
    pub order: Vec<NodeId>,
    /// `gcc_sizes[i]` = size of the largest component after removing
    /// the first `i` nodes of `order`; length `n + 1`.
    pub gcc_sizes: Vec<u32>,
    /// `component_counts[i]` = number of components among the surviving
    /// nodes after `i` removals; length `n + 1`.
    pub component_counts: Vec<u32>,
    /// Distance probes, ascending by removal count.
    pub checkpoints: Vec<Checkpoint>,
}

impl AttackReport {
    /// GCC fraction after `removed` removals, relative to the analyzed
    /// node count (1.0 convention for the empty graph).
    ///
    /// # Panics
    /// Panics if `removed > nodes`.
    pub fn gcc_fraction_at(&self, removed: usize) -> f64 {
        if self.nodes == 0 {
            return 1.0;
        }
        self.gcc_sizes[removed] as f64 / self.nodes as f64
    }

    /// Smallest removal fraction at which the GCC fraction drops below
    /// `level`, linearly interpolated between adjacent removal counts.
    /// `Some(0.0)` if the intact graph is already below the level;
    /// `None` for an empty graph or a level outside `(0.0, 1.0]`.
    pub fn threshold(&self, level: f64) -> Option<f64> {
        threshold_from_sizes(&self.gcc_sizes, self.nodes, level)
    }

    /// Machine-readable JSON. The trajectory is decimated to at most
    /// ~513 evenly spaced `[removed, gcc_fraction, components]` points
    /// (stride reported as `curve_stride`, last point always included);
    /// checkpoints and the interpolated 1/2 threshold are exact.
    pub fn to_json(&self) -> String {
        let n = self.nodes;
        let stride = n / 512 + 1;
        let mut curve = Vec::new();
        let mut last = None;
        let mut i = 0;
        while i <= n {
            curve.push(self.curve_point(i));
            last = Some(i);
            i += stride;
        }
        if last != Some(n) {
            curve.push(self.curve_point(n));
        }
        let threshold = self
            .threshold(0.5)
            .map_or_else(|| "null".to_string(), json::number);
        json::object([
            (
                "strategy".into(),
                format!("\"{}\"", json::escape(self.strategy.name())),
            ),
            ("seed".into(), self.seed.to_string()),
            ("nodes".into(), self.nodes.to_string()),
            ("edges".into(), self.edges.to_string()),
            ("attack_threshold".into(), threshold),
            ("curve_stride".into(), stride.to_string()),
            ("curve".into(), json::array(curve)),
            (
                "checkpoints".into(),
                json::array(self.checkpoints.iter().map(|c| {
                    json::object([
                        ("fraction".into(), json::number(c.fraction)),
                        ("removed".into(), c.removed.to_string()),
                        ("gcc_nodes".into(), c.gcc_nodes.to_string()),
                        ("gcc_fraction".into(), json::number(c.gcc_fraction)),
                        ("components".into(), c.components.to_string()),
                        (
                            "avg_distance".into(),
                            c.avg_distance_estimate
                                .map_or_else(|| "null".to_string(), json::number),
                        ),
                        (
                            "hub".into(),
                            c.hub.map_or_else(|| "null".to_string(), |h| h.to_string()),
                        ),
                    ])
                })),
            ),
        ])
    }

    fn curve_point(&self, removed: usize) -> String {
        json::array([
            removed.to_string(),
            json::number(self.gcc_fraction_at(removed)),
            self.component_counts[removed].to_string(),
        ])
    }
}

/// Interpolated removal fraction where `gcc_sizes[i]/n` first drops
/// below `level` — the shared backend of [`AttackReport::threshold`]
/// and the registry metrics.
pub fn threshold_from_sizes(gcc_sizes: &[u32], n: usize, level: f64) -> Option<f64> {
    if n == 0 || !(level > 0.0 && level <= 1.0) {
        return None;
    }
    let frac = |i: usize| gcc_sizes[i] as f64 / n as f64;
    if frac(0) < level {
        return Some(0.0);
    }
    for i in 1..=n {
        let (prev, cur) = (frac(i - 1), frac(i));
        if cur < level {
            // crossing inside (i-1, i]: linear interpolation in
            // removal-count space, then normalized to a fraction
            let t = (prev - level) / (prev - cur);
            return Some(((i - 1) as f64 + t) / n as f64);
        }
    }
    // level in (0, 1] and gcc_sizes[n] == 0 < level: unreachable unless
    // the trajectory is malformed; report "never crossed" honestly
    None
}

/// Removal order for `strategy` over the snapshot. `samples`/`threads`
/// budget the sampled betweenness ranking (ignored by the others);
/// `seed` drives [`Strategy::Random`].
pub fn removal_order(
    csr: &CsrGraph,
    strategy: Strategy,
    seed: u64,
    samples: usize,
    threads: usize,
) -> Vec<NodeId> {
    let n = csr.node_count();
    match strategy {
        Strategy::Random => {
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            order
        }
        Strategy::Degree => {
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            order.sort_by(|&a, &b| csr.degree(b).cmp(&csr.degree(a)).then_with(|| a.cmp(&b)));
            order
        }
        Strategy::Betweenness => {
            let ranked = sampled::sampled_traversal_csr(csr, samples.max(1), threads);
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            order.sort_by(|&a, &b| {
                ranked.betweenness[b as usize]
                    .total_cmp(&ranked.betweenness[a as usize])
                    .then_with(|| a.cmp(&b))
            });
            order
        }
        Strategy::DegreeAdaptive => degree_adaptive_order(csr),
    }
}

/// Adaptive highest-degree-first order with the exact smallest-id
/// tie-break, via a bucket queue of lazy min-heaps (stale entries are
/// skipped when popped; each degree decrement pushes one entry, so the
/// total is `O((n + m) log n)`).
fn degree_adaptive_order(csr: &CsrGraph) -> Vec<NodeId> {
    let n = csr.node_count();
    let mut deg: Vec<u32> = (0..n).map(|u| csr.degree(u as NodeId) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<BinaryHeap<Reverse<NodeId>>> = vec![BinaryHeap::new(); max_deg + 1];
    for (u, &d) in deg.iter().enumerate() {
        buckets[d as usize].push(Reverse(u as NodeId));
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = max_deg;
    while order.len() < n {
        match buckets[cur].pop() {
            Some(Reverse(u)) => {
                if !alive[u as usize] || deg[u as usize] as usize != cur {
                    continue; // stale entry: already removed or moved down
                }
                alive[u as usize] = false;
                order.push(u);
                for &v in csr.neighbors(u) {
                    if alive[v as usize] {
                        deg[v as usize] -= 1;
                        buckets[deg[v as usize] as usize].push(Reverse(v));
                    }
                }
                // decrements only push below `cur`, so the current
                // bucket stays the global maximum until it drains
            }
            None => {
                debug_assert!(cur > 0, "nodes remain but every bucket is empty");
                cur -= 1;
            }
        }
    }
    order
}

/// GCC-size and component-count trajectories of a removal order, via
/// the reverse union-find sweep (see the [module docs](self)).
///
/// Returns `(gcc_sizes, component_counts)`, each of length
/// `order.len() + 1`, indexed by nodes removed.
///
/// # Panics
/// Panics if `order` is not a permutation of the graph's node ids.
pub fn gcc_trajectory<V: AdjacencyView + ?Sized>(g: &V, order: &[NodeId]) -> (Vec<u32>, Vec<u32>) {
    let (sizes, counts, _) = sweep_with_snapshots(g, order, &[]);
    (sizes, counts)
}

/// Giant-component member sets keyed by removal count.
type Snapshots = Vec<(usize, Vec<NodeId>)>;

/// The reverse sweep, optionally extracting the giant component's
/// member set at the given removal counts (`wanted` ascending, deduped
/// by the caller). Members come back in ascending node id; the giant
/// root on ties is the component containing the smallest node id.
fn sweep_with_snapshots<V: AdjacencyView + ?Sized>(
    g: &V,
    order: &[NodeId],
    wanted: &[usize],
) -> (Vec<u32>, Vec<u32>, Snapshots) {
    let n = g.node_count();
    assert_eq!(order.len(), n, "removal order must cover every node");
    let mut seen = vec![false; n];
    for &u in order {
        assert!(
            !std::mem::replace(&mut seen[u as usize], true),
            "removal order must be a permutation (node {u} repeats)"
        );
    }
    let mut uf = UnionFind::new(n);
    let mut alive = vec![false; n];
    let mut gcc_sizes = vec![0u32; n + 1];
    let mut component_counts = vec![0u32; n + 1];
    let mut snapshots = Vec::with_capacity(wanted.len());
    // `wanted` ascending; the sweep meets removal counts descending
    let mut next_wanted = wanted.len();
    let take = |removed: usize, uf: &mut UnionFind, alive: &[bool], snapshots: &mut Snapshots| {
        snapshots.push((removed, giant_members(uf, alive)));
    };
    if next_wanted > 0 && wanted[next_wanted - 1] == n {
        next_wanted -= 1;
        take(n, &mut uf, &alive, &mut snapshots);
    }
    let mut largest = 0u32;
    let mut components = 0u32;
    for i in (0..n).rev() {
        let u = order[i];
        alive[u as usize] = true;
        components += 1;
        largest = largest.max(1);
        for &v in g.neighbors(u) {
            // ascending node-id order (sorted adjacency): the fixed
            // merge order of the reverse-sweep invariant
            if alive[v as usize] && uf.union(u, v) {
                components -= 1;
                largest = largest.max(uf.size_of(u));
            }
        }
        gcc_sizes[i] = largest;
        component_counts[i] = components;
        while next_wanted > 0 && wanted[next_wanted - 1] == i {
            next_wanted -= 1;
            take(i, &mut uf, &alive, &mut snapshots);
        }
    }
    snapshots.reverse(); // ascending removal count
    (gcc_sizes, component_counts, snapshots)
}

/// Members (ascending ids) of the giant component among live nodes;
/// size ties break toward the component containing the smallest id.
fn giant_members(uf: &mut UnionFind, alive: &[bool]) -> Vec<NodeId> {
    let mut best: Option<(u32, NodeId)> = None; // (size, min id) of winner
    for (u, &live) in alive.iter().enumerate() {
        if !live {
            continue;
        }
        let u = u as NodeId;
        let (size, min) = (uf.size_of(u), uf.min_of(u));
        let better = match best {
            None => true,
            Some((bs, bm)) => size > bs || (size == bs && min < bm),
        };
        if better {
            best = Some((size, min));
        }
    }
    let Some((_, winner_min)) = best else {
        return Vec::new();
    };
    (0..alive.len() as NodeId)
        .filter(|&u| alive[u as usize] && uf.min_of(u) == winner_min)
        .collect()
}

/// Runs a full attack sweep: removal order from the strategy, reverse
/// union-find trajectory, and distance checkpoints on residual-GCC
/// subgraph snapshots. `g` and `csr` must describe the same graph
/// (the cache's analyzed graph and its frozen snapshot);
/// `samples`/`threads` budget the sampled passes.
pub fn attack_sweep(
    g: &Graph,
    csr: &CsrGraph,
    opts: &AttackOptions,
    samples: usize,
    threads: usize,
) -> AttackReport {
    let n = csr.node_count();
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let order = removal_order(csr, opts.strategy, opts.seed, samples, threads);
    // requested fractions → removal counts (⌊f·n⌋, clamped), ascending
    let mut requested: Vec<(f64, usize)> = opts
        .checkpoints
        .iter()
        .filter(|f| f.is_finite())
        .map(|&f| {
            let clamped = f.clamp(0.0, 1.0);
            (clamped, ((clamped * n as f64).floor() as usize).min(n))
        })
        .collect();
    requested.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.total_cmp(&b.0)));
    requested.dedup();
    let mut wanted: Vec<usize> = requested.iter().map(|&(_, r)| r).collect();
    wanted.dedup();
    let (gcc_sizes, component_counts, snapshots) = sweep_with_snapshots(csr, &order, &wanted);
    let checkpoints = requested
        .iter()
        .map(|&(fraction, removed)| {
            let members = &snapshots
                .iter()
                .find(|&&(r, _)| r == removed)
                .expect("every requested removal count was snapshot")
                .1;
            checkpoint_at(
                g,
                fraction,
                removed,
                members,
                &component_counts,
                samples,
                threads,
            )
        })
        .collect();
    AttackReport {
        strategy: opts.strategy,
        seed: opts.seed,
        nodes: n,
        edges: csr.edge_count(),
        order,
        gcc_sizes,
        component_counts,
        checkpoints,
    }
}

/// Distance probe over one residual-GCC member set.
fn checkpoint_at(
    g: &Graph,
    fraction: f64,
    removed: usize,
    members: &[NodeId],
    component_counts: &[u32],
    samples: usize,
    threads: usize,
) -> Checkpoint {
    let n = g.node_count();
    let gcc_fraction = if n == 0 {
        1.0
    } else {
        members.len() as f64 / n as f64
    };
    let (avg_distance_estimate, hub) = if members.is_empty() {
        (None, None)
    } else {
        let (sub, map) = g
            .subgraph_mapped(members)
            .expect("GCC members are valid, unique node ids");
        // report the residual hub by ORIGINAL node id — the inverse
        // permutation keeps checkpoint output keyed to the input graph
        let degrees = sub.degrees();
        let hub_new = (0..sub.node_count() as NodeId)
            .max_by(|&a, &b| {
                degrees[a as usize]
                    .cmp(&degrees[b as usize])
                    .then(b.cmp(&a))
            })
            .expect("non-empty residual GCC");
        let hub = Some(map.to_old(hub_new));
        let avg = (members.len() >= 2).then(|| {
            let sub_csr = CsrGraph::from_graph(&sub);
            sampled::sampled_traversal_csr(&sub_csr, samples.max(1), threads)
                .distances
                .mean()
        });
        (avg, hub)
    };
    Checkpoint {
        fraction,
        removed,
        gcc_nodes: members.len(),
        gcc_fraction,
        components: component_counts[removed] as usize,
        avg_distance_estimate,
        hub,
    }
}

/// Attack sweep over a prepared [`AnalysisCache`]: reuses the cached
/// CSR snapshot and the cache's sampling/threading budgets — the
/// [`Analyzer::attack`](crate::analyzer::Analyzer::attack) backend.
pub fn attack_sweep_cached(cx: &AnalysisCache<'_>, opts: &AttackOptions) -> AttackReport {
    attack_sweep(
        cx.graph(),
        cx.csr().as_ref(),
        opts,
        cx.samples_budget(),
        cx.worker_threads(),
    )
}

/// `attack_threshold` registry metric: interpolated removal fraction
/// where the GCC halves under the degree-ranked attack order.
pub(crate) fn attack_threshold_metric(cx: &AnalysisCache<'_>) -> MetricValue {
    let csr = cx.csr();
    let n = csr.node_count();
    if n == 0 {
        return MetricValue::Undefined;
    }
    let order = removal_order(csr.as_ref(), Strategy::Degree, DEFAULT_ATTACK_SEED, 1, 1);
    let (sizes, _) = gcc_trajectory(csr.as_ref(), &order);
    threshold_from_sizes(&sizes, n, 0.5).map_or(MetricValue::Undefined, MetricValue::Scalar)
}

/// `random_failure_threshold` registry metric: mean interpolated
/// halving fraction over [`FAILURE_REPLICAS`] fixed-seed uniform
/// failure orders.
pub(crate) fn random_failure_threshold_metric(cx: &AnalysisCache<'_>) -> MetricValue {
    let csr = cx.csr();
    let n = csr.node_count();
    if n == 0 {
        return MetricValue::Undefined;
    }
    let mut total = 0.0f64;
    let mut defined = 0usize;
    for replica in 0..FAILURE_REPLICAS {
        let seed = DEFAULT_ATTACK_SEED.wrapping_add(replica);
        let order = removal_order(csr.as_ref(), Strategy::Random, seed, 1, 1);
        let (sizes, _) = gcc_trajectory(csr.as_ref(), &order);
        if let Some(t) = threshold_from_sizes(&sizes, n, 0.5) {
            total += t; // serial fold in fixed replica order
            defined += 1;
        }
    }
    if defined == 0 {
        MetricValue::Undefined
    } else {
        MetricValue::Scalar(total / defined as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;
    use dk_graph::traversal;

    fn csr(g: &Graph) -> CsrGraph {
        CsrGraph::from_graph(g)
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::all() {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.name());
            assert!(!s.description().is_empty());
        }
        assert_eq!(
            "adaptive".parse::<Strategy>().unwrap(),
            Strategy::DegreeAdaptive
        );
        let err = "bogus".parse::<Strategy>().unwrap_err();
        assert!(err.contains("degree-adaptive"), "{err}");
    }

    #[test]
    fn star_collapses_at_step_one_under_degree_attack() {
        // S4: center 0 with leaves 1..=4
        let g = builders::star(4);
        let c = csr(&g);
        let order = removal_order(&c, Strategy::Degree, 0, 1, 1);
        assert_eq!(order[0], 0, "center removed first");
        let (sizes, counts) = gcc_trajectory(&c, &order);
        assert_eq!(sizes, vec![5, 1, 1, 1, 1, 0]);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 4, "removing the hub isolates every leaf");
        // f crosses 1/2 between 0 and 1 removals: 1.0 → 0.2
        let t = threshold_from_sizes(&sizes, 5, 0.5).unwrap();
        assert!((t - 0.125).abs() < 1e-12, "{t}");
    }

    #[test]
    fn complete_graph_decays_one_by_one() {
        let g = builders::complete(5);
        let c = csr(&g);
        for strategy in Strategy::all() {
            let order = removal_order(&c, strategy, 3, 2, 1);
            let (sizes, counts) = gcc_trajectory(&c, &order);
            assert_eq!(sizes, vec![5, 4, 3, 2, 1, 0], "{strategy}");
            assert_eq!(counts, vec![1, 1, 1, 1, 1, 0], "{strategy}");
        }
    }

    #[test]
    fn path_degree_attack_trajectory() {
        // P4 0-1-2-3: degree order [1, 2, 0, 3]
        let g = builders::path(4);
        let c = csr(&g);
        let order = removal_order(&c, Strategy::Degree, 0, 1, 1);
        assert_eq!(order, vec![1, 2, 0, 3]);
        let (sizes, counts) = gcc_trajectory(&c, &order);
        assert_eq!(sizes, vec![4, 2, 1, 1, 0]);
        assert_eq!(counts, vec![1, 2, 2, 1, 0]);
    }

    #[test]
    fn random_order_is_a_seeded_permutation() {
        let g = builders::cycle(12);
        let c = csr(&g);
        let a = removal_order(&c, Strategy::Random, 9, 1, 1);
        let b = removal_order(&c, Strategy::Random, 9, 1, 1);
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, removal_order(&c, Strategy::Random, 10, 1, 1));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn degree_adaptive_rebalances_after_removals() {
        // hub 0 joined to a long path: static degree order would pick
        // path interiors by id; adaptive must follow the decremented
        // degrees. Graph: star center 0 (leaves 1..=3) + path 4-5-6-7
        // attached at 3.
        let g =
            Graph::from_edges(8, [(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (5, 6), (6, 7)]).unwrap();
        let c = csr(&g);
        let order = removal_order(&c, Strategy::DegreeAdaptive, 0, 1, 1);
        // degrees: 0:3, 3:2, 4:2, 5:2, 6:2, 1:1, 2:1, 7:1 → 0 first;
        // removing 0 drops 3 to degree 1, so the deg-2 tie {4,5,6}
        // resolves to 4 (a static degree rank would have picked 3);
        // removing 4 drops 5 to 1, so 6 goes next.
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 4);
        assert_eq!(order[2], 6);
        let oracle: Vec<u32> = (0..=8)
            .map(|i| {
                let keep: Vec<NodeId> = (0..8).filter(|u| !order[..i].contains(u)).collect();
                let (sub, _) = g.subgraph(&keep).unwrap();
                if sub.node_count() == 0 {
                    0
                } else {
                    traversal::component_sizes(&sub).into_iter().max().unwrap() as u32
                }
            })
            .collect();
        assert_eq!(gcc_trajectory(&c, &order).0, oracle);
    }

    #[test]
    fn betweenness_order_targets_the_bridge() {
        // two triangles joined by a bridge node 3: highest betweenness
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 4),
            ],
        )
        .unwrap();
        let c = csr(&g);
        // exact betweenness: samples >= n
        let order = removal_order(&c, Strategy::Betweenness, 0, 16, 1);
        assert_eq!(order[0], 3, "bridge first: {order:?}");
    }

    #[test]
    fn checkpoints_report_original_ids_and_distances() {
        let g = builders::path(10);
        let c = csr(&g);
        let opts = AttackOptions {
            strategy: Strategy::Degree,
            checkpoints: vec![0.0, 0.2, 1.0],
            ..Default::default()
        };
        let rep = attack_sweep(&g, &c, &opts, 64, 1);
        assert_eq!(rep.checkpoints.len(), 3);
        let intact = &rep.checkpoints[0];
        assert_eq!((intact.removed, intact.gcc_nodes), (0, 10));
        // samples >= n: the sampled mean equals the exact P10 mean
        let exact = crate::distance::DistanceDistribution::from_graph_with_threads(&g, 1).mean();
        assert!((intact.avg_distance_estimate.unwrap() - exact).abs() < 1e-9);
        let emptied = &rep.checkpoints[2];
        assert_eq!((emptied.removed, emptied.gcc_nodes), (10, 0));
        assert_eq!(emptied.avg_distance_estimate, None);
        assert_eq!(emptied.hub, None);
        // hub is keyed by the original node id even after renumbering
        assert!(intact.hub.is_some());
    }

    #[test]
    fn snapshot_tie_breaks_toward_smallest_node_id() {
        // two triangles {0,2,4} and {1,3,5}; remove nothing: the giant
        // member snapshot must pick the component containing node 0,
        // matching giant_component_nodes
        let g = Graph::from_edges(6, [(1, 3), (3, 5), (5, 1), (0, 2), (2, 4), (4, 0)]).unwrap();
        let c = csr(&g);
        let opts = AttackOptions {
            strategy: Strategy::Random,
            checkpoints: vec![0.0],
            ..Default::default()
        };
        let rep = attack_sweep(&g, &c, &opts, 1, 1);
        assert_eq!(rep.checkpoints[0].gcc_nodes, 3);
        assert_eq!(
            rep.checkpoints[0].hub,
            Some(0),
            "members must be {{0,2,4}}: {:?}",
            rep.checkpoints
        );
        assert_eq!(traversal::giant_component_nodes(&c), vec![0, 2, 4]);
    }

    #[test]
    fn threshold_interpolates() {
        // sizes 10,10,4,... over n=10: crossing between 1 and 2 at
        // t = (1.0-0.5)/(1.0-0.4) = 5/6 → fraction (1 + 5/6)/10
        let sizes = [10, 10, 4, 3, 2, 1, 1, 1, 1, 1, 0];
        let t = threshold_from_sizes(&sizes, 10, 0.5).unwrap();
        assert!((t - (1.0 + 5.0 / 6.0) / 10.0).abs() < 1e-12, "{t}");
        assert_eq!(threshold_from_sizes(&[0], 0, 0.5), None);
        assert_eq!(threshold_from_sizes(&sizes, 10, 0.0), None);
        // already below the level at zero removals
        assert_eq!(threshold_from_sizes(&[4, 0], 10, 0.5), Some(0.0));
    }

    #[test]
    fn report_json_shape() {
        let g = builders::karate_club();
        let c = csr(&g);
        let opts = AttackOptions {
            strategy: Strategy::DegreeAdaptive,
            checkpoints: vec![0.25],
            ..Default::default()
        };
        let rep = attack_sweep(&g, &c, &opts, 8, 1);
        let js = rep.to_json();
        assert!(js.contains("\"strategy\":\"degree-adaptive\""), "{js}");
        assert!(js.contains("\"attack_threshold\":"), "{js}");
        assert!(js.contains("\"curve\":[[0,1"), "{js}");
        assert!(js.contains("\"checkpoints\":[{\"fraction\":0.25"), "{js}");
        // last curve point is the fully removed state
        assert!(js.contains(&format!("[{},0,0]]", g.node_count())), "{js}");
    }

    #[test]
    fn registry_metric_backends_match_engine() {
        let g = builders::karate_club();
        let cx = AnalysisCache::bare(&g, &crate::cache::AnalyzeOptions::default());
        let MetricValue::Scalar(t) = attack_threshold_metric(&cx) else {
            panic!("defined on karate");
        };
        let c = csr(&g);
        let order = removal_order(&c, Strategy::Degree, DEFAULT_ATTACK_SEED, 1, 1);
        let (sizes, _) = gcc_trajectory(&c, &order);
        assert_eq!(Some(t), threshold_from_sizes(&sizes, 34, 0.5));
        let MetricValue::Scalar(r) = random_failure_threshold_metric(&cx) else {
            panic!("defined on karate");
        };
        assert!(r > t, "random failure is milder than targeted attack");
        assert!(r <= 1.0 && t > 0.0);
    }

    #[test]
    fn empty_graph_sweep() {
        let g = Graph::new();
        let c = csr(&g);
        let rep = attack_sweep(&g, &c, &AttackOptions::default(), 1, 1);
        assert_eq!(rep.gcc_sizes, vec![0]);
        assert_eq!(rep.threshold(0.5), None);
        assert_eq!(rep.gcc_fraction_at(0), 1.0);
    }
}

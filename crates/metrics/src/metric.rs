//! The [`Metric`] trait and its type-erased registry ([`AnyMetric`]).
//!
//! Mirrors the design of `dk_core::generate::Method` on the generation
//! side: one canonical name set, parsed and printed everywhere (CLI
//! `--metrics` flag, bench harness, JSON reports), with machine-checkable
//! capability metadata — here a [`Cost`] class and the shared
//! computations ([`Dep`]) a metric reads from the [`AnalysisCache`].
//!
//! ## The registry
//!
//! | name | kind | cost | paper notation |
//! |------|------|------|----------------|
//! | `n`, `m`, `gcc_fraction`, `k_avg` | scalar | trivial | `n`, `m`, —, `k̄` (§2) |
//! | `r` | scalar | linear | assortativity `r` (§2) |
//! | `c_mean`, `transitivity` | scalar | linear | `C̄` (§2) |
//! | `s`, `s2` | scalar | linear | likelihood `S`, `S2` (§4.3) |
//! | `kcore_max` | scalar | linear | — (beyond-paper check) |
//! | `attack_threshold`, `random_failure_threshold` | scalar | incremental | — (robustness study) |
//! | `d_avg`, `d_std`, `diameter` | scalar | all-pairs | `d̄`, `σ_d` (§2) |
//! | `b_max` | scalar | all-pairs | max normalized betweenness (§2) |
//! | `distance_approx` | scalar | sampled | `d̄` estimate (Brandes–Pich pivots) |
//! | `betweenness_approx` | scalar | sampled | `b_max` estimate (Brandes–Pich) |
//! | `avg_distance_sketch` | scalar | sketch | `d̄` estimate (HyperANF sketches) |
//! | `effective_diameter_sketch` | scalar | sketch | 90% effective diameter (HyperANF) |
//! | `lambda1`, `lambda_n` | scalar | spectral | `λ1`, `λ_{n−1}` (§2) |
//! | `degree_dist` | series | trivial | `P(k)` (§2) |
//! | `knn` | series | linear | `k_nn(k)` |
//! | `c_k` | series | linear | `C(k)` (§2) |
//! | `rich_club` | series | linear | — (beyond-paper check) |
//! | `d_x` | series | all-pairs | `d(x)` (§2) |
//! | `b_k` | series | all-pairs | `b̄(k)` (figs 6b, 9) |
//! | `distance_sketch` | series | sketch | `d(x)` estimate (HyperANF) |
//!
//! Metrics sharing a [`Dep`] are computed from one shared pass: `d_*` and
//! `b_*` both ride the fused all-source traversal
//! ([`crate::betweenness::betweenness_and_distances`]), the clustering
//! family shares one triangle census, and every traversal-shaped pass
//! (traversals, census, k-core peeling) runs over one frozen
//! [`CsrGraph`](dk_graph::CsrGraph) snapshot ([`Dep::Csr`]) built once
//! per analyzer run.
//!
//! ## Approximate (sampled) modes
//!
//! The `*_approx` metrics are explicit [`Cost::Sampled`] alternatives to
//! the `Cost::AllPairs` exact passes: K pivot sources (default 64, the
//! [`Analyzer::sample_sources`](crate::analyzer::Analyzer::sample_sources)
//! knob / CLI `--samples`) instead of all n, estimates extrapolated by
//! `n/K` (Brandes–Pich). Accuracy caveats: estimates are deterministic
//! (seeded pivot stride, thread-count invariant) but carry sampling
//! error of order `1/√K` — fine for ranking hubs and for `d̄`-style
//! means, **not** for reproduction tables, which must stay on the exact
//! metrics. `K ≥ n` makes them equal to the exact values bit for bit.
//!
//! ## Sketch (HyperANF) modes
//!
//! The `*_sketch` metrics ([`Cost::Sketch`], between [`Cost::Sampled`]
//! and [`Cost::AllPairs`]) estimate the **distance family** from
//! HyperLogLog neighborhood sketches ([`crate::sketch`], Boldi–Rosa–
//! Vigna HyperANF): `O(rounds)` sharded passes of bit-parallel register
//! unions instead of `n` BFS sweeps, with relative error governed by
//! the register count — standard error `1.04/√(2^b)` per counter
//! ([`crate::sketch::standard_error`]), `b` being the
//! [`Analyzer::sketch_bits`](crate::analyzer::Analyzer::sketch_bits)
//! knob / CLI `--sketch-bits` (default 8). Deterministic (node-id
//! seeded, no entropy) and invariant to shard/thread counts; memory is
//! the `n·2^b`-byte register file (×2 while a round runs). Where the
//! sampled estimators spend `O(K·m)` to cover betweenness *and*
//! distances with `~1/√K` error, the sketches spend a dozen or so
//! register-union passes to cover the distance family alone — the
//! better trade at 10⁶ nodes, where even `K = 64` pivot sweeps dwarf
//! the union rounds.
//!
//! ## Execution routes and memory bounds
//!
//! Each cost class maps to an execution route over the shared
//! [`CsrGraph`](dk_graph::CsrGraph) snapshot; the traversal-shaped
//! classes additionally pick between the in-memory and the **sharded
//! streaming** route of [`crate::stream`]:
//!
//! | cost | route | traversal working memory |
//! |------|-------|--------------------------|
//! | `trivial`, `linear` | single pass over the snapshot | O(n + m) |
//! | `sampled` | K pivots through the shard executor | in-memory O(shards·n); streamed **O(workers·n)** + 2·n/8-byte frontier bitmaps per worker |
//! | `sketch` | ≤ diameter rounds of register unions through the shard executor | **n·2^b bytes** per register file (×2 per round: Jacobi double buffer), error 1.04/√2^b |
//! | `incremental` | reverse union-find percolation sweep over the snapshot ([`crate::attack`]) | O(n) forest + trajectory |
//! | `all-pairs` | n sources through the shard executor | in-memory O(shards·n); streamed **O(workers·n)** + 2·n/8-byte frontier bitmaps per worker |
//! | `spectral` | Lanczos (dense below cutoff) | O(n) iteration vectors |
//!
//! The streamed route is auto-selected above
//! [`AUTO_STREAM_NODES`](crate::stream::AUTO_STREAM_NODES) analyzed
//! nodes and forced by `Analyzer::shards`/`Analyzer::memory_budget`
//! (CLI `--shards`/`--memory-budget`); per-source vectors are worker
//! scratch only, so per-worker buffers stay O(n) in total — the
//! [`stream::per_worker_bytes`](crate::stream::per_worker_bytes) model
//! charges `40n` bytes of Brandes scratch plus the two `n/8`-byte
//! direction-optimizing frontier bitmaps — and results are
//! bit-identical to the in-memory route at equal shard counts.

use crate::cache::AnalysisCache;
use crate::{betweenness, clustering, jdd, kcore, likelihood, richclub};
use std::fmt;
use std::str::FromStr;

/// Value of one metric on one graph.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A single number (most Table 2 columns).
    Scalar(f64),
    /// An integer-keyed `(x, y)` series (degree- or distance-indexed).
    Series(Vec<(usize, f64)>),
    /// The metric is not defined on this graph (e.g. spectral extremes
    /// of a graph with fewer than 2 nodes). Serialized as JSON `null`.
    Undefined,
}

impl MetricValue {
    /// The scalar payload, if any.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            MetricValue::Scalar(x) => Some(*x),
            _ => None,
        }
    }

    /// The series payload, if any.
    pub fn as_series(&self) -> Option<&[(usize, f64)]> {
        match self {
            MetricValue::Series(s) => Some(s),
            _ => None,
        }
    }
}

/// Output shape of a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// One number per graph.
    Scalar,
    /// An `(x, y)` series per graph.
    Series,
}

/// Asymptotic cost class, used for capability listings and for choosing
/// default metric sets (`cheap` excludes everything super-linear).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cost {
    /// O(n) or better — degree sums, counts.
    Trivial,
    /// O(m·log) — triangle census, edge scans.
    Linear,
    /// O(K·m) — K-pivot sampled traversal (Brandes–Pich), the explicit
    /// approximate alternative to [`Cost::AllPairs`]. Deterministic but
    /// carries ~`1/√K` sampling error; see the module docs.
    Sampled,
    /// O((n + m)·2^b·rounds) byte-ops — HyperANF neighborhood sketches
    /// ([`crate::sketch`]), the distance-family estimator whose error
    /// `1.04/√2^b` is set by the register count, not a pivot budget;
    /// see the module docs.
    Sketch,
    /// O(m·α(n)) per sweep — reverse incremental union-find percolation
    /// trajectories ([`crate::attack`]): the whole removal curve in one
    /// near-linear pass, exact (not an estimator) and bit-identical
    /// across thread counts; see the module docs' route table.
    Incremental,
    /// O(n·m) — all-source BFS (distances, betweenness). On large
    /// graphs runs via the sharded streaming route with O(workers·n)
    /// working memory; see the module docs' route table.
    AllPairs,
    /// Eigensolver (Jacobi / Lanczos).
    Spectral,
}

impl Cost {
    /// Canonical lowercase label.
    pub const fn name(self) -> &'static str {
        match self {
            Cost::Trivial => "trivial",
            Cost::Linear => "linear",
            Cost::Sampled => "sampled",
            Cost::Sketch => "sketch",
            Cost::Incremental => "incremental",
            Cost::AllPairs => "all-pairs",
            Cost::Spectral => "spectral",
        }
    }

    /// Whether this class is an *estimator* (sampled pivots or
    /// neighborhood sketches) rather than an exact computation. Estimator
    /// metrics are opt-in by name: no set keyword except `all` includes
    /// them, because reproduction batteries must not mix estimator noise
    /// with exact values.
    pub const fn is_estimator(self) -> bool {
        matches!(self, Cost::Sampled | Cost::Sketch)
    }
}

/// A shared computation a metric reads from the [`AnalysisCache`].
///
/// The analyzer unions the deps of every selected metric and computes
/// each shared pass **once**; metrics then read the cached result. When
/// both [`Dep::Distances`] and [`Dep::Betweenness`] are requested, one
/// fused all-source traversal serves both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dep {
    /// Frozen [`CsrGraph`](dk_graph::CsrGraph) snapshot of the analyzed
    /// graph — the flat-array adjacency every traversal-shaped pass
    /// reads. [`Dep::Triangles`], [`Dep::Distances`],
    /// [`Dep::Betweenness`], and [`Dep::Sampled`] all imply it, so the
    /// snapshot is built **once** and amortized across every selected
    /// metric; declare it directly for metrics that only need fast
    /// neighbor iteration (k-core peeling).
    Csr,
    /// Per-node triangle counts (clustering family).
    Triangles,
    /// Exact distance distribution (all-source BFS).
    Distances,
    /// Exact node betweenness (Brandes; subsumes [`Dep::Distances`]).
    Betweenness,
    /// Sampled K-pivot traversal (Brandes–Pich) — the `*_approx`
    /// metrics' shared pass.
    Sampled,
    /// Sampled K-pivot **distance histogram only** — the
    /// direction-optimizing BFS route ([`crate::sampled`]'s
    /// `sampled_distances_*` family). Declared by sampled metrics that
    /// never read σ/δ path counts, so a battery without a sampled
    /// *betweenness* metric skips the Brandes machinery entirely;
    /// subsumed by [`Dep::Sampled`] when one rides along (the fused
    /// pass's integer histogram is identical by construction).
    SampledDistances,
    /// HyperANF neighborhood-sketch iteration ([`crate::sketch`]) — the
    /// `*_sketch` metrics' shared pass (implies [`Dep::Csr`]).
    Sketch,
    /// Normalized-Laplacian spectral extremes.
    Spectral,
}

impl Dep {
    /// Whether this dep reads the shared CSR snapshot — the one place
    /// the "traversal-shaped passes run on CSR" relationship lives; the
    /// cache builds the snapshot iff any selected dep implies it.
    pub fn implies_csr(self) -> bool {
        !matches!(self, Dep::Spectral)
    }

    /// Whether this dep's pass runs **through the sharded traversal
    /// executor** ([`crate::stream`]) and therefore owes the
    /// streamed-vs-in-memory equivalence contract. The equivalence
    /// suites (`tests/stream_equivalence.rs`, the
    /// `proptests::streamed_analysis_equals_in_memory` property) derive
    /// their metric list from this predicate, so a future estimator dep
    /// added here is swept automatically — and one *not* added here is
    /// a metadata bug, not a silently skipped test.
    pub fn rides_shard_executor(self) -> bool {
        matches!(
            self,
            Dep::Distances | Dep::Betweenness | Dep::Sampled | Dep::SampledDistances | Dep::Sketch
        )
    }
}

/// A topology metric: name, capability metadata, and the computation
/// over the shared cache.
///
/// All built-in metrics are registered in [`AnyMetric::all`]; external
/// code normally consumes them through the type-erased [`AnyMetric`]
/// handle and the [`Analyzer`](crate::analyzer::Analyzer) facade.
pub trait Metric: Sync {
    /// Canonical lowercase name (the [`AnyMetric::from_str`] inverse).
    fn name(&self) -> &'static str;
    /// Accepted alternative spellings.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// One-line human description (capability listings).
    fn description(&self) -> &'static str;
    /// Scalar or series output.
    fn kind(&self) -> Kind;
    /// Asymptotic cost class.
    fn cost(&self) -> Cost;
    /// Shared computations read from the cache.
    fn deps(&self) -> &'static [Dep] {
        &[]
    }
    /// Computes the metric over a prepared cache.
    fn compute(&self, cx: &AnalysisCache<'_>) -> MetricValue;
}

/// Table-driven [`Metric`] implementation backing the registry.
struct Def {
    name: &'static str,
    aliases: &'static [&'static str],
    description: &'static str,
    kind: Kind,
    cost: Cost,
    deps: &'static [Dep],
    compute: fn(&AnalysisCache<'_>) -> MetricValue,
}

impl Metric for Def {
    fn name(&self) -> &'static str {
        self.name
    }
    fn aliases(&self) -> &'static [&'static str] {
        self.aliases
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn kind(&self) -> Kind {
        self.kind
    }
    fn cost(&self) -> Cost {
        self.cost
    }
    fn deps(&self) -> &'static [Dep] {
        self.deps
    }
    fn compute(&self, cx: &AnalysisCache<'_>) -> MetricValue {
        (self.compute)(cx)
    }
}

fn scalar(x: f64) -> MetricValue {
    MetricValue::Scalar(x)
}

static REGISTRY: &[Def] = &[
    Def {
        name: "n",
        aliases: &["nodes"],
        description: "node count of the analyzed graph (GCC by default)",
        kind: Kind::Scalar,
        cost: Cost::Trivial,
        deps: &[],
        compute: |cx| scalar(cx.graph().node_count() as f64),
    },
    Def {
        name: "m",
        aliases: &["edges"],
        description: "edge count of the analyzed graph",
        kind: Kind::Scalar,
        cost: Cost::Trivial,
        deps: &[],
        compute: |cx| scalar(cx.graph().edge_count() as f64),
    },
    Def {
        name: "gcc_fraction",
        aliases: &[],
        description: "fraction of the original nodes retained by the GCC (§5.2)",
        kind: Kind::Scalar,
        cost: Cost::Trivial,
        deps: &[],
        compute: |cx| scalar(cx.gcc_fraction()),
    },
    Def {
        name: "k_avg",
        aliases: &["avg_degree"],
        description: "average degree k̄ (§2)",
        kind: Kind::Scalar,
        cost: Cost::Trivial,
        deps: &[],
        compute: |cx| scalar(cx.graph().avg_degree()),
    },
    Def {
        name: "r",
        aliases: &["assortativity"],
        description: "Newman assortativity coefficient r (§2)",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[],
        compute: |cx| scalar(jdd::assortativity(cx.graph())),
    },
    Def {
        name: "c_mean",
        aliases: &["mean_clustering"],
        description: "mean clustering C̄ over degree-≥2 nodes (§2)",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[Dep::Triangles],
        compute: |cx| {
            scalar(clustering::mean_clustering_from(
                cx.graph(),
                &cx.triangles(),
            ))
        },
    },
    Def {
        name: "transitivity",
        aliases: &[],
        description: "global transitivity 3·triangles/wedges",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[Dep::Triangles],
        compute: |cx| scalar(clustering::transitivity_from(cx.graph(), &cx.triangles())),
    },
    Def {
        name: "s",
        aliases: &["likelihood"],
        description: "likelihood S = Σ_(i,j)∈E k_i·k_j (§2)",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[],
        compute: |cx| scalar(likelihood::likelihood_s(cx.graph())),
    },
    Def {
        name: "s2",
        aliases: &["likelihood_s2"],
        description: "second-order likelihood S2 over induced wedges (§4.3)",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[],
        compute: |cx| scalar(likelihood::likelihood_s2(cx.graph())),
    },
    Def {
        name: "kcore_max",
        aliases: &["degeneracy"],
        description: "graph degeneracy (maximum k-core index)",
        kind: Kind::Scalar,
        cost: Cost::Linear,
        deps: &[Dep::Csr],
        compute: |cx| scalar(kcore::degeneracy(cx.csr().as_ref()) as f64),
    },
    Def {
        name: "d_avg",
        aliases: &["avg_distance"],
        description: "average distance d̄ over connected pairs (§2)",
        kind: Kind::Scalar,
        cost: Cost::AllPairs,
        deps: &[Dep::Distances],
        compute: |cx| {
            if cx.graph().node_count() <= 1 {
                MetricValue::Undefined
            } else {
                scalar(cx.distances().mean())
            }
        },
    },
    Def {
        name: "d_std",
        aliases: &["distance_std"],
        description: "distance standard deviation σ_d (§2)",
        kind: Kind::Scalar,
        cost: Cost::AllPairs,
        deps: &[Dep::Distances],
        compute: |cx| {
            if cx.graph().node_count() <= 1 {
                MetricValue::Undefined
            } else {
                scalar(cx.distances().std_dev())
            }
        },
    },
    Def {
        name: "diameter",
        aliases: &[],
        description: "longest finite shortest-path distance",
        kind: Kind::Scalar,
        cost: Cost::AllPairs,
        deps: &[Dep::Distances],
        compute: |cx| {
            if cx.graph().node_count() == 0 {
                MetricValue::Undefined
            } else {
                scalar(cx.distances().diameter() as f64)
            }
        },
    },
    Def {
        name: "b_max",
        aliases: &["max_betweenness"],
        description: "maximum normalized node betweenness (§2)",
        kind: Kind::Scalar,
        cost: Cost::AllPairs,
        deps: &[Dep::Betweenness],
        compute: |cx| {
            if cx.graph().node_count() < 3 {
                return MetricValue::Undefined;
            }
            cx.betweenness()
                .iter()
                .copied()
                .max_by(|a, b| a.partial_cmp(b).expect("finite betweenness"))
                .map_or(MetricValue::Undefined, scalar)
        },
    },
    Def {
        name: "distance_approx",
        aliases: &["d_avg_approx"],
        description: "sampled estimate of d̄ (K pivot sources, Brandes–Pich)",
        kind: Kind::Scalar,
        cost: Cost::Sampled,
        deps: &[Dep::SampledDistances],
        compute: |cx| {
            if cx.graph().node_count() <= 1 {
                MetricValue::Undefined
            } else {
                scalar(cx.sampled_distances().distances.mean())
            }
        },
    },
    Def {
        name: "betweenness_approx",
        aliases: &["b_max_approx"],
        description: "sampled estimate of max normalized betweenness",
        kind: Kind::Scalar,
        cost: Cost::Sampled,
        deps: &[Dep::Sampled],
        compute: |cx| {
            if cx.graph().node_count() < 3 {
                return MetricValue::Undefined;
            }
            let sampled = cx.sampled();
            betweenness::normalize_raw(sampled.betweenness.clone(), cx.graph().node_count())
                .into_iter()
                .max_by(|a, b| a.partial_cmp(b).expect("finite betweenness"))
                .map_or(MetricValue::Undefined, scalar)
        },
    },
    Def {
        name: "avg_distance_sketch",
        aliases: &["d_avg_sketch"],
        description: "sketch estimate of d̄ (HyperANF neighborhood function)",
        kind: Kind::Scalar,
        cost: Cost::Sketch,
        deps: &[Dep::Sketch],
        compute: |cx| {
            // a round-capped (non-converged) iteration only covers
            // distances up to the cap — report Undefined rather than a
            // silently truncated mean (raise Analyzer::sketch_rounds)
            let sketch = cx.sketch();
            if cx.graph().node_count() <= 1 || !sketch.converged {
                MetricValue::Undefined
            } else {
                scalar(sketch.avg_distance())
            }
        },
    },
    Def {
        name: "effective_diameter_sketch",
        aliases: &["eff_diameter_sketch"],
        description: "sketch estimate of the 90% effective diameter (HyperANF)",
        kind: Kind::Scalar,
        cost: Cost::Sketch,
        deps: &[Dep::Sketch],
        compute: |cx| {
            let sketch = cx.sketch();
            if cx.graph().node_count() == 0 || !sketch.converged {
                MetricValue::Undefined
            } else {
                scalar(sketch.effective_diameter(0.9))
            }
        },
    },
    Def {
        name: "attack_threshold",
        aliases: &["degree_attack_threshold"],
        description: "removal fraction halving the GCC under the degree-ranked attack",
        kind: Kind::Scalar,
        cost: Cost::Incremental,
        deps: &[Dep::Csr],
        compute: crate::attack::attack_threshold_metric,
    },
    Def {
        name: "random_failure_threshold",
        aliases: &["failure_threshold"],
        description: "mean removal fraction halving the GCC under seeded uniform failure",
        kind: Kind::Scalar,
        cost: Cost::Incremental,
        deps: &[Dep::Csr],
        compute: crate::attack::random_failure_threshold_metric,
    },
    Def {
        name: "lambda1",
        aliases: &[],
        description: "smallest nonzero normalized-Laplacian eigenvalue λ1 (§2)",
        kind: Kind::Scalar,
        cost: Cost::Spectral,
        deps: &[Dep::Spectral],
        compute: |cx| {
            cx.spectral()
                .map_or(MetricValue::Undefined, |s| scalar(s.lambda1))
        },
    },
    Def {
        name: "lambda_n",
        aliases: &["lambda_max"],
        description: "largest normalized-Laplacian eigenvalue λ_{n−1} (§2)",
        kind: Kind::Scalar,
        cost: Cost::Spectral,
        deps: &[Dep::Spectral],
        compute: |cx| {
            cx.spectral()
                .map_or(MetricValue::Undefined, |s| scalar(s.lambda_max))
        },
    },
    Def {
        name: "degree_dist",
        aliases: &["pk"],
        description: "degree distribution P(k) over observed degrees (§2)",
        kind: Kind::Series,
        cost: Cost::Trivial,
        deps: &[],
        compute: |cx| {
            let dd = crate::degree::DegreeDistribution::from_graph(cx.graph());
            MetricValue::Series(
                dd.counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(k, &c)| (k, c as f64 / dd.nodes as f64))
                    .collect(),
            )
        },
    },
    Def {
        name: "knn",
        aliases: &["avg_neighbor_degree"],
        description: "average neighbor degree k_nn(k)",
        kind: Kind::Series,
        cost: Cost::Linear,
        deps: &[],
        compute: |cx| MetricValue::Series(jdd::avg_neighbor_degree(cx.graph())),
    },
    Def {
        name: "c_k",
        aliases: &["clustering_by_degree"],
        description: "degree-dependent clustering C(k) (§2)",
        kind: Kind::Series,
        cost: Cost::Linear,
        deps: &[Dep::Triangles],
        compute: |cx| {
            MetricValue::Series(clustering::clustering_by_degree_from(
                cx.graph(),
                &cx.triangles(),
            ))
        },
    },
    Def {
        name: "rich_club",
        aliases: &[],
        description: "rich-club connectivity φ(k)",
        kind: Kind::Series,
        cost: Cost::Linear,
        deps: &[],
        compute: |cx| MetricValue::Series(richclub::rich_club(cx.graph())),
    },
    Def {
        name: "d_x",
        aliases: &["distance_dist"],
        description: "distance distribution d(x) over positive distances (§2)",
        kind: Kind::Series,
        cost: Cost::AllPairs,
        deps: &[Dep::Distances],
        compute: |cx| {
            MetricValue::Series(
                cx.distances()
                    .pdf_positive()
                    .into_iter()
                    .enumerate()
                    .skip(1)
                    .collect(),
            )
        },
    },
    Def {
        name: "b_k",
        aliases: &["betweenness_by_degree"],
        description: "mean normalized betweenness of k-degree nodes (figs 6b, 9)",
        kind: Kind::Series,
        cost: Cost::AllPairs,
        deps: &[Dep::Betweenness],
        compute: |cx| {
            MetricValue::Series(betweenness::by_degree_from(cx.graph(), &cx.betweenness()))
        },
    },
    Def {
        name: "distance_sketch",
        aliases: &["d_x_sketch"],
        description: "sketch estimate of the distance distribution d(x) (HyperANF)",
        kind: Kind::Series,
        cost: Cost::Sketch,
        deps: &[Dep::Sketch],
        compute: |cx| {
            let sketch = cx.sketch();
            if sketch.converged {
                MetricValue::Series(sketch.distance_pdf())
            } else {
                // the PDF over a capped round range would be silently
                // renormalized over a truncated support — refuse instead
                MetricValue::Undefined
            }
        },
    },
];

/// Type-erased handle to a registered metric.
///
/// `Copy`, compared by canonical name, parsed with [`FromStr`], printed
/// with [`fmt::Display`] — the analysis-side mirror of
/// `dk_core::generate::Method`.
#[derive(Clone, Copy)]
pub struct AnyMetric(&'static dyn Metric);

impl AnyMetric {
    /// Every registered metric, in canonical (registry) order — scalars
    /// cheap-to-expensive, then series.
    pub fn all() -> impl Iterator<Item = AnyMetric> {
        REGISTRY.iter().map(|d| AnyMetric(d))
    }

    /// Looks a metric up by canonical name or alias.
    pub fn get(name: &str) -> Option<AnyMetric> {
        REGISTRY
            .iter()
            .find(|d| d.name == name || d.aliases.contains(&name))
            .map(|d| AnyMetric(d as &dyn Metric))
    }

    /// The paper's default scalar battery (Table 2 / Table 6 columns plus
    /// the bookkeeping scalars `n`, `m`, `gcc_fraction`, `s`, `s2`).
    /// Betweenness is excluded — as in the paper's tables — but is one
    /// `--metrics` selection away.
    pub fn default_set() -> Vec<AnyMetric> {
        [
            "n",
            "m",
            "gcc_fraction",
            "k_avg",
            "r",
            "c_mean",
            "d_avg",
            "d_std",
            "s",
            "s2",
            "lambda1",
            "lambda_n",
        ]
        .iter()
        .map(|n| AnyMetric::get(n).expect("registered"))
        .collect()
    }

    /// The sub-quadratic scalars — safe to recompute in tight loops
    /// (rewiring convergence probes, quick CLI summaries).
    pub fn cheap_set() -> Vec<AnyMetric> {
        ["n", "m", "gcc_fraction", "k_avg", "r", "c_mean", "s", "s2"]
            .iter()
            .map(|n| AnyMetric::get(n).expect("registered"))
            .collect()
    }

    /// Parses a comma-separated metric list. Each element is a metric
    /// name, an alias, or a set keyword: `default` (paper battery),
    /// `cheap` (sub-quadratic scalars), `scalars` (every *exact* scalar
    /// — the sampled and sketch estimators stay opt-in by name, as
    /// reproduction batteries must not mix estimator noise with exact
    /// values), `series` (every exact series), or `all` (everything,
    /// estimators included). Duplicates are removed, first occurrence
    /// wins.
    pub fn parse_list(list: &str) -> Result<Vec<AnyMetric>, String> {
        let mut out: Vec<AnyMetric> = Vec::new();
        let mut push = |m: AnyMetric| {
            if !out.contains(&m) {
                out.push(m);
            }
        };
        for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match item {
                "default" | "paper" => AnyMetric::default_set().into_iter().for_each(&mut push),
                "cheap" => AnyMetric::cheap_set().into_iter().for_each(&mut push),
                "all" => AnyMetric::all().for_each(&mut push),
                "scalars" => AnyMetric::all()
                    .filter(|m| m.kind() == Kind::Scalar && !m.cost().is_estimator())
                    .for_each(&mut push),
                "series" => AnyMetric::all()
                    .filter(|m| m.kind() == Kind::Series && !m.cost().is_estimator())
                    .for_each(&mut push),
                name => push(name.parse::<AnyMetric>()?),
            }
        }
        if out.is_empty() {
            return Err("empty metric list".into());
        }
        Ok(out)
    }

    /// One line per registered metric: name, kind, cost, description —
    /// the capability listing printed by `dk metrics --metrics help`.
    pub fn listing() -> String {
        let mut out = String::from("metric        kind    cost       description\n");
        for m in AnyMetric::all() {
            out.push_str(&format!(
                "{:<13} {:<7} {:<10} {}\n",
                m.name(),
                match m.kind() {
                    Kind::Scalar => "scalar",
                    Kind::Series => "series",
                },
                m.cost().name(),
                m.description(),
            ));
        }
        out.push_str(
            "sets: default (paper battery), cheap, scalars (exact only), \
             series (exact only), all\n",
        );
        out.push_str(
            "sampled metrics estimate their all-pairs twin from K pivot sources \
             (--samples, default 64): deterministic, ~1/sqrt(K) error, exact when \
             K >= n; select them by name — no set except `all` includes them\n",
        );
        out.push_str(
            "sketch metrics estimate the distance family from HyperANF \
             neighborhood sketches (--sketch-bits B in 4..=16, default 8): \
             deterministic, ~1.04/sqrt(2^B) error, n*2^B bytes of registers; \
             select them by name — no set except `all` includes them\n",
        );
        out.push_str(
            "incremental metrics replay a full node-removal sweep in reverse as \
             union-find insertions (one O(m*alpha) pass, exact and thread-count \
             invariant); `dk attack` exposes the full trajectory behind them\n",
        );
        out.push_str(
            "large graphs stream all-pairs/sampled passes shard by shard \
             (auto above 131072 nodes; --shards N and --memory-budget B opt in \
             and tune it): same results bit for bit, traversal memory bounded \
             by workers, not shards\n",
        );
        out
    }
}

impl std::ops::Deref for AnyMetric {
    type Target = dyn Metric;

    fn deref(&self) -> &Self::Target {
        self.0
    }
}

impl PartialEq for AnyMetric {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for AnyMetric {}

impl fmt::Debug for AnyMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnyMetric({})", self.name())
    }
}

impl fmt::Display for AnyMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AnyMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        AnyMetric::get(s).ok_or_else(|| {
            format!(
                "unknown metric {s:?} — known metrics: {}",
                REGISTRY
                    .iter()
                    .map(|d| d.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for m in AnyMetric::all() {
            assert!(seen.insert(m.name()), "duplicate name {}", m.name());
            assert_eq!(m.name().parse::<AnyMetric>().unwrap(), m);
            for a in m.aliases() {
                assert_eq!(a.parse::<AnyMetric>().unwrap(), m, "alias {a}");
                assert!(seen.insert(a), "alias {a} collides");
            }
            assert_eq!(format!("{m}"), m.name());
        }
    }

    #[test]
    fn unknown_name_lists_known_metrics() {
        let err = "bogus".parse::<AnyMetric>().unwrap_err();
        assert!(err.contains("k_avg"), "{err}");
    }

    #[test]
    fn parse_list_expands_sets_and_dedups() {
        let d = AnyMetric::parse_list("default").unwrap();
        assert_eq!(d, AnyMetric::default_set());
        let l = AnyMetric::parse_list("k_avg, r ,k_avg,b_max").unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[0].name(), "k_avg");
        assert_eq!(l[2].name(), "b_max");
        let all = AnyMetric::parse_list("all").unwrap();
        assert_eq!(all.len(), AnyMetric::all().count());
        // scalars + series covers everything EXCEPT the estimators
        // (sampled pivots, sketches), which only `all` (or naming them)
        // selects
        let both = AnyMetric::parse_list("scalars,series").unwrap();
        let estimator_count = AnyMetric::all().filter(|m| m.cost().is_estimator()).count();
        assert!(estimator_count >= 5, "sampled + sketch metrics registered");
        assert_eq!(both.len(), all.len() - estimator_count);
        assert!(both.iter().all(|m| !m.cost().is_estimator()));
        assert!(AnyMetric::parse_list("").is_err());
        assert!(AnyMetric::parse_list("k_avg,bogus").is_err());
    }

    #[test]
    fn cheap_set_is_sub_quadratic() {
        for m in AnyMetric::cheap_set() {
            assert!(m.cost() <= Cost::Linear, "{} too expensive", m.name());
        }
    }

    #[test]
    fn listing_mentions_every_metric() {
        let listing = AnyMetric::listing();
        for m in AnyMetric::all() {
            assert!(listing.contains(m.name()));
        }
    }
}

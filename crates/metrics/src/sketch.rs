//! HyperANF-style neighborhood sketches — the distance family at
//! 10⁶-node scale.
//!
//! The exact all-pairs battery is O(n·m) (hours at 10⁶ nodes on any
//! route — see [`crate::stream`]), and the Brandes–Pich estimator of
//! [`crate::sampled`] trades that for K pivot BFS trees with `~1/√K`
//! error. This module adds the complementary estimator of Boldi, Rosa &
//! Vigna ("HyperANF: approximating the neighbourhood function of very
//! large graphs on a budget", 2011; refined as HyperBall): give every
//! node a **HyperLogLog counter** seeded with its own id, then iterate
//!
//! ```text
//! sketch_{t}[v] = union(sketch_{t-1}[v], sketch_{t-1}[w] for w ~ v)
//! ```
//!
//! After round `t`, node `v`'s counter estimates `|B(v, t)|`, the number
//! of nodes within distance `t` of `v` — so the per-round sums
//!
//! ```text
//! N(t) = Σ_v |B(v, t)|      (the neighborhood function)
//! ```
//!
//! carry the whole distance family: `N(t) − N(t−1)` estimates the number
//! of ordered pairs at distance exactly `t`, which yields the distance
//! distribution, the average distance `d̄`, and the (effective) diameter
//! in `O(rounds)` sharded passes of bit-parallel register unions instead
//! of `n` BFS sweeps. Error is controlled by the **register count**
//! `m = 2^b` (per-counter standard error [`standard_error`]: `1.04/√m`),
//! not by a pivot budget — the knob the registry exposes as
//! `--sketch-bits` behind the `distance_sketch` / `avg_distance_sketch`
//! / `effective_diameter_sketch` metrics
//! ([`Cost::Sketch`](crate::metric::Cost::Sketch)).
//!
//! ## Determinism contract
//!
//! * Counters are seeded from the **node ids alone** ([`node_hash`], a
//!   SplitMix64 finalizer) — no wall clock, no entropy: two runs of the
//!   same graph are bit-identical.
//! * A round is a Jacobi-style double-buffered update: every new counter
//!   reads only the previous round's registers, so the result is a pure
//!   function of the input — **independent of shard count, thread
//!   count, and route** (the registers are `u8` max-merges, and the
//!   `N(t)` sums are accumulated in fixed node order).
//! * Rounds run as sharded passes over the frozen
//!   [`CsrGraph`] through the same streaming
//!   machinery as the exact traversals ([`crate::stream`] →
//!   [`dk_graph::ensemble::run_fold`]): in-flight partials are bounded
//!   by the worker count, and the memory budget / worker caps of the
//!   analyzer plan apply unchanged.
//!
//! ## Memory
//!
//! The register file is `n · 2^b` bytes; a round holds the previous and
//! the next file simultaneously (the Jacobi buffer the determinism
//! contract requires), so the pass peaks at `2 · n · 2^b` bytes plus
//! `O(workers · shard)` partial blocks — see [`sketch_bytes`].

use crate::stream::{run_sharded, run_sharded_fold};
use dk_graph::{CsrGraph, Relabeling};
use std::ops::Range;

/// Smallest supported register-bit count (`m = 16` registers).
pub const MIN_SKETCH_BITS: u32 = 4;
/// Largest supported register-bit count (`m = 65536` registers —
/// 64 KiB per node; past this the "sketch" stops being one).
pub const MAX_SKETCH_BITS: u32 = 16;
/// Default register-bit count: `m = 256` registers, ~6.5% per-counter
/// standard error, 256 bytes per node.
pub const DEFAULT_SKETCH_BITS: u32 = 8;
/// Default cap on HyperANF rounds. Iteration always stops as soon as the
/// registers reach their fixpoint (no counter changed — the sketch
/// analogue of BFS frontier exhaustion), so the cap only bites on graphs
/// whose diameter exceeds it.
pub const DEFAULT_SKETCH_ROUNDS: usize = 128;

/// The HyperLogLog per-counter relative standard error `1.04 / √(2^b)` —
/// the quantity every tolerance in `tests/sketch_tolerance.rs` derives
/// from (never a hand-tuned constant).
pub fn standard_error(bits: u32) -> f64 {
    1.04 / ((1u64 << bits) as f64).sqrt()
}

/// Bytes of one register file for `n` nodes at `bits` register bits —
/// the `n·2^b` footprint the cost table in [`crate::metric`] quotes. A
/// running round holds two (previous + next).
pub fn sketch_bytes(n: usize, bits: u32) -> u64 {
    n as u64 * (1u64 << bits)
}

/// SplitMix64 finalizer over a node id — the deterministic per-node
/// seeding of the sketches (a pure function of the id; no clock, no
/// entropy, so HyperANF runs are reproducible bit for bit).
pub fn node_hash(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// HyperLogLog bias-correction constant α_m (Flajolet et al. 2007).
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Register index and rank of one hashed item: the low `bits` bits pick
/// the register, the leading-zero run of the remaining `64 − bits` bits
/// (plus one) is the rank. Max rank `65 − bits` fits `u8` for every
/// supported `bits`.
#[inline]
fn index_and_rank(h: u64, bits: u32) -> (usize, u8) {
    let index = (h & ((1u64 << bits) - 1)) as usize;
    // the high `bits` bits of `h >> bits` are zero, so leading_zeros is
    // at least `bits`; an all-zero remainder saturates at rank 65 − bits
    let rank = (h >> bits).leading_zeros() + 1 - bits;
    (index, rank as u8)
}

/// HLL cardinality estimate of one register slice: the raw harmonic-mean
/// estimator with the standard small-range (linear-counting) correction,
/// so counters over-provisioned for their graph (`n < 2^b`) degrade
/// gracefully to near-exact counts instead of panicking or returning
/// NaN.
fn estimate_registers(regs: &[u8], bits: u32) -> f64 {
    let m = regs.len();
    debug_assert_eq!(m, 1usize << bits);
    let mut inv_sum = 0.0f64;
    let mut zeros = 0usize;
    for &r in regs {
        inv_sum += f64::from_bits((1023u64 - u64::from(r)) << 52); // 2^-r
        if r == 0 {
            zeros += 1;
        }
    }
    let mf = m as f64;
    let raw = alpha(m) * mf * mf / inv_sum;
    if raw <= 2.5 * mf && zeros > 0 {
        mf * (mf / zeros as f64).ln()
    } else {
        raw
    }
}

/// One HyperLogLog counter — `2^bits` dense `u8` registers.
///
/// [`NodeSketches`] flattens `n` of these into one register file; this
/// standalone form exists for the union-algebra property tests and for
/// callers estimating ad-hoc sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HllSketch {
    bits: u32,
    regs: Vec<u8>,
}

impl HllSketch {
    /// An empty counter with `2^bits` zero registers.
    ///
    /// # Panics
    /// Panics unless `bits` is within
    /// [`MIN_SKETCH_BITS`]`..=`[`MAX_SKETCH_BITS`].
    pub fn new(bits: u32) -> Self {
        assert!(
            (MIN_SKETCH_BITS..=MAX_SKETCH_BITS).contains(&bits),
            "sketch bits {bits} outside {MIN_SKETCH_BITS}..={MAX_SKETCH_BITS}"
        );
        HllSketch {
            bits,
            regs: vec![0u8; 1usize << bits],
        }
    }

    /// Register-bit count `b`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The raw registers (test hook for the union-algebra properties).
    pub fn registers(&self) -> &[u8] {
        &self.regs
    }

    /// Inserts an item by value ([`node_hash`]ed internally).
    pub fn insert(&mut self, item: u64) {
        let (index, rank) = index_and_rank(node_hash(item), self.bits);
        if self.regs[index] < rank {
            self.regs[index] = rank;
        }
    }

    /// Merges `other` into `self` — elementwise register max, the union
    /// of the underlying sets. Associative, commutative, idempotent
    /// (locked down by `proptests::sketch_union_is_a_semilattice`).
    ///
    /// # Panics
    /// Panics if the register-bit counts differ.
    pub fn union(&mut self, other: &HllSketch) {
        assert_eq!(self.bits, other.bits, "union of mismatched sketches");
        union_registers(&mut self.regs, &other.regs);
    }

    /// Estimated cardinality of the inserted/unioned set.
    pub fn estimate(&self) -> f64 {
        estimate_registers(&self.regs, self.bits)
    }
}

/// Byte-wise unsigned max of two `u64`s holding 8 packed `u8` registers
/// — the SWAR (SIMD-within-a-register) core of [`union_registers`], on
/// stable Rust with no `std::simd`. With `H` the per-byte high-bit
/// mask: the low-7-bit comparison `(x | H) − (y & !H)` can never borrow
/// across byte lanes (each lane computes `low7(x) + 128 − low7(y) ≥ 1`),
/// and its surviving high bit says `low7(x) ≥ low7(y)`; combining with
/// the high bits themselves gives a per-byte `x ≥ y` flag, widened to a
/// per-byte select mask by the `· 0xFF` carry-free multiply.
#[inline]
fn swar_max8(x: u64, y: u64) -> u64 {
    const H: u64 = 0x8080_8080_8080_8080;
    let xh = x & H;
    let yh = y & H;
    let low_ge = ((x | H).wrapping_sub(y & !H)) & H;
    let ge = (xh & !yh) | (!(xh ^ yh) & low_ge);
    let mask = (ge >> 7).wrapping_mul(0xFF);
    (x & mask) | (y & !mask)
}

/// Elementwise register max — the union kernel shared by [`HllSketch`]
/// and the HyperANF round. Registers are processed 8 at a time via
/// [`swar_max8`] (register files are `2^b ≥ 16` bytes, so the scalar
/// tail only runs for ad-hoc slices); equality with the scalar
/// byte-loop oracle on arbitrary register files is locked down by
/// `proptests::swar_union_matches_scalar_oracle`. Exposed for that
/// oracle; semantically it is exactly the per-byte
/// `if *d < *s { *d = *s }` loop.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn union_registers(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "union of mismatched register files");
    let mut dc = dst.chunks_exact_mut(8);
    let mut sc = src.chunks_exact(8);
    for (d, s) in (&mut dc).zip(&mut sc) {
        let x = u64::from_le_bytes(d.try_into().expect("8-byte chunk"));
        let y = u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&swar_max8(x, y).to_le_bytes());
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        if *d < *s {
            *d = *s;
        }
    }
}

/// The register file of one HyperANF iteration: `n` HLL counters of
/// `2^bits` `u8` registers each, flattened node-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSketches {
    bits: u32,
    nodes: usize,
    regs: Vec<u8>,
}

impl NodeSketches {
    /// Round-zero file: node `v`'s counter holds exactly `{v}` (seeded
    /// via [`node_hash`]).
    pub fn init(nodes: usize, bits: u32) -> Self {
        assert!(
            (MIN_SKETCH_BITS..=MAX_SKETCH_BITS).contains(&bits),
            "sketch bits {bits} outside {MIN_SKETCH_BITS}..={MAX_SKETCH_BITS}"
        );
        let m = 1usize << bits;
        let mut regs = vec![0u8; nodes * m];
        for v in 0..nodes {
            let (index, rank) = index_and_rank(node_hash(v as u64), bits);
            regs[v * m + index] = rank;
        }
        NodeSketches { bits, nodes, regs }
    }

    /// Round-zero file for a **relabeled** snapshot: internal node `v`
    /// is seeded from its *external* id `to_old[v]`, so the register
    /// contents — which are determined by the *set* of hashed external
    /// ids a ball contains, not by internal labels — are bitwise equal
    /// to the unpermuted route's after the permutation is inverted.
    /// Part of the [`dk_graph::csr`] permutation-inversion contract:
    /// hashing internal ids here would silently change every estimate.
    pub fn init_mapped(bits: u32, to_old: &[u32]) -> Self {
        assert!(
            (MIN_SKETCH_BITS..=MAX_SKETCH_BITS).contains(&bits),
            "sketch bits {bits} outside {MIN_SKETCH_BITS}..={MAX_SKETCH_BITS}"
        );
        let m = 1usize << bits;
        let nodes = to_old.len();
        let mut regs = vec![0u8; nodes * m];
        for (v, &old) in to_old.iter().enumerate() {
            let (index, rank) = index_and_rank(node_hash(u64::from(old)), bits);
            regs[v * m + index] = rank;
        }
        NodeSketches { bits, nodes, regs }
    }

    /// Node `v`'s register slice.
    #[inline]
    pub fn node(&self, v: u32) -> &[u8] {
        let m = 1usize << self.bits;
        &self.regs[v as usize * m..(v as usize + 1) * m]
    }

    /// Estimated `|B(v, t)|` for node `v` at this file's round.
    pub fn estimate_node(&self, v: u32) -> f64 {
        estimate_registers(self.node(v), self.bits)
    }

    /// `Σ_v |B(v, t)|` — the neighborhood-function point `N(t)`.
    /// Summed **sequentially in node order**, so the floating-point
    /// result is independent of shard and thread counts (the registers
    /// it reads already are: they are integer max-merges).
    pub fn sum_estimates(&self) -> f64 {
        (0..self.nodes as u32).map(|v| self.estimate_node(v)).sum()
    }

    /// As [`NodeSketches::sum_estimates`], over a relabeled file:
    /// summed in **external** node order (`to_new[old]` for
    /// `old = 0, 1, …`), so the floating-point sum adds the exact same
    /// terms in the exact same order as the unpermuted route — the
    /// second half of the permutation-inversion contract (seeding via
    /// [`NodeSketches::init_mapped`] is the first).
    pub fn sum_estimates_mapped(&self, to_new: &[u32]) -> f64 {
        to_new.iter().map(|&v| self.estimate_node(v)).sum()
    }
}

/// One shard's worth of a HyperANF round: for every node in `range`,
/// union the **previous** round's own counter with the previous
/// counters of its neighbors. Returns the shard's new register block
/// plus whether any register changed (the convergence reducer).
fn union_shard(g: &CsrGraph, prev: &NodeSketches, range: Range<u32>) -> (Vec<u8>, bool) {
    let m = 1usize << prev.bits;
    let mut block = Vec::with_capacity(range.len() * m);
    let mut changed = false;
    for v in range {
        let base = block.len();
        block.extend_from_slice(prev.node(v));
        let dst = &mut block[base..];
        for &w in g.neighbors(v) {
            union_registers(dst, prev.node(w));
        }
        // once one node changed, the shard's flag is settled — skip the
        // 2^b-register compare for the rest (near-every node changes in
        // early rounds, so this halves the hot loop's register reads)
        if !changed {
            changed = dst != prev.node(v);
        }
    }
    (block, changed)
}

/// Shard-order merge of round partials: blocks concatenate back into a
/// full register file (shards are contiguous node ranges in order), the
/// change flags OR together. Identical whether partials were collected
/// first or stream in one at a time.
fn merge_round(acc: &mut (Vec<u8>, bool), partial: (Vec<u8>, bool)) {
    acc.0.extend_from_slice(&partial.0);
    acc.1 |= partial.1;
}

/// The HyperANF result: the estimated neighborhood function and the
/// distance-family views derived from it.
#[derive(Clone, Debug, PartialEq)]
pub struct HyperAnf {
    /// Register-bit count the run used.
    pub bits: u32,
    /// `neighborhood[t]` = estimated `N(t) = Σ_v |B(v, t)|` (ordered
    /// pairs within distance `t`, self-pairs included; `N(0) ≈ n`).
    /// Clamped monotone non-decreasing: the registers only grow, but the
    /// HLL small-range correction can jitter at its hand-off point, and
    /// a distance distribution must not go negative.
    pub neighborhood: Vec<f64>,
    /// Whether the registers reached their fixpoint within the round
    /// cap (`false` only when the cap bit before convergence — the
    /// estimates then cover distances up to the cap only).
    pub converged: bool,
}

impl HyperAnf {
    /// Estimated number of ordered pairs at distance exactly `t`, for
    /// `t ≥ 1`: the increments `N(t) − N(t−1)` (non-negative by the
    /// monotone clamp).
    pub fn pair_increments(&self) -> Vec<f64> {
        self.neighborhood.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Estimated average distance `d̄` over connected ordered pairs —
    /// the sketch twin of
    /// [`DistanceDistribution::mean`](crate::distance::DistanceDistribution::mean):
    /// `Σ_t t·(N(t) − N(t−1)) / (N(max) − N(0))`. Returns `0.0` when no
    /// positive-distance pairs were found (matching the exact metric's
    /// empty-total convention).
    pub fn avg_distance(&self) -> f64 {
        let nf = &self.neighborhood;
        let Some((&last, &first)) = nf.last().zip(nf.first()) else {
            return 0.0;
        };
        let total = last - first;
        if total <= 0.0 {
            return 0.0;
        }
        let sum: f64 = self
            .pair_increments()
            .iter()
            .enumerate()
            .map(|(i, &d)| (i + 1) as f64 * d)
            .sum();
        sum / total
    }

    /// Effective diameter at quantile `q` (the HyperANF paper's
    /// convention, `q = 0.9` behind the registry metric): the smallest
    /// `t` — linearly interpolated between rounds — such that
    /// `N(t) ≥ q·N(max)`.
    pub fn effective_diameter(&self, q: f64) -> f64 {
        let nf = &self.neighborhood;
        let Some(&last) = nf.last() else {
            return 0.0;
        };
        let target = q * last;
        if nf[0] >= target {
            return 0.0;
        }
        for t in 1..nf.len() {
            if nf[t] >= target {
                let prev = nf[t - 1];
                let step = nf[t] - prev;
                let frac = if step > 0.0 {
                    (target - prev) / step
                } else {
                    1.0
                };
                return (t - 1) as f64 + frac;
            }
        }
        (nf.len() - 1) as f64
    }

    /// Estimated distance PDF over **positive** distances — the sketch
    /// twin of the exact `d_x` series
    /// ([`DistanceDistribution::pdf_positive`](crate::distance::DistanceDistribution::pdf_positive)):
    /// `(t, ΔN(t)/Σ_s ΔN(s))` for `t ≥ 1`. Empty when no
    /// positive-distance pairs were found.
    pub fn distance_pdf(&self) -> Vec<(usize, f64)> {
        let inc = self.pair_increments();
        let total: f64 = inc.iter().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        inc.iter()
            .enumerate()
            .map(|(i, &d)| (i + 1, d / total))
            .collect()
    }
}

/// HyperANF over a prepared CSR snapshot with the default shard count —
/// the convenience entry point (analyzer on-demand fallback, tests).
pub fn hyper_anf_csr(g: &CsrGraph, bits: u32, max_rounds: usize, threads: usize) -> HyperAnf {
    hyper_anf_sharded(g, bits, max_rounds, crate::stream::DEFAULT_SHARDS, threads)
}

/// HyperANF over a **relabeled** snapshot ([`CsrGraph::from_graph_relabeled`]):
/// counters are seeded from external ids ([`NodeSketches::init_mapped`])
/// and the per-round `N(t)` sums run in external node order
/// ([`NodeSketches::sum_estimates_mapped`]), so the result is
/// bit-identical to [`hyper_anf_sharded`]/[`hyper_anf_streamed`] on the
/// unpermuted snapshot — the iteration itself only max-merges per-node
/// register sets, which no relabeling can observe. `streamed` picks the
/// fold route exactly as the plain entry points do.
pub fn hyper_anf_relabeled(
    g: &CsrGraph,
    relab: &Relabeling,
    bits: u32,
    max_rounds: usize,
    shards: usize,
    threads: usize,
    streamed: bool,
) -> HyperAnf {
    hyper_anf_impl(g, bits, max_rounds, shards, threads, streamed, Some(relab))
}

/// **In-memory** HyperANF with an explicit shard count: every round
/// collects its shard blocks, then merges them in shard order — the
/// equivalence oracle for [`hyper_anf_streamed`]. Since registers are
/// integer max-merges and the `N(t)` sums run in fixed node order, the
/// result is identical for **any** shard and thread count.
pub fn hyper_anf_sharded(
    g: &CsrGraph,
    bits: u32,
    max_rounds: usize,
    shards: usize,
    threads: usize,
) -> HyperAnf {
    hyper_anf_impl(g, bits, max_rounds, shards, threads, false, None)
}

/// **Streaming** HyperANF: each round's shard blocks fold into the next
/// register file in shard order as workers finish
/// ([`dk_graph::ensemble::run_fold`] via [`crate::stream`]), so
/// in-flight partials are bounded by the worker count — the route the
/// analyzer plans for 10⁶-node graphs. Bit-identical to
/// [`hyper_anf_sharded`].
pub fn hyper_anf_streamed(
    g: &CsrGraph,
    bits: u32,
    max_rounds: usize,
    shards: usize,
    threads: usize,
) -> HyperAnf {
    hyper_anf_impl(g, bits, max_rounds, shards, threads, true, None)
}

fn hyper_anf_impl(
    g: &CsrGraph,
    bits: u32,
    max_rounds: usize,
    shards: usize,
    threads: usize,
    streamed: bool,
    relab: Option<&Relabeling>,
) -> HyperAnf {
    let n = g.node_count();
    if n == 0 {
        return HyperAnf {
            bits,
            neighborhood: Vec::new(),
            converged: true,
        };
    }
    let threads = threads.clamp(1, n);
    let sum = |s: &NodeSketches| match relab {
        Some(r) => s.sum_estimates_mapped(r.forward()),
        None => s.sum_estimates(),
    };
    let mut cur = match relab {
        Some(r) => NodeSketches::init_mapped(bits, r.backward()),
        None => NodeSketches::init(n, bits),
    };
    let mut neighborhood = vec![sum(&cur)];
    let mut converged = false;
    for _round in 1..=max_rounds.max(1) {
        let work = |range: Range<u32>| union_shard(g, &cur, range);
        let (next, changed) = if streamed {
            run_sharded_fold(
                n as u32,
                shards,
                threads,
                work,
                (Vec::with_capacity(cur.regs.len()), false),
                merge_round,
            )
        } else {
            let partials = run_sharded(n as u32, shards, threads, work);
            let mut acc = (Vec::with_capacity(cur.regs.len()), false);
            for p in partials {
                merge_round(&mut acc, p);
            }
            acc
        };
        if !changed {
            // fixpoint: this round's file equals the last one, so its
            // estimate adds no information — stop without recording it
            converged = true;
            break;
        }
        cur = NodeSketches {
            bits,
            nodes: n,
            regs: next,
        };
        let prev = *neighborhood.last().expect("N(0) recorded");
        neighborhood.push(sum(&cur).max(prev));
    }
    HyperAnf {
        bits,
        neighborhood,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::{builders, Graph};

    #[test]
    fn rank_and_index_cover_their_ranges() {
        for bits in [MIN_SKETCH_BITS, 8, MAX_SKETCH_BITS] {
            let (i0, r0) = index_and_rank(0, bits);
            assert_eq!(i0, 0);
            assert_eq!(u32::from(r0), 65 - bits, "all-zero remainder saturates");
            let (imax, rmax) = index_and_rank(u64::MAX, bits);
            assert_eq!(imax, (1usize << bits) - 1);
            assert_eq!(rmax, 1);
        }
    }

    #[test]
    fn hll_estimates_small_sets_nearly_exactly() {
        // n ≪ 2^b is the linear-counting regime: error far below the
        // 1.04/√m standard error
        for bits in [6, 10, MAX_SKETCH_BITS] {
            let mut s = HllSketch::new(bits);
            for v in 0..40u64 {
                s.insert(v);
            }
            let est = s.estimate();
            assert!(est.is_finite());
            let rel = (est - 40.0).abs() / 40.0;
            assert!(rel < 0.15, "bits {bits}: estimate {est}");
        }
    }

    #[test]
    fn hll_estimate_within_standard_error_at_scale() {
        // 50k items into m = 1024 registers: raw-estimator regime; the
        // deterministic hash must land within a few standard errors
        let bits = 10;
        let mut s = HllSketch::new(bits);
        for v in 0..50_000u64 {
            s.insert(v);
        }
        let rel = (s.estimate() - 50_000.0).abs() / 50_000.0;
        assert!(rel < 3.0 * standard_error(bits), "rel error {rel}");
    }

    #[test]
    fn union_is_max_and_estimate_monotone() {
        let mut a = HllSketch::new(6);
        let mut b = HllSketch::new(6);
        for v in 0..30 {
            a.insert(v);
        }
        for v in 20..60 {
            b.insert(v);
        }
        let ea = a.estimate();
        let mut u = a.clone();
        u.union(&b);
        assert!(u.estimate() >= ea, "union can only grow the set");
        // idempotence of a self-union
        let before = u.clone();
        u.union(&before);
        assert_eq!(u, before);
    }

    #[test]
    #[should_panic(expected = "sketch bits")]
    fn bits_out_of_range_panics() {
        HllSketch::new(MAX_SKETCH_BITS + 1);
    }

    #[test]
    fn init_seeds_exactly_one_register_per_node() {
        let s = NodeSketches::init(10, 5);
        for v in 0..10u32 {
            let set = s.node(v).iter().filter(|&&r| r > 0).count();
            assert_eq!(set, 1, "node {v}");
        }
        // N(0) ≈ n: every ball of radius 0 is a single node
        let n0 = s.sum_estimates();
        assert!((n0 - 10.0).abs() / 10.0 < 0.05, "N(0) = {n0}");
    }

    #[test]
    fn hyper_anf_converges_on_path_and_matches_ball_sizes() {
        // P4: balls grow by one hop per round; exact N(t) by hand:
        // N(0)=4, N(1)=4+6=10, N(2)=14, N(3)=16 (ordered pairs + self)
        let g = builders::path(4);
        let csr = CsrGraph::from_graph(&g);
        let anf = hyper_anf_csr(&csr, 10, 64, 1);
        assert!(anf.converged);
        assert_eq!(anf.neighborhood.len(), 4, "diameter 3 → rounds 0..=3");
        for (t, want) in [(0usize, 4.0), (1, 10.0), (2, 14.0), (3, 16.0)] {
            let got = anf.neighborhood[t];
            assert!(
                (got - want).abs() / want < 0.05,
                "N({t}) = {got}, want ≈ {want}"
            );
        }
        // d̄ of P4 = 5/3 over connected ordered pairs
        let want = 5.0 / 3.0;
        assert!((anf.avg_distance() - want).abs() / want < 0.05);
    }

    #[test]
    fn round_cap_reports_non_convergence() {
        let g = builders::path(10);
        let csr = CsrGraph::from_graph(&g);
        let capped = hyper_anf_csr(&csr, 8, 2, 1);
        assert!(!capped.converged);
        assert_eq!(capped.neighborhood.len(), 3, "N(0)..N(2) only");
        let full = hyper_anf_csr(&csr, 8, 64, 1);
        assert!(full.converged);
        assert_eq!(full.neighborhood[..3], capped.neighborhood[..]);
    }

    #[test]
    fn streamed_and_sharded_identical_across_shards_and_threads() {
        let g = builders::grid(5, 6);
        let csr = CsrGraph::from_graph(&g);
        let n = g.node_count();
        let oracle = hyper_anf_sharded(&csr, 7, 64, 1, 1);
        for shards in [1, 2, 7, n] {
            for threads in [1, 3] {
                assert_eq!(
                    hyper_anf_streamed(&csr, 7, 64, shards, threads),
                    oracle,
                    "shards = {shards}, threads = {threads}"
                );
                assert_eq!(hyper_anf_sharded(&csr, 7, 64, shards, threads), oracle);
            }
        }
    }

    #[test]
    fn relabeled_route_is_bit_identical() {
        // external-id seeding + external-order sums make the relabeled
        // iteration reproduce the plain route bit for bit, on both fold
        // routes — the sketch half of the permutation-inversion contract
        for g in [
            builders::karate_club(),
            builders::grid(4, 5),
            builders::star(9),
            Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap(),
        ] {
            let plain = hyper_anf_sharded(&CsrGraph::from_graph(&g), 7, 64, 3, 2);
            let (rel, relab) = CsrGraph::from_graph_relabeled(&g);
            for streamed in [false, true] {
                assert_eq!(
                    hyper_anf_relabeled(&rel, &relab, 7, 64, 3, 2, streamed),
                    plain,
                    "streamed = {streamed}"
                );
            }
        }
    }

    #[test]
    fn swar_union_agrees_with_scalar_loop() {
        // deterministic pseudo-random register files, including the
        // byte-boundary cases 0x00/0x7F/0x80/0xFF in both operands
        let mut a: Vec<u8> = (0..64u64).map(|i| (node_hash(i) & 0xFF) as u8).collect();
        let b: Vec<u8> = (0..64u64)
            .map(|i| (node_hash(i + 1000) & 0xFF) as u8)
            .collect();
        for (i, v) in [0x00, 0x7F, 0x80, 0xFF].into_iter().enumerate() {
            a[i] = v;
            a[i + 4] = 0x80;
        }
        let mut expect = a.clone();
        for (d, s) in expect.iter_mut().zip(&b) {
            if *d < *s {
                *d = *s;
            }
        }
        union_registers(&mut a, &b);
        assert_eq!(a, expect);
    }

    #[test]
    fn disconnected_graphs_stop_at_component_balls() {
        // two components: balls never cross, N(max) < n²
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        let anf = hyper_anf_csr(&csr, 10, 64, 1);
        assert!(anf.converged);
        // exact: N(0)=5, N(1)=5+2+6=13? pairs: (0,1)x2 at d1; (2,3),(3,4),(2,4 via 3 at d2)...
        // N(max) = 2² + 3² = 13 ordered pairs within components
        let last = *anf.neighborhood.last().unwrap();
        assert!((last - 13.0).abs() / 13.0 < 0.05, "N(max) = {last}");
        assert!(anf.avg_distance() > 0.0);
        assert!(anf.avg_distance().is_finite());
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let empty = hyper_anf_csr(&CsrGraph::from_graph(&Graph::new()), 8, 8, 2);
        assert!(empty.neighborhood.is_empty());
        assert!(empty.converged);
        assert_eq!(empty.avg_distance(), 0.0);
        assert_eq!(empty.effective_diameter(0.9), 0.0);
        assert!(empty.distance_pdf().is_empty());

        let one = hyper_anf_csr(&CsrGraph::from_graph(&Graph::with_nodes(1)), 8, 8, 1);
        assert!(one.converged);
        assert_eq!(one.avg_distance(), 0.0);
        assert_eq!(one.effective_diameter(0.9), 0.0);
    }

    #[test]
    fn oversized_registers_degrade_gracefully() {
        // n = 5 ≪ 2^16 registers: linear counting everywhere — finite,
        // near-exact, no panic (the explicit n < 2^b requirement)
        let g = builders::complete(5);
        let csr = CsrGraph::from_graph(&g);
        let anf = hyper_anf_csr(&csr, MAX_SKETCH_BITS, 16, 2);
        assert!(anf.converged);
        assert!(anf.neighborhood.iter().all(|x| x.is_finite()));
        let d = anf.avg_distance();
        assert!((d - 1.0).abs() < 0.02, "K5 d̄ = {d}");
        assert!(anf.effective_diameter(0.9).is_finite());
    }

    #[test]
    fn effective_diameter_interpolates() {
        // star: N(0)=6, N(1)=16, N(2)=36 (exact); q=0.9 target 32.4 →
        // between rounds 1 and 2
        let g = builders::star(5);
        let csr = CsrGraph::from_graph(&g);
        let anf = hyper_anf_csr(&csr, 12, 16, 1);
        let eff = anf.effective_diameter(0.9);
        assert!(eff > 1.0 && eff < 2.0, "eff diameter {eff}");
        // q = 1.0 reaches the full diameter
        let full = anf.effective_diameter(1.0);
        assert!((full - 2.0).abs() < 0.05, "diameter {full}");
    }

    #[test]
    fn distance_pdf_sums_to_one() {
        let g = builders::karate_club();
        let csr = CsrGraph::from_graph(&g);
        let anf = hyper_anf_csr(&csr, 10, 32, 2);
        let pdf = anf.distance_pdf();
        assert!(!pdf.is_empty());
        let total: f64 = pdf.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "Σ pdf = {total}");
        assert!(pdf.iter().all(|&(_, p)| p >= 0.0));
        assert_eq!(pdf[0].0, 1, "positive distances start at 1");
    }

    #[test]
    fn standard_error_formula() {
        assert!((standard_error(8) - 1.04 / 16.0).abs() < 1e-12);
        assert!((standard_error(10) - 1.04 / 32.0).abs() < 1e-12);
        assert_eq!(sketch_bytes(1000, 8), 256_000);
    }
}

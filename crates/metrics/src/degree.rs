//! Degree distribution `P(k)` — the paper's 1K-distribution viewed as a
//! metric.

use dk_graph::Graph;

/// Empirical degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeDistribution {
    /// `counts[k]` = number of nodes with degree `k` (`n(k)`).
    pub counts: Vec<usize>,
    /// Total number of nodes.
    pub nodes: usize,
}

impl DegreeDistribution {
    /// Extracts `P(k)` from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        DegreeDistribution {
            counts: dk_graph::degree::degree_histogram(g),
            nodes: g.node_count(),
        }
    }

    /// `P(k) = n(k)/n`; 0.0 outside the observed range.
    pub fn pk(&self, k: usize) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.counts.get(k).copied().unwrap_or(0) as f64 / self.nodes as f64
    }

    /// Average degree `k̄ = Σ k·P(k)`.
    pub fn mean(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let sum: usize = self.counts.iter().enumerate().map(|(k, &c)| k * c).sum();
        sum as f64 / self.nodes as f64
    }

    /// Second moment `⟨k²⟩`.
    pub fn second_moment(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let sum: usize = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k * k * c)
            .sum();
        sum as f64 / self.nodes as f64
    }

    /// Maximum observed degree.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Shannon entropy `H[P(k)] = −Σ P(k)·log P(k)` (natural log).
    ///
    /// Used by the maximum-entropy tests of Table 1: among distributions
    /// with fixed mean on a finite support, the binomial maximizes entropy.
    pub fn entropy(&self) -> f64 {
        let n = self.nodes as f64;
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }

    /// Total-variation distance to another degree distribution:
    /// `½ Σ_k |P(k) − Q(k)|` ∈ [0, 1].
    pub fn tv_distance(&self, other: &DegreeDistribution) -> f64 {
        let kmax = self.counts.len().max(other.counts.len());
        let mut acc = 0.0;
        for k in 0..kmax {
            acc += (self.pk(k) - other.pk(k)).abs();
        }
        acc / 2.0
    }
}

/// Poisson pmf `e^{−λ} λ^k / k!`, the paper's closed form for the
/// 1K-distribution of 0K-random (Erdős–Rényi) graphs (Table 1).
pub fn poisson_pmf(lambda: f64, k: usize) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    // compute in log space to dodge overflow for large k
    let mut log_p = -lambda + k as f64 * lambda.ln();
    for i in 1..=k {
        log_p -= (i as f64).ln();
    }
    log_p.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn star_distribution() {
        let g = builders::star(5);
        let d = DegreeDistribution::from_graph(&g);
        assert_eq!(d.pk(1), 5.0 / 6.0);
        assert_eq!(d.pk(5), 1.0 / 6.0);
        assert_eq!(d.pk(3), 0.0);
        assert_eq!(d.pk(99), 0.0);
        assert!((d.mean() - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.max_degree(), 5);
    }

    #[test]
    fn regular_graph_entropy_zero() {
        let g = builders::cycle(8);
        let d = DegreeDistribution::from_graph(&g);
        assert!(d.entropy().abs() < 1e-12); // single-point distribution
    }

    #[test]
    fn second_moment_of_star() {
        let g = builders::star(4); // degrees: 4, 1,1,1,1
        let d = DegreeDistribution::from_graph(&g);
        assert!((d.second_moment() - (16.0 + 4.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn tv_distance_properties() {
        let a = DegreeDistribution::from_graph(&builders::cycle(6));
        let b = DegreeDistribution::from_graph(&builders::path(6));
        assert_eq!(a.tv_distance(&a), 0.0);
        let d = a.tv_distance(&b);
        assert!(d > 0.0 && d <= 1.0);
        assert!((a.tv_distance(&b) - b.tv_distance(&a)).abs() < 1e-15);
    }

    #[test]
    fn empty_graph_degenerates_gracefully() {
        let d = DegreeDistribution::from_graph(&Graph::new());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.pk(0), 0.0);
        assert_eq!(d.entropy(), 0.0);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let lambda = 3.7;
        let total: f64 = (0..200).map(|k| poisson_pmf(lambda, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // mode near λ
        assert!(poisson_pmf(lambda, 3) > poisson_pmf(lambda, 10));
        // degenerate λ = 0
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }
}

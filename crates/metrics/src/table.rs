//! Side-by-side report rendering (the paper's table layout).
//!
//! Every reproduction table — the paper's Tables 3, 4, 6, 7, 8, the CLI
//! `compare` output, and the `dk-bench` table binaries — prints metric
//! rows against graph-variant columns. This is the one formatter they
//! all share; columns are [`Report`]s (single graphs) or
//! [`EnsembleSummary`] means (with the spread carried into the CSV).

use crate::analyzer::EnsembleSummary;
use crate::metric::{AnyMetric, Kind};
use crate::report::Report;

/// A metric-rows × variant-columns table.
///
/// Rows are the union of the scalar metrics present in any column, in
/// registry order; custom rows (e.g. Table 7's `S2/S2max`) append after.
#[derive(Clone, Debug, Default)]
pub struct MetricTable {
    columns: Vec<Column>,
    /// Extra custom rows: (label, per-column values).
    extra_rows: Vec<(String, Vec<Option<f64>>)>,
}

#[derive(Clone, Debug)]
struct Column {
    name: String,
    mean: Report,
    /// Per-metric ensemble std (ensemble columns only) — rendered into
    /// the CSV as `<metric>_std` rows.
    std: Option<Report>,
}

impl MetricTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single-graph column.
    pub fn push(&mut self, name: impl Into<String>, report: Report) {
        self.columns.push(Column {
            name: name.into(),
            mean: report,
            std: None,
        });
    }

    /// Appends an ensemble column: the table shows the means, the CSV
    /// additionally carries the standard deviations.
    pub fn push_summary(&mut self, name: impl Into<String>, summary: &EnsembleSummary) {
        self.columns.push(Column {
            name: name.into(),
            mean: summary.mean_report(),
            std: Some(summary.std_report()),
        });
    }

    /// Appends a custom row (must supply one value per existing column).
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.columns.len(), "one value per column");
        self.extra_rows.push((label.into(), values));
    }

    /// Scalar rows present in at least one column, in registry order.
    fn rows(&self) -> Vec<AnyMetric> {
        AnyMetric::all()
            .filter(|m| m.kind() == Kind::Scalar)
            .filter(|m| {
                self.columns
                    .iter()
                    .any(|c| c.mean.records.iter().any(|r| r.metric == *m))
            })
            .collect()
    }

    fn cell(report: &Report, metric: AnyMetric) -> Option<f64> {
        report
            .records
            .iter()
            .find(|r| r.metric == metric)
            .and_then(|r| r.value.as_scalar())
    }

    /// Renders the table (metric rows, then custom rows).
    pub fn render(&self) -> String {
        let width = 12usize;
        let mut out = format!("{:<13}", "metric");
        for c in &self.columns {
            out.push_str(&format!("{:>width$}", c.name));
        }
        out.push('\n');
        let mut emit = |label: &str, values: Vec<Option<f64>>| {
            out.push_str(&format!("{label:<13}"));
            for v in values {
                out.push_str(&format!("{:>width$}", fmt_opt(v)));
            }
            out.push('\n');
        };
        for metric in self.rows() {
            emit(
                metric.name(),
                self.columns
                    .iter()
                    .map(|c| Self::cell(&c.mean, metric))
                    .collect(),
            );
        }
        for (label, values) in &self.extra_rows {
            emit(label, values.clone());
        }
        out
    }

    /// CSV form (`metric,col1,col2,…`); ensemble columns additionally
    /// produce `<metric>_std` rows after each metric row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        let has_std = self.columns.iter().any(|c| c.std.is_some());
        let mut emit = |label: &str, values: Vec<Option<f64>>| {
            out.push_str(label);
            for v in values {
                out.push(',');
                if let Some(x) = v {
                    out.push_str(&format!("{x}"));
                }
            }
            out.push('\n');
        };
        for metric in self.rows() {
            emit(
                metric.name(),
                self.columns
                    .iter()
                    .map(|c| Self::cell(&c.mean, metric))
                    .collect(),
            );
            if has_std {
                emit(
                    &format!("{}_std", metric.name()),
                    self.columns
                        .iter()
                        .map(|c| c.std.as_ref().and_then(|s| Self::cell(s, metric)))
                        .collect(),
                );
            }
        }
        for (label, values) in &self.extra_rows {
            emit(label, values.clone());
        }
        out
    }

    /// JSON form: `{"columns": {"<name>": <report json>, ...}}` plus the
    /// custom rows — the machine-readable counterpart of [`render`].
    ///
    /// [`render`]: MetricTable::render
    pub fn to_json(&self) -> String {
        let columns = crate::json::object(
            self.columns
                .iter()
                .map(|c| (c.name.clone(), c.mean.to_json())),
        );
        let extra = crate::json::object(self.extra_rows.iter().map(|(label, values)| {
            (
                label.clone(),
                crate::json::array(values.iter().map(|v| match v {
                    Some(x) => crate::json::number(*x),
                    None => "null".to_string(),
                })),
            )
        }));
        crate::json::object([("columns".into(), columns), ("extra_rows".into(), extra)])
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(x) if x.abs() >= 1000.0 => format!("{x:.0}"),
        Some(x) => format!("{x:.3}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use dk_graph::builders;

    #[test]
    fn render_contains_all_columns_and_rows() {
        let cheap = Analyzer::new().metric_names("cheap").unwrap();
        let mut t = MetricTable::new();
        t.push("orig", cheap.analyze(&builders::karate_club()));
        t.push("rand", cheap.analyze(&builders::petersen()));
        t.push_row("S2/S2max", vec![Some(0.95), Some(1.0)]);
        let s = t.render();
        assert!(s.contains("orig") && s.contains("rand"));
        assert!(s.contains("k_avg") && s.contains("S2/S2max"));
        let csv = t.to_csv();
        assert!(csv.starts_with("metric,orig,rand"));
        // cheap set: 8 scalar rows + extra row + header, no std rows
        assert_eq!(csv.lines().count(), 1 + 8 + 1);
        let js = t.to_json();
        assert!(js.contains("\"orig\":{\"graph\""), "{js}");
        assert!(js.contains("\"S2/S2max\":[0.95,1]"), "{js}");
    }

    #[test]
    fn ensemble_columns_carry_std_rows() {
        let a = Analyzer::new().metric_names("n,k_avg").unwrap();
        let summary = a.run_ensemble(3, 1, |_| builders::cycle(5));
        let mut t = MetricTable::new();
        t.push_summary("ens", &summary);
        t.push("orig", a.analyze(&builders::cycle(5)));
        let csv = t.to_csv();
        assert!(csv.contains("k_avg_std,0,"), "{csv}");
        // render shows means only
        assert!(t.render().contains("2.000"));
        assert!(!t.render().contains("k_avg_std"));
    }

    #[test]
    fn missing_metrics_render_as_dashes() {
        let mut t = MetricTable::new();
        t.push(
            "full",
            Analyzer::new()
                .metric_names("k_avg,d_avg")
                .unwrap()
                .analyze(&builders::path(4)),
        );
        t.push(
            "cheap",
            Analyzer::new()
                .metric_names("k_avg")
                .unwrap()
                .analyze(&builders::path(4)),
        );
        let s = t.render();
        let d_row = s.lines().find(|l| l.starts_with("d_avg")).unwrap();
        assert!(d_row.contains('-'), "{d_row}");
    }

    #[test]
    #[should_panic(expected = "one value per column")]
    fn row_arity_checked() {
        let mut t = MetricTable::new();
        t.push(
            "a",
            Analyzer::new()
                .metric_names("k_avg")
                .unwrap()
                .analyze(&builders::path(3)),
        );
        t.push_row("bad", vec![]);
    }
}

//! Joint degree distribution (2K) summaries and the assortativity
//! coefficient `r`.
//!
//! The full JDD object (with canonicalization, distances, and derivations)
//! lives in `dk-core`, where the generators consume it; this module holds
//! the *scalar metric* view: Newman's assortativity coefficient and the
//! average-neighbor-degree curve `k_nn(k)` commonly plotted alongside it.

use dk_graph::Graph;

/// Newman's assortativity coefficient `r` ∈ [−1, 1]
/// (Phys. Rev. Lett. 89, 208701 — paper ref \[25\]).
///
/// Positive: similar degrees attach to each other (assortative);
/// negative: hubs attach to leaves (disassortative, typical of the
/// Internet). The paper reports `r ≈ −0.24` for skitter and `−0.22` for
/// HOT.
///
/// Returns 0.0 when undefined (fewer than 1 edge or zero variance, e.g.
/// regular graphs).
pub fn assortativity(g: &Graph) -> f64 {
    let m = g.edge_count();
    if m == 0 {
        return 0.0;
    }
    let minv = 1.0 / m as f64;
    let (mut sum_jk, mut sum_half, mut sum_sq) = (0.0, 0.0, 0.0);
    for &(u, v) in g.edges() {
        let j = g.degree(u) as f64;
        let k = g.degree(v) as f64;
        sum_jk += j * k;
        sum_half += 0.5 * (j + k);
        sum_sq += 0.5 * (j * j + k * k);
    }
    let num = minv * sum_jk - (minv * sum_half).powi(2);
    let den = minv * sum_sq - (minv * sum_half).powi(2);
    if den.abs() < 1e-15 {
        0.0
    } else {
        num / den
    }
}

/// Average degree of the nearest neighbors of `k`-degree nodes,
/// `k_nn(k)`, returned as `(k, k_nn)` pairs for observed degrees.
///
/// A decreasing `k_nn(k)` is the standard signature of disassortativity in
/// AS topologies.
pub fn avg_neighbor_degree(g: &Graph) -> Vec<(usize, f64)> {
    let mut sum = vec![0.0f64; g.max_degree() + 1];
    let mut cnt = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        let k = g.degree(u);
        if k == 0 {
            continue;
        }
        let s: usize = g.neighbors(u).iter().map(|&v| g.degree(v)).sum();
        sum[k] += s as f64 / k as f64;
        cnt[k] += 1;
    }
    (0..sum.len())
        .filter(|&k| cnt[k] > 0)
        .map(|k| (k, sum[k] / cnt[k] as f64))
        .collect()
}

/// Raw JDD edge counts `m(k1, k2)` with `k1 ≤ k2`, as a sorted vector —
/// the metric-side view used by figure generators (the authoritative
/// distribution type is `dk_core::Dist2K`).
pub fn jdd_counts(g: &Graph) -> Vec<((usize, usize), usize)> {
    let mut map: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for &(u, v) in g.edges() {
        let a = g.degree(u);
        let b = g.degree(v);
        let key = (a.min(b), a.max(b));
        *map.entry(key).or_insert(0) += 1;
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn star_is_maximally_disassortative() {
        let g = builders::star(8);
        assert!((assortativity(&g) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn regular_graphs_have_undefined_r_reported_as_zero() {
        assert_eq!(assortativity(&builders::cycle(10)), 0.0);
        assert_eq!(assortativity(&builders::complete(5)), 0.0);
        assert_eq!(assortativity(&Graph::new()), 0.0);
    }

    #[test]
    fn double_star_is_disassortative_not_extreme() {
        // Two hubs joined, each with 3 leaves: r < 0 but > −1 because the
        // hub–hub edge is assortative.
        let g =
            Graph::from_edges(8, [(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)]).unwrap();
        let r = assortativity(&g);
        assert!(r < 0.0 && r > -1.0, "r = {r}");
    }

    #[test]
    fn path_assortativity_known_value() {
        // P4: edges (1,2),(2,2),(2,1) by endpoint degrees.
        // Hand computation: Σjk = 2+4+2 = 8, Σ(j+k)/2 = 1.5+2+1.5 = 5,
        // Σ(j²+k²)/2 = 2.5+4+2.5 = 9, m=3.
        // r = (8/3 − 25/9)/(9/3 − 25/9) = (−1/9)/(2/9) = −0.5
        let g = builders::path(4);
        assert!((assortativity(&g) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn knn_decreasing_for_star() {
        let g = builders::star(5);
        let knn = avg_neighbor_degree(&g);
        // leaves (k=1) see the hub (degree 5); hub (k=5) sees leaves (1.0)
        assert_eq!(knn, vec![(1, 5.0), (5, 1.0)]);
    }

    #[test]
    fn jdd_counts_of_path() {
        let g = builders::path(4); // degrees 1,2,2,1
        let jdd = jdd_counts(&g);
        assert_eq!(jdd, vec![((1, 2), 2), ((2, 2), 1)]);
        // total = m
        assert_eq!(jdd.iter().map(|(_, c)| c).sum::<usize>(), 3);
    }

    #[test]
    fn assortativity_in_range_on_real_graph() {
        let r = assortativity(&builders::karate_club());
        assert!((-1.0..=1.0).contains(&r));
        // karate club is known disassortative (≈ −0.476)
        assert!(r < -0.4 && r > -0.55, "r = {r}");
    }
}

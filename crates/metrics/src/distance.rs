//! Distance distribution `d(x)`, average distance `d̄`, and `σ_d`.
//!
//! The paper defines `d(x)` as "the number of pairs of nodes at a distance
//! `x`, divided by the total number of pairs `n²` (self-pairs included)"
//! (§2). We compute it **exactly** by running BFS from every node —
//! O(n·m), a few seconds at skitter scale — parallelized over sources with
//! scoped threads. All-source sweeps run over a frozen [`CsrGraph`]
//! snapshot (two flat arrays; no per-neighbor-list pointer chase), taken
//! internally by [`DistanceDistribution::from_graph`] or supplied by the
//! analyzer cache via [`DistanceDistribution::from_csr_with_threads`].
//! Above [`crate::stream::AUTO_STREAM_NODES`] the analyzer plans the
//! **streaming** sweep ([`DistanceDistribution::from_csr_streamed`]):
//! identical histogram, `O(workers)` partials in flight instead of
//! `O(shards)`.
//!
//! The exact distribution carries no sampling noise: reproduction tables
//! must not stack sampling noise on top of ensemble noise. The *opt-in*
//! sampled estimator (registry metric `distance_approx`) lives in
//! [`crate::sampled`].

use crate::stream::{run_sharded, run_sharded_fold, DEFAULT_SHARDS};
use dk_graph::traversal::BfsScratch;
use dk_graph::{traversal, AdjacencyView, CsrGraph, Graph, NodeId};

/// Exact distance distribution of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceDistribution {
    /// `counts[x]` = number of **ordered** pairs `(u, v)` at distance `x`.
    /// `counts\[0\] = n` (self-pairs), matching the paper's convention.
    pub counts: Vec<u64>,
    /// Number of nodes.
    pub nodes: usize,
    /// Ordered pairs with no connecting path (0 on connected graphs).
    pub unreachable_pairs: u64,
}

impl DistanceDistribution {
    /// Computes the exact distribution with one BFS per node, in parallel.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_graph_with_threads(g, default_threads())
    }

    /// As [`DistanceDistribution::from_graph`] with an explicit thread
    /// count (tests use 1 to exercise the sequential path).
    ///
    /// Takes a fresh [`CsrGraph`] snapshot internally; callers that
    /// already hold one (the analyzer cache) use
    /// [`DistanceDistribution::from_csr_with_threads`] to skip the
    /// rebuild.
    pub fn from_graph_with_threads(g: &Graph, threads: usize) -> Self {
        Self::from_view(&CsrGraph::from_graph(g), threads)
    }

    /// Exact distribution over a prepared CSR snapshot.
    pub fn from_csr_with_threads(g: &CsrGraph, threads: usize) -> Self {
        Self::from_view(g, threads)
    }

    /// In-memory sweep with an explicit shard count — the equivalence
    /// oracle for [`DistanceDistribution::from_csr_streamed`] at the same
    /// shard count (the histogram reducer is integer, so any shard count
    /// gives identical counts; the knob fixes the partial layout).
    pub fn from_csr_sharded(g: &CsrGraph, shards: usize, threads: usize) -> Self {
        Self::from_view_sharded(g, shards, threads)
    }

    /// **Streaming** sweep over a prepared snapshot: each worker streams
    /// its source shards into a per-shard histogram, and histograms
    /// merge into one accumulator in shard order — `O(workers)`
    /// histograms in flight instead of `O(shards)`, the route the
    /// analyzer plans for 10⁶-node graphs (see [`crate::stream`]).
    /// Identical to the in-memory sweep for every shard and thread count.
    pub fn from_csr_streamed(g: &CsrGraph, shards: usize, threads: usize) -> Self {
        let n = g.node_count();
        if n == 0 {
            return Self::empty();
        }
        let threads = threads.clamp(1, n);
        let (counts, unreachable) = run_sharded_fold(
            n as u32,
            shards,
            threads,
            |range| Self::bfs_shard(g, range),
            (Vec::new(), 0u64),
            Self::merge_shard,
        );
        DistanceDistribution {
            counts,
            nodes: n,
            unreachable_pairs: unreachable,
        }
    }

    /// The all-source BFS sweep, generic over the adjacency
    /// representation (CSR preserves neighbor order, so both views
    /// produce identical distributions).
    pub(crate) fn from_view<V: AdjacencyView + ?Sized>(g: &V, threads: usize) -> Self {
        Self::from_view_sharded(g, DEFAULT_SHARDS, threads)
    }

    fn from_view_sharded<V: AdjacencyView + ?Sized>(g: &V, shards: usize, threads: usize) -> Self {
        let n = g.node_count();
        if n == 0 {
            return Self::empty();
        }
        let threads = threads.clamp(1, n);
        let results = run_sharded(n as u32, shards, threads, |range| Self::bfs_shard(g, range));
        let mut acc = (Vec::new(), 0u64);
        for partial in results {
            Self::merge_shard(&mut acc, partial);
        }
        DistanceDistribution {
            counts: acc.0,
            nodes: n,
            unreachable_pairs: acc.1,
        }
    }

    /// One shard's worth of BFS sources folded into a compact partial:
    /// the per-distance visit counts and the unreached-pair tally. The
    /// worker-local scratch ([`BfsScratch`]: distances, frontiers, and
    /// the direction-optimizing bitmaps) is `O(n)` and reused across
    /// the shard's sources. The histogram reducer only counts
    /// `(node, level)` pairs, so it is insensitive to the within-level
    /// visit-order difference between the top-down and bottom-up paths.
    fn bfs_shard<V: AdjacencyView + ?Sized>(g: &V, range: std::ops::Range<u32>) -> (Vec<u64>, u64) {
        let n = g.node_count();
        let mut counts: Vec<u64> = Vec::new();
        let mut unreachable = 0u64;
        let mut scratch = BfsScratch::new(n);
        for s in range {
            let (reached, _depth) = traversal::bfs_visit(g, s, &mut scratch, |_, du| {
                let dx = du as usize;
                if counts.len() <= dx {
                    counts.resize(dx + 1, 0);
                }
                counts[dx] += 1;
            });
            unreachable += n as u64 - reached;
        }
        (counts, unreachable)
    }

    /// Shard-order histogram merge — the distance reducer shared by the
    /// in-memory and streaming routes (integer, so grouping-proof).
    fn merge_shard(acc: &mut (Vec<u64>, u64), partial: (Vec<u64>, u64)) {
        let (counts, unreachable) = acc;
        let (c, u) = partial;
        if counts.len() < c.len() {
            counts.resize(c.len(), 0);
        }
        for (x, v) in c.into_iter().enumerate() {
            counts[x] += v;
        }
        *unreachable += u;
    }

    fn empty() -> Self {
        DistanceDistribution {
            counts: vec![],
            nodes: 0,
            unreachable_pairs: 0,
        }
    }

    /// Paper-convention PDF: `d(x) = counts[x]/n²` (self-pairs included).
    pub fn pdf(&self) -> Vec<f64> {
        let n2 = (self.nodes as f64).powi(2);
        self.counts.iter().map(|&c| c as f64 / n2).collect()
    }

    /// PDF over **positive** distances only (what the paper's
    /// distance-distribution figures plot): `counts[x]/Σ_{y≥1} counts[y]`.
    pub fn pdf_positive(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().skip(1).sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(x, &c)| if x == 0 { 0.0 } else { c as f64 / total as f64 })
            .collect()
    }

    /// Average distance `d̄` over connected ordered pairs (x ≥ 1).
    pub fn mean(&self) -> f64 {
        let total: u64 = self.counts.iter().skip(1).sum();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(x, &c)| x as f64 * c as f64)
            .sum();
        sum / total as f64
    }

    /// Standard deviation `σ_d` of the positive-distance distribution.
    pub fn std_dev(&self) -> f64 {
        let total: u64 = self.counts.iter().skip(1).sum();
        if total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .skip(1)
            .map(|(x, &c)| (x as f64 - mean).powi(2) * c as f64)
            .sum::<f64>()
            / total as f64;
        var.sqrt()
    }

    /// Longest finite distance (graph diameter on connected graphs).
    pub fn diameter(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }
}

/// Default worker count: all available cores.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// All-pairs average distance convenience (connected graphs).
pub fn average_distance(g: &Graph) -> f64 {
    DistanceDistribution::from_graph(g).mean()
}

impl DistanceDistribution {
    /// Expansion `E(x)`: the average fraction of the graph reachable
    /// within `x` hops — the cumulative form of `d(x)`; the paper notes
    /// its distance distribution "is a normalized version of expansion
    /// \[29\]" (Tangmunarunkit et al.).
    ///
    /// `E(0) = 1/n` (the node itself), `E(diameter) = 1` on connected
    /// graphs.
    pub fn expansion(&self) -> Vec<f64> {
        if self.nodes == 0 {
            return Vec::new();
        }
        let n2 = (self.nodes as f64) * (self.nodes as f64);
        let mut acc = 0.0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c as f64 / n2;
                acc
            })
            .collect()
    }
}

/// Single-source distances re-exported for callers that need raw BFS next
/// to the distribution type.
pub fn distances_from(g: &Graph, s: NodeId) -> Vec<u32> {
    dk_graph::bfs_distances(g, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn path_distribution_hand_computed() {
        // P4 ordered pairs: distance 1 → 6, distance 2 → 4, distance 3 → 2.
        let g = builders::path(4);
        let d = DistanceDistribution::from_graph_with_threads(&g, 1);
        assert_eq!(d.counts, vec![4, 6, 4, 2]);
        assert_eq!(d.unreachable_pairs, 0);
        assert_eq!(d.diameter(), 3);
        let want_mean = (6.0 + 8.0 + 6.0) / 12.0;
        assert!((d.mean() - want_mean).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_all_distance_one() {
        let g = builders::complete(5);
        let d = DistanceDistribution::from_graph(&g);
        assert_eq!(d.counts, vec![5, 20]);
        assert_eq!(d.mean(), 1.0);
        assert_eq!(d.std_dev(), 0.0);
    }

    #[test]
    fn pdf_conventions() {
        let g = builders::complete(4);
        let d = DistanceDistribution::from_graph(&g);
        let pdf = d.pdf();
        // d(0) = 4/16, d(1) = 12/16
        assert!((pdf[0] - 0.25).abs() < 1e-12);
        assert!((pdf[1] - 0.75).abs() < 1e-12);
        let pp = d.pdf_positive();
        assert_eq!(pp[0], 0.0);
        assert!((pp[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_counts_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = DistanceDistribution::from_graph_with_threads(&g, 1);
        // each node reaches 1 other → 4 ordered reachable pairs at distance 1
        assert_eq!(d.counts, vec![4, 4]);
        assert_eq!(d.unreachable_pairs, 8);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = builders::grid(9, 11);
        let seq = DistanceDistribution::from_graph_with_threads(&g, 1);
        let par = DistanceDistribution::from_graph_with_threads(&g, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn csr_entry_point_matches_graph_entry_point() {
        for g in [
            builders::karate_club(),
            Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let csr = CsrGraph::from_graph(&g);
            assert_eq!(
                DistanceDistribution::from_csr_with_threads(&csr, 2),
                DistanceDistribution::from_graph_with_threads(&g, 1)
            );
        }
    }

    #[test]
    fn streamed_equals_in_memory_for_any_shard_count() {
        for g in [
            builders::karate_club(),
            Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap(),
        ] {
            let csr = CsrGraph::from_graph(&g);
            let want = DistanceDistribution::from_csr_with_threads(&csr, 1);
            let n = g.node_count();
            for shards in [1, 2, 7, n] {
                for threads in [1, 3] {
                    assert_eq!(
                        DistanceDistribution::from_csr_streamed(&csr, shards, threads),
                        want,
                        "shards = {shards}, threads = {threads}"
                    );
                    assert_eq!(
                        DistanceDistribution::from_csr_sharded(&csr, shards, threads),
                        want
                    );
                }
            }
        }
        let empty = CsrGraph::from_graph(&Graph::new());
        assert_eq!(
            DistanceDistribution::from_csr_streamed(&empty, 4, 2),
            DistanceDistribution::from_graph(&Graph::new())
        );
    }

    #[test]
    fn cycle_mean_distance_closed_form() {
        // C_n (even n): mean distance over ordered pairs = n²/(4(n−1))
        let n = 10usize;
        let g = builders::cycle(n);
        let d = DistanceDistribution::from_graph(&g);
        let want = (n * n) as f64 / (4.0 * (n as f64 - 1.0));
        assert!((d.mean() - want).abs() < 1e-12, "mean {}", d.mean());
    }

    #[test]
    fn empty_graph() {
        let d = DistanceDistribution::from_graph(&Graph::new());
        assert!(d.counts.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.std_dev(), 0.0);
    }

    #[test]
    fn expansion_cumulates_to_one() {
        let g = builders::complete(4);
        let e = DistanceDistribution::from_graph(&g).expansion();
        assert!((e[0] - 0.25).abs() < 1e-12); // 1/n
        assert!((e[1] - 1.0).abs() < 1e-12);
        let g = builders::path(5);
        let e = DistanceDistribution::from_graph(&g).expansion();
        assert!((e.last().unwrap() - 1.0).abs() < 1e-12);
        for w in e.windows(2) {
            assert!(w[0] <= w[1] + 1e-15);
        }
        assert!(DistanceDistribution::from_graph(&Graph::new())
            .expansion()
            .is_empty());
    }

    #[test]
    fn std_dev_of_path() {
        let g = builders::path(3);
        let d = DistanceDistribution::from_graph(&g);
        // positive distances: four 1s, two 2s → mean 4/3
        let mean: f64 = 4.0 / 3.0;
        let var: f64 = (4.0 * (1.0 - mean).powi(2) + 2.0 * (2.0 - mean).powi(2)) / 6.0;
        assert!((d.std_dev() - var.sqrt()).abs() < 1e-12);
    }
}

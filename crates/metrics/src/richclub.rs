//! Rich-club connectivity.
//!
//! `φ(k)` is the edge density among the nodes of degree > k: do the hubs
//! form a tightly interconnected "club"? AS graphs famously do; HOT-style
//! designed topologies famously do not (their high-degree nodes sit at
//! the periphery, mutually far apart). Like k-cores, this is a
//! beyond-the-paper metric used to check that dK-random graphs also
//! capture properties that were not explicitly on the §2 list.

use dk_graph::Graph;

/// Rich-club coefficient `φ(k) = 2·E_{>k} / (N_{>k}·(N_{>k}−1))` for each
/// degree threshold `k`, returned as `(k, φ)` pairs while `N_{>k} ≥ 2`.
pub fn rich_club(g: &Graph) -> Vec<(usize, f64)> {
    let kmax = g.max_degree();
    if kmax == 0 {
        return Vec::new();
    }
    // Sort edges/nodes once; sweep thresholds from 0 upward.
    let degrees = g.degrees();
    // counts of nodes with degree > k
    let mut nodes_gt = vec![0usize; kmax + 1];
    for &d in &degrees {
        for entry in nodes_gt.iter_mut().take(d) {
            *entry += 1;
        }
    }
    // counts of edges with both endpoints of degree > k: an edge (u,v)
    // survives thresholds k < min(deg u, deg v)
    let mut edges_gt = vec![0usize; kmax + 1];
    for &(u, v) in g.edges() {
        let m = degrees[u as usize].min(degrees[v as usize]);
        for entry in edges_gt.iter_mut().take(m) {
            *entry += 1;
        }
    }
    (0..=kmax)
        .take_while(|&k| nodes_gt[k] >= 2)
        .map(|k| {
            let n = nodes_gt[k] as f64;
            (k, 2.0 * edges_gt[k] as f64 / (n * (n - 1.0)))
        })
        .collect()
}

/// Normalized rich-club: `φ(k)` divided by the same quantity on a
/// degree-matched reference (caller supplies the reference, typically a
/// 1K-random ensemble mean). Values > 1 mean a genuine rich-club beyond
/// what the degree sequence forces.
pub fn rich_club_normalized(g: &Graph, reference: &Graph) -> Vec<(usize, f64)> {
    let a = rich_club(g);
    let b = rich_club(reference);
    let bmap: std::collections::BTreeMap<usize, f64> = b.into_iter().collect();
    a.into_iter()
        .filter_map(|(k, phi)| {
            bmap.get(&k).and_then(|&phi_ref| {
                if phi_ref > 0.0 {
                    Some((k, phi / phi_ref))
                } else {
                    None
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_graph::builders;

    #[test]
    fn complete_graph_is_full_club() {
        let g = builders::complete(6);
        let rc = rich_club(&g);
        // all degrees 5: only threshold 0..=4 have ≥ 2 nodes; φ = 1
        assert!(!rc.is_empty());
        for (_, phi) in rc {
            assert!((phi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_has_no_club() {
        // nodes of degree > 1 = just the hub → series stops at k = 0
        let g = builders::star(5);
        let rc = rich_club(&g);
        assert_eq!(rc.len(), 1);
        let (k, phi) = rc[0];
        assert_eq!(k, 0);
        // among all 6 nodes: 5 edges / C(6,2) = 1/3
        assert!((phi - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn two_hubs_joined() {
        // double star with hub–hub edge: at threshold 1, the two hubs
        // remain and are connected → φ = 1
        let g = dk_graph::Graph::from_edges(
            8,
            [(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)],
        )
        .unwrap();
        let rc = rich_club(&g);
        let at1 = rc.iter().find(|&&(k, _)| k == 1).unwrap().1;
        assert!((at1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn karate_club_series_shape() {
        let g = builders::karate_club();
        let rc = rich_club(&g);
        assert_eq!(rc[0].0, 0);
        // density over all nodes at threshold 0
        assert!((rc[0].1 - 2.0 * 78.0 / (34.0 * 33.0)).abs() < 1e-12);
        for &(_, phi) in &rc {
            assert!((0.0..=1.0).contains(&phi));
        }
    }

    #[test]
    fn normalized_against_self_is_one() {
        let g = builders::karate_club();
        for (_, v) in rich_club_normalized(&g, &g) {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        assert!(rich_club(&Graph::new()).is_empty());
        assert!(rich_club(&Graph::with_nodes(3)).is_empty());
    }
}
